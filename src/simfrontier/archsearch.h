#pragma once
// Computationally-efficient architecture search (the paper's Sec. III method
// and Fig. 4 heatmap).
//
// Enumerates (layers, hidden) grid points near a parameter budget, applies
// the divisibility constraints of Eqs. 1–5, and scores each candidate by
// simulated training throughput on one Frontier GCD — with and without
// flash attention v1/v2 (eligible only when head_dim % 8 == 0).
// Following the paper's Table II convention, the head count equals the
// layer count (24 heads / 24 layers, 32 / 32).

#include <vector>

#include "simfrontier/parallelism.h"

namespace matgpt::sim {

/// The paper's Eqs. 1–5 feasibility constraints.
struct SearchConstraints {
  int tp = 1;
  int pp = 1;
  int dp = 8;
  /// Devices must come in node multiples of 8 on Frontier (Eq. 5).
  int device_multiple = 8;
  /// Parameter band for "model size around X" searches (0 = unbounded).
  std::int64_t min_params = 0;
  std::int64_t max_params = 0;

  bool feasible(std::int64_t hidden, std::int64_t n_layers,
                std::int64_t n_heads) const;
};

struct ArchCandidate {
  ModelDesc model;
  double tflops_base = 0.0;      // materialized attention
  double tflops_flash_v1 = 0.0;  // 0 when ineligible
  double tflops_flash_v2 = 0.0;
  bool head_dim_aligned = false;  // head_dim % 8 == 0 (the A–H marks)

  std::int64_t head_dim() const { return model.head_dim(); }
  double flash_v1_boost() const {
    return tflops_flash_v1 > 0.0 ? tflops_flash_v1 / tflops_base - 1.0 : 0.0;
  }
  double flash_v2_boost() const {
    return tflops_flash_v2 > 0.0 ? tflops_flash_v2 / tflops_base - 1.0 : 0.0;
  }
};

class ArchitectureSearch {
 public:
  explicit ArchitectureSearch(Platform platform);

  /// Score every feasible (layers, hidden) combination. batch_seqs/seq set
  /// the measurement workload (the paper uses batch 16, seq 2048).
  std::vector<ArchCandidate> search(
      ArchFamily arch, std::int64_t vocab,
      const std::vector<std::int64_t>& layer_grid,
      const std::vector<std::int64_t>& hidden_grid,
      const SearchConstraints& constraints, std::int64_t batch_seqs,
      std::int64_t seq) const;

  /// Highest base-throughput candidate (the paper's selection criterion).
  static const ArchCandidate& best(const std::vector<ArchCandidate>& cands);

  /// The grids used for the paper's ~1B-class Fig. 4 heatmap.
  static std::vector<std::int64_t> default_layer_grid();
  static std::vector<std::int64_t> default_hidden_grid();

 private:
  KernelModel kernels_;
};

}  // namespace matgpt::sim
