#pragma once
// GEMM execution-time model for one MI250X GCD.
//
// Captures the two effects the paper's Fig. 4 heatmap hinges on:
//  1. Matrix cores operate on 8-wide fragments: a dimension that is not a
//     multiple of 8 pads up and wastes lanes, so efficiency scales with
//     d / ceil8(d) per dimension (the paper's Observation 1: pick head
//     dimensions that are multiples of 8).
//  2. Small GEMMs cannot fill the 110 compute units, so efficiency ramps
//     with total work.
// Constants are calibrated so an aligned, large GEMM reaches ~52% of the
// 191.5 TFLOPS GCD peak, and end-to-end transformer steps land in the
// paper's measured 58–76 TFLOPS band (82–84 with flash attention).

#include <cstdint>

#include "simfrontier/device.h"

namespace matgpt::sim {

/// Lane utilization of one dimension on 8-wide matrix-core fragments.
double dim_utilization(std::int64_t d);

struct GemmShape {
  std::int64_t m;
  std::int64_t n;
  std::int64_t k;
  /// Number of independent GEMMs in the batch (e.g. B*H attention GEMMs).
  std::int64_t count = 1;
  /// FLOP discount for structured sparsity (0.5 for causal attention).
  double flop_fraction = 1.0;

  double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k) * static_cast<double>(count) *
           flop_fraction;
  }
};

class GemmModel {
 public:
  explicit GemmModel(GcdSpec spec) : spec_(spec) {}

  /// Fraction of peak achieved for this shape, in (0, max_efficiency].
  double efficiency(const GemmShape& shape) const;

  /// Execution time in seconds on one GCD.
  double time(const GemmShape& shape) const;

  /// Peak fraction for a large perfectly aligned GEMM.
  static constexpr double kMaxEfficiency = 0.47;

 private:
  GcdSpec spec_;
};

}  // namespace matgpt::sim
