#pragma once
// Discrete pipeline-schedule simulation: GPipe vs. 1F1B.
//
// The paper observes that pipeline parallelism performs worst because of
// sequential "bubble" stages. This module makes the bubble explicit: it
// schedules every (stage, microbatch, direction) unit under dependency and
// occupancy constraints and reports the resulting timeline, the bubble
// fraction, and the peak number of in-flight microbatch activations per
// stage — the quantity that separates GPipe (stores all m microbatches)
// from 1F1B (stores at most p), even though both have the same
// (p-1)/(m+p-1) idle fraction.

#include <cstdint>
#include <vector>

namespace matgpt::sim {

enum class PipelineSchedule { kGpipe, k1F1B };

const char* pipeline_schedule_name(PipelineSchedule s);

struct StageUnit {
  int stage = 0;
  int microbatch = 0;
  bool forward = true;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct PipelineResult {
  std::vector<StageUnit> units;  // ordered by start time
  double total_s = 0.0;
  /// Mean idle fraction across stages: 1 - busy / total.
  double bubble_fraction = 0.0;
  /// Max simultaneously live forward activations on any stage (a microbatch
  /// is live from its forward until its backward completes on that stage).
  int peak_live_microbatches = 0;
};

/// Simulate `microbatches` through `stages` pipeline stages where each
/// stage's forward takes fwd_s and backward takes bwd_s.
PipelineResult simulate_pipeline(int stages, int microbatches, double fwd_s,
                                 double bwd_s, PipelineSchedule schedule);

}  // namespace matgpt::sim
