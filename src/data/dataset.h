#pragma once
// Tokenized LM dataset: document packing, train/validation split, and batch
// sampling for both causal-LM (GPT) and masked-LM (BERT) training.
//
// Documents are tokenized, joined with EOS separators into one contiguous
// token stream (the standard GPT pre-training packing), split by fraction
// into train/validation, and served as random fixed-length windows.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/corpus.h"
#include "tokenizer/bpe.h"

namespace matgpt::data {

struct LmBatch {
  std::vector<std::int32_t> tokens;   // batch*seq, row-major
  std::vector<std::int32_t> targets;  // next-token ids (-1 = ignore)
  std::int64_t batch = 0;
  std::int64_t seq = 0;
};

class TokenDataset {
 public:
  /// Tokenize and pack documents. val_fraction of the stream (tail) becomes
  /// the validation split.
  TokenDataset(const std::vector<Document>& docs,
               const tok::BpeTokenizer& tokenizer, double val_fraction,
               std::uint64_t seed);

  std::size_t train_tokens() const { return train_end_; }
  std::size_t val_tokens() const { return stream_.size() - train_end_; }
  std::size_t total_tokens() const { return stream_.size(); }

  /// Random training windows with shifted next-token targets.
  LmBatch sample_batch(std::int64_t batch, std::int64_t seq);

  /// Deterministic sequential validation windows (wraps at the split end).
  LmBatch validation_batch(std::int64_t batch, std::int64_t seq,
                           std::int64_t offset = 0) const;

  std::span<const std::int32_t> stream() const { return stream_; }

 private:
  LmBatch windows(std::int64_t batch, std::int64_t seq,
                  const std::vector<std::size_t>& starts) const;

  std::vector<std::int32_t> stream_;
  std::size_t train_end_ = 0;
  Rng rng_;
};

/// Convert a causal-LM batch into a masked-LM batch (BERT training): mask
/// random positions, targets hold original ids there and -1 elsewhere.
LmBatch to_mlm_batch(const LmBatch& batch, std::int32_t mask_token,
                     float mask_prob, Rng& rng);

}  // namespace matgpt::data
