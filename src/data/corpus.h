#pragma once
// Synthetic scientific-text corpus with the paper's Table I source shape.
//
// Four simulated sources (CORE, MAG, Aminer, SCOPUS) produce abstracts (and
// CORE a fraction of full texts). MAG/Aminer/CORE are aggregated multi-domain
// feeds that must be screened for materials content — exactly the paper's
// pipeline, where a fine-tuned SciBERT classifier partitions the aggregate;
// here the stand-in classifier lives in data/classifier.h. SCOPUS is
// retrieved pre-filtered via the publisher API, so it arrives all-materials.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/materials.h"

namespace matgpt::data {

enum class DocDomain { kMaterials, kBiomedical, kComputerScience };

struct Document {
  std::string source;  // "CORE", "MAG", "Aminer", "SCOPUS"
  std::string text;
  bool full_text = false;
  DocDomain domain = DocDomain::kMaterials;  // generation-time truth
};

/// Generates one abstract (a few templated sentences) about a material,
/// embedding its formula, numeric band gap, gap class, and applications —
/// the co-occurrence structure the LLM must learn for the downstream tasks.
class AbstractGenerator {
 public:
  explicit AbstractGenerator(std::uint64_t seed);

  std::string materials_abstract(const Material& m);
  std::string materials_full_text(const Material& m);

  /// Off-domain filler (biomedical / CS) for the screening pipeline.
  std::string off_domain_abstract(DocDomain domain);

 private:
  Rng rng_;
  MaterialGenerator aux_materials_;
};

struct SourceSpec {
  std::string name;
  std::size_t n_abstracts;
  std::size_t n_full_texts;
  /// Fraction of this source's documents that are materials science
  /// (aggregated feeds carry other domains that screening must remove).
  double materials_fraction;
};

/// The Table I sources scaled down by `scale` (paper counts are in millions).
std::vector<SourceSpec> table1_sources(double scale);

struct CorpusStats {
  std::string source;
  std::size_t n_abstracts = 0;
  std::size_t n_full_texts = 0;
  std::size_t n_tokens = 0;  // filled by the caller after tokenization
};

/// Generates all documents for the given sources. Materials documents cycle
/// through a shared pool of `n_materials` synthetic materials so formulas
/// recur across sources (needed for embeddings to become meaningful).
class CorpusBuilder {
 public:
  CorpusBuilder(std::uint64_t seed, std::size_t n_materials);

  std::vector<Document> build(const std::vector<SourceSpec>& sources);

  const std::vector<Material>& materials() const { return materials_; }

 private:
  Rng rng_;
  AbstractGenerator abstracts_;
  std::vector<Material> materials_;
  std::size_t next_material_ = 0;
};

}  // namespace matgpt::data
