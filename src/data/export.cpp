#include "data/export.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace matgpt::data {

const char* domain_name(DocDomain domain) {
  switch (domain) {
    case DocDomain::kMaterials:
      return "materials";
    case DocDomain::kBiomedical:
      return "biomedical";
    case DocDomain::kComputerScience:
      return "computer-science";
  }
  return "unknown";
}

DocDomain domain_from_name(const std::string& name) {
  if (name == "materials") return DocDomain::kMaterials;
  if (name == "biomedical") return DocDomain::kBiomedical;
  if (name == "computer-science") return DocDomain::kComputerScience;
  throw Error("unknown document domain: " + name);
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string json_unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    MGPT_CHECK(i + 1 < escaped.size(), "dangling escape in JSON string");
    switch (escaped[++i]) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        throw Error("unsupported JSON escape in corpus file");
    }
  }
  return out;
}

void write_jsonl(const std::vector<Document>& docs, std::ostream& os) {
  for (const auto& d : docs) {
    os << "{\"source\": \"" << json_escape(d.source) << "\", \"full_text\": "
       << (d.full_text ? "true" : "false") << ", \"domain\": \""
       << domain_name(d.domain) << "\", \"text\": \""
       << json_escape(d.text) << "\"}\n";
  }
  MGPT_CHECK(os.good(), "corpus write failed");
}

namespace {
/// Extract the value of a `"key": ` field from one JSONL line. Supports the
/// restricted JSON this module writes (string/bool values, no nesting).
std::string field(const std::string& line, const std::string& key,
                  bool is_string) {
  const std::string marker = "\"" + key + "\": ";
  const auto pos = line.find(marker);
  MGPT_CHECK(pos != std::string::npos,
             "corpus line missing field '" << key << "'");
  std::size_t start = pos + marker.size();
  if (!is_string) {
    const auto end = line.find_first_of(",}", start);
    return line.substr(start, end - start);
  }
  MGPT_CHECK(line[start] == '"', "expected string value for " << key);
  ++start;
  std::string out;
  for (std::size_t i = start; i < line.size(); ++i) {
    if (line[i] == '\\') {
      MGPT_CHECK(i + 1 < line.size(), "dangling escape");
      out += line[i];
      out += line[++i];
    } else if (line[i] == '"') {
      return out;
    } else {
      out += line[i];
    }
  }
  throw Error("unterminated string in corpus line");
}
}  // namespace

std::vector<Document> read_jsonl(std::istream& is) {
  std::vector<Document> docs;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Document d;
    d.source = json_unescape(field(line, "source", true));
    d.full_text = field(line, "full_text", false) == "true";
    d.domain = domain_from_name(field(line, "domain", true));
    d.text = json_unescape(field(line, "text", true));
    docs.push_back(std::move(d));
  }
  return docs;
}

void write_jsonl_file(const std::vector<Document>& docs,
                      const std::string& path) {
  std::ofstream os(path);
  MGPT_CHECK(os.is_open(), "cannot open " << path << " for writing");
  write_jsonl(docs, os);
}

std::vector<Document> read_jsonl_file(const std::string& path) {
  std::ifstream is(path);
  MGPT_CHECK(is.is_open(), "cannot open " << path << " for reading");
  return read_jsonl(is);
}

}  // namespace matgpt::data
