#include "data/corpus.h"

#include <array>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace matgpt::data {

namespace {

std::string format_ev(double ev) {
  // One decimal, like values quoted in abstracts.
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << ev;
  return os.str();
}

const char* application_for(GapClass c, Rng& rng) {
  static constexpr std::array<const char*, 3> conductor{
      "battery electrodes", "interconnects", "electrocatalysis"};
  static constexpr std::array<const char*, 3> semi{
      "photovoltaics", "transistors", "photocatalysis"};
  static constexpr std::array<const char*, 3> insulator{
      "gate dielectrics", "optical coatings", "solid electrolytes"};
  const auto pick = rng.uniform_int(std::uint64_t{3});
  switch (c) {
    case GapClass::kConductor:
      return conductor[pick];
    case GapClass::kSemiconductor:
      return semi[pick];
    case GapClass::kInsulator:
      return insulator[pick];
  }
  return semi[pick];
}

const char* synthesis_verb(Rng& rng) {
  static constexpr std::array<const char*, 4> verbs{
      "synthesized", "prepared", "grown", "deposited"};
  return verbs[rng.uniform_int(std::uint64_t{4})];
}

const char* method_phrase(Rng& rng) {
  static constexpr std::array<const char*, 4> methods{
      "solid state reaction", "sol gel processing", "chemical vapor deposition",
      "hydrothermal synthesis"};
  return methods[rng.uniform_int(std::uint64_t{4})];
}

}  // namespace

AbstractGenerator::AbstractGenerator(std::uint64_t seed)
    : rng_(seed), aux_materials_(seed ^ 0xabcdefULL) {}

std::string AbstractGenerator::materials_abstract(const Material& m) {
  const auto elements = element_table();
  std::ostringstream os;
  os << "We report " << m.formula << " " << synthesis_verb(rng_) << " by "
     << method_phrase(rng_) << " . ";
  // The load-bearing sentences: formula <-> band gap <-> class <-> use.
  os << "The band gap of " << m.formula << " is " << format_ev(m.band_gap_ev)
     << " eV . ";
  os << m.formula << " is a " << gap_class_name(m.gap_class) << " . ";
  if (rng_.bernoulli(0.8)) {
    os << "This makes " << m.formula << " promising for "
       << application_for(m.gap_class, rng_) << " . ";
  }
  if (rng_.bernoulli(0.5)) {
    const Element& e = elements[m.composition[0].element];
    os << "The compound contains " << e.name << " , a "
       << category_name(e.category) << " . ";
  }
  if (rng_.bernoulli(0.4)) {
    os << "The formation energy is " << format_ev(m.formation_energy_ev)
       << " eV per atom . ";
  }
  if (rng_.bernoulli(0.3)) {
    const Material other = aux_materials_.sample();
    os << "Compared with " << other.formula << " , which is a "
       << gap_class_name(other.gap_class) << " , " << m.formula
       << " shows distinct electronic structure . ";
  }
  return os.str();
}

std::string AbstractGenerator::materials_full_text(const Material& m) {
  // Full texts are longer: abstract + methods + results boilerplate, still
  // repeating the property facts (more supervised signal per document).
  std::ostringstream os;
  os << materials_abstract(m);
  os << "Methods : powders were " << synthesis_verb(rng_)
     << " and annealed under controlled atmosphere . ";
  os << "Density functional theory calculations confirm a band gap of "
     << format_ev(m.band_gap_ev) << " eV for " << m.formula << " . ";
  os << "X ray diffraction confirms phase purity of " << m.formula << " . ";
  os << "Results : transport measurements are consistent with "
     << gap_class_name(m.gap_class) << " behavior . ";
  for (const auto& sp : m.composition) {
    const Element& e = element_table()[sp.element];
    os << "The " << e.name << " site has electronegativity "
       << format_ev(e.electronegativity) << " . ";
  }
  return os.str();
}

std::string AbstractGenerator::off_domain_abstract(DocDomain domain) {
  MGPT_CHECK(domain != DocDomain::kMaterials,
             "off_domain_abstract requires a non-materials domain");
  std::ostringstream os;
  if (domain == DocDomain::kBiomedical) {
    static constexpr std::array<const char*, 4> subjects{
        "protein folding", "gene expression", "tumor growth",
        "immune response"};
    static constexpr std::array<const char*, 4> cohorts{
        "mouse models", "patient cohorts", "cell cultures",
        "clinical trials"};
    os << "We study " << subjects[rng_.uniform_int(std::uint64_t{4})]
       << " in " << cohorts[rng_.uniform_int(std::uint64_t{4})] << " . ";
    os << "Statistical analysis shows significant correlation with treatment "
          "outcome . ";
    os << "These findings inform therapeutic strategy and drug design . ";
  } else {
    static constexpr std::array<const char*, 4> topics{
        "distributed consensus", "cache coherence", "query optimization",
        "neural network compression"};
    static constexpr std::array<const char*, 4> systems{
        "datacenter clusters", "embedded devices", "database engines",
        "mobile platforms"};
    os << "We present an algorithm for "
       << topics[rng_.uniform_int(std::uint64_t{4})] << " on "
       << systems[rng_.uniform_int(std::uint64_t{4})] << " . ";
    os << "Experiments demonstrate improved throughput and lower latency . ";
    os << "The implementation scales linearly with core count . ";
  }
  return os.str();
}

std::vector<SourceSpec> table1_sources(double scale) {
  MGPT_CHECK(scale > 0.0, "corpus scale must be positive");
  auto scaled = [scale](double millions) {
    return static_cast<std::size_t>(
        std::max(1.0, std::round(millions * 1e6 * scale)));
  };
  // Paper Table I: CORE 2.5M abstracts + 0.3M full texts; MAG 15M;
  // Aminer 3M; SCOPUS 6M (pre-filtered via publisher API).
  return {
      {"CORE", scaled(2.5), scaled(0.3), 0.55},
      {"MAG", scaled(15.0), 0, 0.40},
      {"Aminer", scaled(3.0), 0, 0.45},
      {"SCOPUS", scaled(6.0), 0, 1.0},
  };
}

CorpusBuilder::CorpusBuilder(std::uint64_t seed, std::size_t n_materials)
    : rng_(seed), abstracts_(seed ^ 0x5ca1ab1eULL) {
  MGPT_CHECK(n_materials > 0, "corpus needs at least one material");
  MaterialGenerator gen(seed ^ 0x9e3779b9ULL);
  materials_ = gen.sample_unique(n_materials);
}

std::vector<Document> CorpusBuilder::build(
    const std::vector<SourceSpec>& sources) {
  std::vector<Document> docs;
  for (const auto& spec : sources) {
    for (std::size_t i = 0; i < spec.n_abstracts + spec.n_full_texts; ++i) {
      Document doc;
      doc.source = spec.name;
      doc.full_text = i >= spec.n_abstracts;
      if (rng_.uniform() < spec.materials_fraction) {
        const Material& m = materials_[next_material_++ % materials_.size()];
        doc.domain = DocDomain::kMaterials;
        doc.text = doc.full_text ? abstracts_.materials_full_text(m)
                                 : abstracts_.materials_abstract(m);
      } else {
        doc.domain = rng_.bernoulli(0.5) ? DocDomain::kBiomedical
                                         : DocDomain::kComputerScience;
        doc.text = abstracts_.off_domain_abstract(doc.domain);
      }
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

}  // namespace matgpt::data
