#pragma once
// Corpus import/export in JSON-lines form, one document per line:
//   {"source": "...", "full_text": true, "domain": "materials", "text": "..."}
// Lets a generated corpus be inspected, versioned, or re-used across runs
// without regeneration, and provides an ingestion path for external text.

#include <iosfwd>
#include <string>
#include <vector>

#include "data/corpus.h"

namespace matgpt::data {

/// Serialize documents as JSONL.
void write_jsonl(const std::vector<Document>& docs, std::ostream& os);
/// Parse JSONL documents; throws matgpt::Error on malformed input.
std::vector<Document> read_jsonl(std::istream& is);

/// File-path convenience wrappers.
void write_jsonl_file(const std::vector<Document>& docs,
                      const std::string& path);
std::vector<Document> read_jsonl_file(const std::string& path);

/// Minimal JSON string escaping/unescaping used by the JSONL format.
std::string json_escape(const std::string& raw);
std::string json_unescape(const std::string& escaped);

const char* domain_name(DocDomain domain);
DocDomain domain_from_name(const std::string& name);

}  // namespace matgpt::data
