#pragma once
// Chemical element knowledge base.
//
// A compact periodic-table excerpt (symbol, Pauling electronegativity,
// typical valence, category) that seeds every synthetic materials artefact:
// formulas, abstracts, band-gap ground truth, QA distractors, and crystal
// graphs. Keeping one shared table guarantees the corpus, the evaluation
// tasks, and the GNN labels are mutually consistent — the property that
// makes the paper's downstream experiments reproducible at small scale.

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace matgpt::data {

enum class ElementCategory {
  kAlkaliMetal,
  kAlkalineEarth,
  kTransitionMetal,
  kPostTransitionMetal,
  kMetalloid,
  kNonmetal,
  kHalogen,
};

const char* category_name(ElementCategory c);

struct Element {
  const char* symbol;
  const char* name;
  double electronegativity;  // Pauling scale
  int valence;               // most common oxidation magnitude
  ElementCategory category;
  double atomic_radius_pm;   // covalent radius, picometres

  bool is_metal() const {
    return category == ElementCategory::kAlkaliMetal ||
           category == ElementCategory::kAlkalineEarth ||
           category == ElementCategory::kTransitionMetal ||
           category == ElementCategory::kPostTransitionMetal;
  }
};

/// The full element table (fixed order; indices are stable ids).
std::span<const Element> element_table();

/// Index of a symbol in element_table(), if present.
std::optional<std::size_t> element_index(const std::string& symbol);

}  // namespace matgpt::data
