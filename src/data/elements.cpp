#include "data/elements.h"

#include <array>

namespace matgpt::data {

const char* category_name(ElementCategory c) {
  switch (c) {
    case ElementCategory::kAlkaliMetal:
      return "alkali metal";
    case ElementCategory::kAlkalineEarth:
      return "alkaline earth metal";
    case ElementCategory::kTransitionMetal:
      return "transition metal";
    case ElementCategory::kPostTransitionMetal:
      return "post-transition metal";
    case ElementCategory::kMetalloid:
      return "metalloid";
    case ElementCategory::kNonmetal:
      return "nonmetal";
    case ElementCategory::kHalogen:
      return "halogen";
  }
  return "unknown";
}

namespace {
using EC = ElementCategory;
constexpr std::array<Element, 44> kElements{{
    {"H", "hydrogen", 2.20, 1, EC::kNonmetal, 31},
    {"Li", "lithium", 0.98, 1, EC::kAlkaliMetal, 128},
    {"Be", "beryllium", 1.57, 2, EC::kAlkalineEarth, 96},
    {"B", "boron", 2.04, 3, EC::kMetalloid, 84},
    {"C", "carbon", 2.55, 4, EC::kNonmetal, 76},
    {"N", "nitrogen", 3.04, 3, EC::kNonmetal, 71},
    {"O", "oxygen", 3.44, 2, EC::kNonmetal, 66},
    {"F", "fluorine", 3.98, 1, EC::kHalogen, 57},
    {"Na", "sodium", 0.93, 1, EC::kAlkaliMetal, 166},
    {"Mg", "magnesium", 1.31, 2, EC::kAlkalineEarth, 141},
    {"Al", "aluminium", 1.61, 3, EC::kPostTransitionMetal, 121},
    {"Si", "silicon", 1.90, 4, EC::kMetalloid, 111},
    {"P", "phosphorus", 2.19, 5, EC::kNonmetal, 107},
    {"S", "sulfur", 2.58, 2, EC::kNonmetal, 105},
    {"Cl", "chlorine", 3.16, 1, EC::kHalogen, 102},
    {"K", "potassium", 0.82, 1, EC::kAlkaliMetal, 203},
    {"Ca", "calcium", 1.00, 2, EC::kAlkalineEarth, 176},
    {"Sc", "scandium", 1.36, 3, EC::kTransitionMetal, 170},
    {"Ti", "titanium", 1.54, 4, EC::kTransitionMetal, 160},
    {"V", "vanadium", 1.63, 5, EC::kTransitionMetal, 153},
    {"Cr", "chromium", 1.66, 3, EC::kTransitionMetal, 139},
    {"Mn", "manganese", 1.55, 2, EC::kTransitionMetal, 139},
    {"Fe", "iron", 1.83, 3, EC::kTransitionMetal, 132},
    {"Co", "cobalt", 1.88, 2, EC::kTransitionMetal, 126},
    {"Ni", "nickel", 1.91, 2, EC::kTransitionMetal, 124},
    {"Cu", "copper", 1.90, 2, EC::kTransitionMetal, 132},
    {"Zn", "zinc", 1.65, 2, EC::kTransitionMetal, 122},
    {"Ga", "gallium", 1.81, 3, EC::kPostTransitionMetal, 122},
    {"Ge", "germanium", 2.01, 4, EC::kMetalloid, 120},
    {"As", "arsenic", 2.18, 3, EC::kMetalloid, 119},
    {"Se", "selenium", 2.55, 2, EC::kNonmetal, 120},
    {"Br", "bromine", 2.96, 1, EC::kHalogen, 120},
    {"Rb", "rubidium", 0.82, 1, EC::kAlkaliMetal, 220},
    {"Sr", "strontium", 0.95, 2, EC::kAlkalineEarth, 195},
    {"Y", "yttrium", 1.22, 3, EC::kTransitionMetal, 190},
    {"Zr", "zirconium", 1.33, 4, EC::kTransitionMetal, 175},
    {"Nb", "niobium", 1.60, 5, EC::kTransitionMetal, 164},
    {"Mo", "molybdenum", 2.16, 4, EC::kTransitionMetal, 154},
    {"Ag", "silver", 1.93, 1, EC::kTransitionMetal, 145},
    {"Cd", "cadmium", 1.69, 2, EC::kTransitionMetal, 144},
    {"In", "indium", 1.78, 3, EC::kPostTransitionMetal, 142},
    {"Sn", "tin", 1.96, 4, EC::kPostTransitionMetal, 139},
    {"Sb", "antimony", 2.05, 3, EC::kMetalloid, 139},
    {"I", "iodine", 2.66, 1, EC::kHalogen, 139},
}};
}  // namespace

std::span<const Element> element_table() { return kElements; }

std::optional<std::size_t> element_index(const std::string& symbol) {
  for (std::size_t i = 0; i < kElements.size(); ++i) {
    if (symbol == kElements[i].symbol) return i;
  }
  return std::nullopt;
}

}  // namespace matgpt::data
