#include "data/materials.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/error.h"

namespace matgpt::data {

const char* gap_class_name(GapClass c) {
  switch (c) {
    case GapClass::kConductor:
      return "conductor";
    case GapClass::kSemiconductor:
      return "semiconductor";
    case GapClass::kInsulator:
      return "insulator";
  }
  return "unknown";
}

namespace {

/// Stable hash of a formula for the deterministic "noise" term.
double formula_perturbation(const std::string& formula) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : formula) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  // Map into [-0.25, 0.25) eV.
  return (static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5) * 0.5;
}

struct CompositionStats {
  double mean_en = 0.0;
  double en_spread = 0.0;       // max - min electronegativity
  double nonmetal_frac = 0.0;   // fraction of atoms that are nonmetal/halogen
  double metalloid_frac = 0.0;
  double valence_imbalance = 0.0;
  int total_atoms = 0;
};

CompositionStats composition_stats(const std::vector<Species>& comp) {
  MGPT_CHECK(!comp.empty(), "composition must not be empty");
  const auto elements = element_table();
  CompositionStats s;
  double en_min = 1e9, en_max = -1e9;
  double cation_valence = 0.0, anion_valence = 0.0;
  for (const auto& sp : comp) {
    MGPT_CHECK(sp.element < elements.size(), "element index out of range");
    MGPT_CHECK(sp.count > 0, "species count must be positive");
    const Element& e = elements[sp.element];
    s.total_atoms += sp.count;
    s.mean_en += e.electronegativity * sp.count;
    en_min = std::min(en_min, e.electronegativity);
    en_max = std::max(en_max, e.electronegativity);
    const bool anion_like = e.category == ElementCategory::kNonmetal ||
                            e.category == ElementCategory::kHalogen;
    if (anion_like) {
      s.nonmetal_frac += sp.count;
      anion_valence += e.valence * sp.count;
    } else {
      cation_valence += e.valence * sp.count;
    }
    if (e.category == ElementCategory::kMetalloid) {
      s.metalloid_frac += sp.count;
    }
  }
  s.mean_en /= s.total_atoms;
  s.nonmetal_frac /= s.total_atoms;
  s.metalloid_frac /= s.total_atoms;
  s.en_spread = en_max - en_min;
  const double denom = std::max(1.0, cation_valence + anion_valence);
  s.valence_imbalance = std::abs(cation_valence - anion_valence) / denom;
  return s;
}

}  // namespace

double band_gap_model(const std::vector<Species>& composition,
                      const std::string& formula) {
  const CompositionStats s = composition_stats(composition);
  // Ionic character opens the gap; pure metals (no anions, small spread)
  // close it; metalloids sit in between; valence imbalance introduces
  // mid-gap states that shrink the gap.
  double gap = 2.6 * s.en_spread * s.nonmetal_frac   // ionic contribution
               + 1.1 * s.metalloid_frac              // covalent contribution
               - 0.6 * s.valence_imbalance           // defect-like states
               - 0.35;                               // metallic baseline
  gap += formula_perturbation(formula);
  return std::max(0.0, gap);
}

double formation_energy_model(const std::vector<Species>& composition,
                              const std::string& formula) {
  const CompositionStats s = composition_stats(composition);
  // More ionic compounds are more stable (more negative formation energy).
  double ef = -1.8 * s.en_spread * s.nonmetal_frac - 0.2 +
              0.4 * s.valence_imbalance;
  ef += 0.4 * formula_perturbation(formula + "#ef");
  return std::min(0.0, ef);
}

GapClass classify_gap(double band_gap_ev) {
  if (band_gap_ev < 0.1) return GapClass::kConductor;
  if (band_gap_ev < 3.0) return GapClass::kSemiconductor;
  return GapClass::kInsulator;
}

std::string format_formula(const std::vector<Species>& composition) {
  const auto elements = element_table();
  std::string out;
  for (const auto& sp : composition) {
    out += elements[sp.element].symbol;
    if (sp.count > 1) out += std::to_string(sp.count);
  }
  return out;
}

MaterialGenerator::MaterialGenerator(std::uint64_t seed) : rng_(seed) {}

Material MaterialGenerator::from_composition(std::vector<Species> comp) {
  Material m;
  m.formula = format_formula(comp);
  m.composition = std::move(comp);
  m.band_gap_ev = band_gap_model(m.composition, m.formula);
  m.gap_class = classify_gap(m.band_gap_ev);
  m.formation_energy_ev = formation_energy_model(m.composition, m.formula);
  return m;
}

Material MaterialGenerator::sample() {
  const auto elements = element_table();
  // Index pools by role.
  std::vector<std::size_t> metals, anions, metalloids;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const auto cat = elements[i].category;
    if (elements[i].is_metal()) metals.push_back(i);
    if (cat == ElementCategory::kNonmetal ||
        cat == ElementCategory::kHalogen) {
      anions.push_back(i);
    }
    if (cat == ElementCategory::kMetalloid) metalloids.push_back(i);
  }
  std::vector<Species> comp;
  // Archetypes: elemental metal (conductor), metal+anion binary (ionic),
  // two-metal+anion ternary (e.g. battery cathodes), covalent metalloid.
  switch (rng_.categorical({0.15, 0.35, 0.35, 0.15})) {
    case 0: {  // elemental or alloy
      comp.push_back({metals[rng_.uniform_int(metals.size())],
                      static_cast<int>(rng_.uniform_int(1, 3))});
      if (rng_.bernoulli(0.4)) {
        auto second = metals[rng_.uniform_int(metals.size())];
        if (second != comp[0].element) {
          comp.push_back({second, static_cast<int>(rng_.uniform_int(1, 2))});
        }
      }
      break;
    }
    case 1: {  // binary metal + anion, roughly valence balanced
      const auto m = metals[rng_.uniform_int(metals.size())];
      const auto a = anions[rng_.uniform_int(anions.size())];
      const int va = elements[a].valence;
      const int vm = elements[m].valence;
      const int g = std::gcd(std::max(1, vm), std::max(1, va));
      comp.push_back({m, std::max(1, va / g)});
      comp.push_back({a, std::max(1, vm / g)});
      break;
    }
    case 2: {  // ternary: two metals + anion
      auto m1 = metals[rng_.uniform_int(metals.size())];
      auto m2 = metals[rng_.uniform_int(metals.size())];
      while (m2 == m1) m2 = metals[rng_.uniform_int(metals.size())];
      const auto a = anions[rng_.uniform_int(anions.size())];
      comp.push_back({m1, static_cast<int>(rng_.uniform_int(1, 2))});
      comp.push_back({m2, static_cast<int>(rng_.uniform_int(1, 2))});
      const int cation = elements[m1].valence * comp[0].count +
                         elements[m2].valence * comp[1].count;
      comp.push_back(
          {a, std::max(1, cation / std::max(1, elements[a].valence))});
      break;
    }
    default: {  // covalent metalloid compound
      const auto md = metalloids[rng_.uniform_int(metalloids.size())];
      comp.push_back({md, static_cast<int>(rng_.uniform_int(1, 2))});
      if (rng_.bernoulli(0.7)) {
        comp.push_back({anions[rng_.uniform_int(anions.size())],
                        static_cast<int>(rng_.uniform_int(1, 3))});
      }
      break;
    }
  }
  return from_composition(std::move(comp));
}

std::vector<Material> MaterialGenerator::sample_unique(std::size_t n) {
  std::vector<Material> out;
  std::set<std::string> seen;
  // The composition space is finite; bail out after enough rejections so a
  // too-large request fails loudly instead of looping forever.
  std::size_t consecutive_rejects = 0;
  while (out.size() < n) {
    Material m = sample();
    if (seen.insert(m.formula).second) {
      out.push_back(std::move(m));
      consecutive_rejects = 0;
    } else {
      MGPT_CHECK(++consecutive_rejects < 20000,
                 "cannot find " << n << " unique materials");
    }
  }
  return out;
}

}  // namespace matgpt::data
