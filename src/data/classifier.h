#pragma once
// Domain-screening classifier — the fine-tuned-SciBERT stand-in.
//
// The paper screens aggregated feeds (CORE/MAG/Aminer) for materials-science
// documents with a classifier fine-tuned on a small labeled set. A
// multinomial naive-Bayes text classifier trained on a small labeled seed
// set plays that role here: same pipeline position (train on a small labeled
// sample, partition the aggregate), same failure modes (precision/recall
// trade-off), and it is fast enough to screen the full synthetic corpus.

#include <string>
#include <unordered_map>
#include <vector>

#include "data/corpus.h"

namespace matgpt::data {

/// Multinomial naive Bayes over whitespace tokens with add-one smoothing.
class DomainClassifier {
 public:
  /// Train from labeled documents (binary: materials vs. not).
  static DomainClassifier train(const std::vector<Document>& labeled);

  /// Log-odds of the materials class for a text.
  double materials_log_odds(const std::string& text) const;

  bool is_materials(const std::string& text) const {
    return materials_log_odds(text) > 0.0;
  }

  /// Screen a document stream, keeping predicted-materials docs.
  std::vector<Document> screen(const std::vector<Document>& docs) const;

  /// Precision/recall of the screen against generation-time truth.
  struct Quality {
    double precision = 0.0;
    double recall = 0.0;
    std::size_t kept = 0;
    std::size_t total = 0;
  };
  Quality evaluate(const std::vector<Document>& docs) const;

 private:
  std::unordered_map<std::string, double> log_lik_pos_;
  std::unordered_map<std::string, double> log_lik_neg_;
  double default_log_lik_pos_ = 0.0;
  double default_log_lik_neg_ = 0.0;
  double log_prior_ratio_ = 0.0;
};

}  // namespace matgpt::data
