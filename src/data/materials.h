#pragma once
// Synthetic materials: formula generation and a deterministic
// physics-motivated band-gap model.
//
// The band gap stands in for the Materials Project DFT labels (Table V).
// It is a deterministic function of composition — ionic character (Pauling
// electronegativity spread), nonmetal fraction, and valence balance — with a
// small formula-hashed perturbation, so that:
//   * pure metals come out conductors (gap ~ 0),
//   * covalent semiconductors land in (0, 3) eV,
//   * strongly ionic compounds (oxides/halides of electropositive metals)
//     come out insulators (> 3 eV),
// mirroring the conductor/semiconductor/insulator structure the paper's
// embedding-cluster analysis (Fig. 17) appeals to.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/elements.h"

namespace matgpt::data {

/// One species in a formula: element table index and stoichiometric count.
struct Species {
  std::size_t element;
  int count;
};

enum class GapClass { kConductor, kSemiconductor, kInsulator };

const char* gap_class_name(GapClass c);

struct Material {
  std::string formula;             // e.g. "Li2FeO4"
  std::vector<Species> composition;
  double band_gap_ev;              // synthetic "DFT" ground truth
  GapClass gap_class;
  double formation_energy_ev;      // secondary synthetic property
};

/// Deterministic band gap (eV) from composition; same function everywhere
/// (corpus text, QA answers, GNN labels).
double band_gap_model(const std::vector<Species>& composition,
                      const std::string& formula);

/// Deterministic formation energy (eV/atom) from composition.
double formation_energy_model(const std::vector<Species>& composition,
                              const std::string& formula);

GapClass classify_gap(double band_gap_ev);

/// Canonical formula string ("Li2FeO4") for a composition.
std::string format_formula(const std::vector<Species>& composition);

/// Random-but-chemically-plausible material generator: picks 1–3 elements
/// weighted toward metal + nonmetal combinations and balances counts.
class MaterialGenerator {
 public:
  explicit MaterialGenerator(std::uint64_t seed);

  Material sample();

  /// Deduplicated sample of n distinct materials.
  std::vector<Material> sample_unique(std::size_t n);

  /// Build the Material record for an explicit composition.
  static Material from_composition(std::vector<Species> composition);

 private:
  Rng rng_;
};

}  // namespace matgpt::data
