#include "data/classifier.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace matgpt::data {

namespace {
std::vector<std::string> tokenize_words(const std::string& text) {
  std::istringstream is(text);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}
}  // namespace

DomainClassifier DomainClassifier::train(
    const std::vector<Document>& labeled) {
  MGPT_CHECK(!labeled.empty(), "classifier needs labeled documents");
  std::unordered_map<std::string, std::int64_t> pos_counts, neg_counts;
  std::int64_t pos_total = 0, neg_total = 0;
  std::int64_t pos_docs = 0, neg_docs = 0;
  for (const auto& doc : labeled) {
    const bool pos = doc.domain == DocDomain::kMaterials;
    (pos ? pos_docs : neg_docs)++;
    for (const auto& w : tokenize_words(doc.text)) {
      if (pos) {
        ++pos_counts[w];
        ++pos_total;
      } else {
        ++neg_counts[w];
        ++neg_total;
      }
    }
  }
  MGPT_CHECK(pos_docs > 0 && neg_docs > 0,
             "classifier needs both positive and negative examples");
  // Shared vocabulary for add-one smoothing.
  std::unordered_map<std::string, bool> vocab;
  for (const auto& [w, c] : pos_counts) vocab[w] = true;
  for (const auto& [w, c] : neg_counts) vocab[w] = true;
  const auto v = static_cast<double>(vocab.size());

  DomainClassifier clf;
  clf.default_log_lik_pos_ =
      std::log(1.0 / (static_cast<double>(pos_total) + v));
  clf.default_log_lik_neg_ =
      std::log(1.0 / (static_cast<double>(neg_total) + v));
  for (const auto& [w, unused] : vocab) {
    const auto cp = static_cast<double>(
        pos_counts.count(w) ? pos_counts.at(w) : 0);
    const auto cn = static_cast<double>(
        neg_counts.count(w) ? neg_counts.at(w) : 0);
    clf.log_lik_pos_[w] =
        std::log((cp + 1.0) / (static_cast<double>(pos_total) + v));
    clf.log_lik_neg_[w] =
        std::log((cn + 1.0) / (static_cast<double>(neg_total) + v));
  }
  clf.log_prior_ratio_ = std::log(static_cast<double>(pos_docs) /
                                  static_cast<double>(neg_docs));
  return clf;
}

double DomainClassifier::materials_log_odds(const std::string& text) const {
  double odds = log_prior_ratio_;
  for (const auto& w : tokenize_words(text)) {
    const auto ip = log_lik_pos_.find(w);
    const auto in = log_lik_neg_.find(w);
    odds += (ip != log_lik_pos_.end() ? ip->second : default_log_lik_pos_) -
            (in != log_lik_neg_.end() ? in->second : default_log_lik_neg_);
  }
  return odds;
}

std::vector<Document> DomainClassifier::screen(
    const std::vector<Document>& docs) const {
  std::vector<Document> kept;
  for (const auto& doc : docs) {
    if (is_materials(doc.text)) kept.push_back(doc);
  }
  return kept;
}

DomainClassifier::Quality DomainClassifier::evaluate(
    const std::vector<Document>& docs) const {
  Quality q;
  q.total = docs.size();
  std::size_t true_pos = 0, pred_pos = 0, actual_pos = 0;
  for (const auto& doc : docs) {
    const bool truth = doc.domain == DocDomain::kMaterials;
    const bool pred = is_materials(doc.text);
    actual_pos += truth;
    pred_pos += pred;
    true_pos += truth && pred;
  }
  q.kept = pred_pos;
  q.precision = pred_pos ? static_cast<double>(true_pos) / pred_pos : 0.0;
  q.recall = actual_pos ? static_cast<double>(true_pos) / actual_pos : 0.0;
  return q;
}

}  // namespace matgpt::data
