#include "data/dataset.h"

#include <algorithm>

#include "common/error.h"

namespace matgpt::data {

TokenDataset::TokenDataset(const std::vector<Document>& docs,
                           const tok::BpeTokenizer& tokenizer,
                           double val_fraction, std::uint64_t seed)
    : rng_(seed) {
  MGPT_CHECK(!docs.empty(), "dataset requires documents");
  MGPT_CHECK(val_fraction > 0.0 && val_fraction < 1.0,
             "val_fraction must be in (0, 1)");
  for (const auto& doc : docs) {
    const auto ids = tokenizer.encode(doc.text);
    stream_.insert(stream_.end(), ids.begin(), ids.end());
    stream_.push_back(tok::SpecialTokens::kEos);
  }
  train_end_ = static_cast<std::size_t>(
      static_cast<double>(stream_.size()) * (1.0 - val_fraction));
  MGPT_CHECK(train_end_ > 0 && train_end_ < stream_.size(),
             "degenerate train/val split — corpus too small");
}

LmBatch TokenDataset::windows(std::int64_t batch, std::int64_t seq,
                              const std::vector<std::size_t>& starts) const {
  LmBatch out;
  out.batch = batch;
  out.seq = seq;
  out.tokens.resize(static_cast<std::size_t>(batch * seq));
  out.targets.resize(static_cast<std::size_t>(batch * seq));
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::size_t start = starts[static_cast<std::size_t>(b)];
    for (std::int64_t t = 0; t < seq; ++t) {
      const std::size_t pos = start + static_cast<std::size_t>(t);
      out.tokens[static_cast<std::size_t>(b * seq + t)] = stream_[pos];
      out.targets[static_cast<std::size_t>(b * seq + t)] = stream_[pos + 1];
    }
  }
  return out;
}

LmBatch TokenDataset::sample_batch(std::int64_t batch, std::int64_t seq) {
  MGPT_CHECK(batch > 0 && seq > 0, "batch and seq must be positive");
  MGPT_CHECK(static_cast<std::size_t>(seq) + 1 <= train_end_,
             "sequence length exceeds the training split");
  std::vector<std::size_t> starts(static_cast<std::size_t>(batch));
  for (auto& s : starts) {
    s = rng_.uniform_int(train_end_ - static_cast<std::size_t>(seq));
  }
  return windows(batch, seq, starts);
}

LmBatch TokenDataset::validation_batch(std::int64_t batch, std::int64_t seq,
                                       std::int64_t offset) const {
  MGPT_CHECK(batch > 0 && seq > 0, "batch and seq must be positive");
  const std::size_t val_len = stream_.size() - train_end_;
  MGPT_CHECK(static_cast<std::size_t>(seq) + 1 < val_len,
             "sequence length exceeds the validation split");
  std::vector<std::size_t> starts(static_cast<std::size_t>(batch));
  const std::size_t span = val_len - static_cast<std::size_t>(seq) - 1;
  for (std::int64_t b = 0; b < batch; ++b) {
    starts[static_cast<std::size_t>(b)] =
        train_end_ +
        (static_cast<std::size_t>(offset + b) * static_cast<std::size_t>(seq)) %
            span;
  }
  return windows(batch, seq, starts);
}

LmBatch to_mlm_batch(const LmBatch& batch, std::int32_t mask_token,
                     float mask_prob, Rng& rng) {
  MGPT_CHECK(mask_prob > 0.0f && mask_prob < 1.0f,
             "mask_prob must be in (0, 1)");
  LmBatch out;
  out.batch = batch.batch;
  out.seq = batch.seq;
  out.tokens = batch.tokens;
  out.targets.assign(batch.tokens.size(), -1);
  bool any = false;
  for (std::size_t i = 0; i < out.tokens.size(); ++i) {
    if (rng.bernoulli(mask_prob)) {
      out.targets[i] = out.tokens[i];
      out.tokens[i] = mask_token;
      any = true;
    }
  }
  if (!any && !out.tokens.empty()) {
    const std::size_t i = rng.uniform_int(out.tokens.size());
    out.targets[i] = out.tokens[i];
    out.tokens[i] = mask_token;
  }
  return out;
}

}  // namespace matgpt::data
