#pragma once
// Optimizers and learning-rate schedules.
//
// The paper's Table III trains with Adam (1M-token batches) and LAMB
// (4M-token batches); LAMB's layer-wise trust ratio is the mechanism that
// closes the large-batch generalization gap, which the loss-comparison bench
// (Fig. 13) reproduces. Optimizer state size (2 extra tensors for Adam/LAMB)
// also feeds the simulator's ZeRO memory model.

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace matgpt::optim {

/// Cosine decay with linear warmup; decays to final_fraction * base_lr.
/// Matches the paper's recipe: 1% warmup, final LR = 10% of initial.
class CosineSchedule {
 public:
  CosineSchedule(double base_lr, std::int64_t total_steps,
                 double warmup_fraction = 0.01, double final_fraction = 0.1);

  double lr(std::int64_t step) const;
  double base_lr() const { return base_lr_; }
  std::int64_t warmup_steps() const { return warmup_steps_; }

 private:
  double base_lr_;
  std::int64_t total_steps_;
  std::int64_t warmup_steps_;
  double final_fraction_;
};

/// Shared optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::NamedParam> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update with the given learning rate. Parameters without an
  /// accumulated gradient are skipped.
  virtual void step(double lr) = 0;

  /// Scale all gradients so the global L2 norm is at most max_norm.
  /// Returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  void zero_grad();

  /// Bytes of optimizer state per parameter, at the accelerator dtype width
  /// given (feeds the ZeRO memory model: Adam/LAMB keep m and v in fp32).
  virtual double state_bytes_per_param() const = 0;

  const std::vector<nn::NamedParam>& params() const { return params_; }

 protected:
  std::vector<nn::NamedParam> params_;
};

struct SgdConfig {
  double momentum = 0.0;
  double weight_decay = 0.0;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<nn::NamedParam> params, SgdConfig config = {});
  void step(double lr) override;
  double state_bytes_per_param() const override {
    return config_.momentum != 0.0 ? 4.0 : 0.0;
  }

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

struct AdamConfig {
  double beta1 = 0.9;
  double beta2 = 0.95;  // the paper's Adam recipe (Table III)
  double eps = 1e-8;
  double weight_decay = 0.0;  // decoupled (AdamW-style)
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<nn::NamedParam> params, AdamConfig config = {});
  void step(double lr) override;
  double state_bytes_per_param() const override { return 8.0; }  // m + v fp32

 protected:
  AdamConfig config_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

struct LambConfig {
  double beta1 = 0.9;
  double beta2 = 0.999;  // the paper's LAMB recipe (Table III)
  double eps = 1e-6;
  double weight_decay = 0.1;  // the paper's weight decay
  /// Trust-ratio clamp (phi in the LAMB paper).
  double max_trust_ratio = 10.0;
  /// When false the trust ratio is forced to 1, degrading LAMB to AdamW —
  /// the ablation knob for the large-batch study.
  bool use_trust_ratio = true;
};

/// LAMB (You et al.): Adam update direction rescaled per parameter tensor by
/// ||w|| / ||update||, which keeps effective step sizes uniform across layers
/// at very large batch sizes.
class Lamb : public Optimizer {
 public:
  Lamb(std::vector<nn::NamedParam> params, LambConfig config = {});
  void step(double lr) override;
  double state_bytes_per_param() const override { return 8.0; }

  /// Trust ratios computed at the most recent step (observability/tests).
  const std::vector<double>& last_trust_ratios() const {
    return last_trust_ratios_;
  }

 private:
  LambConfig config_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::vector<double> last_trust_ratios_;
};

}  // namespace matgpt::optim
