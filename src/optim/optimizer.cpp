#include "optim/optimizer.h"

#include <cmath>

#include "common/error.h"

namespace matgpt::optim {

CosineSchedule::CosineSchedule(double base_lr, std::int64_t total_steps,
                               double warmup_fraction, double final_fraction)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(static_cast<std::int64_t>(
          std::ceil(warmup_fraction * static_cast<double>(total_steps)))),
      final_fraction_(final_fraction) {
  MGPT_CHECK(base_lr > 0.0, "base_lr must be positive");
  MGPT_CHECK(total_steps > 0, "total_steps must be positive");
  MGPT_CHECK(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
             "warmup_fraction must be in [0, 1)");
  MGPT_CHECK(final_fraction >= 0.0 && final_fraction <= 1.0,
             "final_fraction must be in [0, 1]");
}

double CosineSchedule::lr(std::int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr_ * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps_);
  }
  const double progress =
      total_steps_ == warmup_steps_
          ? 1.0
          : std::min(1.0, static_cast<double>(step - warmup_steps_) /
                              static_cast<double>(total_steps_ -
                                                  warmup_steps_));
  const double floor = base_lr_ * final_fraction_;
  return floor +
         (base_lr_ - floor) * 0.5 * (1.0 + std::cos(progress * M_PI));
}

Optimizer::Optimizer(std::vector<nn::NamedParam> params)
    : params_(std::move(params)) {
  MGPT_CHECK(!params_.empty(), "optimizer requires at least one parameter");
}

double Optimizer::clip_grad_norm(double max_norm) {
  MGPT_CHECK(max_norm > 0.0, "max_norm must be positive");
  double sq = 0.0;
  for (auto& p : params_) {
    if (!p.var.grad().defined()) continue;
    const double n = p.var.grad().l2_norm();
    sq += n * n;
  }
  const double total = std::sqrt(sq);
  if (total > max_norm) {
    const auto scale = static_cast<float>(max_norm / (total + 1e-12));
    for (auto& p : params_) {
      if (p.var.grad().defined()) p.var.node()->grad.scale_(scale);
    }
  }
  return total;
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.var.node()->zero_grad();
}

Sgd::Sgd(std::vector<nn::NamedParam> params, SgdConfig config)
    : Optimizer(std::move(params)), config_(config) {
  if (config_.momentum != 0.0) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) {
      velocity_.push_back(Tensor::zeros(p.var.value().shape()));
    }
  }
}

void Sgd::step(double lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.var.grad().defined()) continue;
    Tensor& w = p.var.node()->value;
    const Tensor& g = p.var.grad();
    if (config_.weight_decay != 0.0) {
      w.scale_(1.0f - static_cast<float>(lr * config_.weight_decay));
    }
    if (config_.momentum != 0.0) {
      Tensor& vel = velocity_[i];
      vel.scale_(static_cast<float>(config_.momentum));
      vel.add_(g);
      w.add_(vel, -static_cast<float>(lr));
    } else {
      w.add_(g, -static_cast<float>(lr));
    }
  }
}

Adam::Adam(std::vector<nn::NamedParam> params, AdamConfig config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(Tensor::zeros(p.var.value().shape()));
    v_.push_back(Tensor::zeros(p.var.value().shape()));
  }
}

void Adam::step(double lr) {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.var.grad().defined()) continue;
    Tensor& w = p.var.node()->value;
    const Tensor& g = p.var.grad();
    float* mw = m_[i].data();
    float* vw = v_[i].data();
    float* ww = w.data();
    const float* gw = g.data();
    const auto b1 = static_cast<float>(config_.beta1);
    const auto b2 = static_cast<float>(config_.beta2);
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      mw[j] = b1 * mw[j] + (1.0f - b1) * gw[j];
      vw[j] = b2 * vw[j] + (1.0f - b2) * gw[j] * gw[j];
      const double mhat = mw[j] / bc1;
      const double vhat = vw[j] / bc2;
      double update = mhat / (std::sqrt(vhat) + config_.eps);
      if (config_.weight_decay != 0.0) {
        update += config_.weight_decay * ww[j];
      }
      ww[j] -= static_cast<float>(lr * update);
    }
  }
}

Lamb::Lamb(std::vector<nn::NamedParam> params, LambConfig config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(Tensor::zeros(p.var.value().shape()));
    v_.push_back(Tensor::zeros(p.var.value().shape()));
  }
  last_trust_ratios_.assign(params_.size(), 1.0);
}

void Lamb::step(double lr) {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.var.grad().defined()) continue;
    Tensor& w = p.var.node()->value;
    const Tensor& g = p.var.grad();
    float* mw = m_[i].data();
    float* vw = v_[i].data();
    float* ww = w.data();
    const float* gw = g.data();
    const auto b1 = static_cast<float>(config_.beta1);
    const auto b2 = static_cast<float>(config_.beta2);
    // First pass: Adam direction (+ decoupled weight decay) and norms.
    Tensor update(w.shape());
    float* uw = update.data();
    double w_sq = 0.0;
    double u_sq = 0.0;
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      mw[j] = b1 * mw[j] + (1.0f - b1) * gw[j];
      vw[j] = b2 * vw[j] + (1.0f - b2) * gw[j] * gw[j];
      const double mhat = mw[j] / bc1;
      const double vhat = vw[j] / bc2;
      double u = mhat / (std::sqrt(vhat) + config_.eps);
      u += config_.weight_decay * ww[j];
      uw[j] = static_cast<float>(u);
      w_sq += static_cast<double>(ww[j]) * ww[j];
      u_sq += u * u;
    }
    // Layer-wise trust ratio phi(||w||) / ||u||.
    double trust = 1.0;
    if (config_.use_trust_ratio) {
      const double w_norm = std::sqrt(w_sq);
      const double u_norm = std::sqrt(u_sq);
      if (w_norm > 0.0 && u_norm > 0.0) {
        trust = std::min(w_norm / u_norm, config_.max_trust_ratio);
      }
    }
    last_trust_ratios_[i] = trust;
    w.add_(update, -static_cast<float>(lr * trust));
  }
}

}  // namespace matgpt::optim
