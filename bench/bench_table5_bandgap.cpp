// Regenerates Table V: band-gap MAE for the GNN ladder — CGCNN, MEGNet,
// ALIGNN, MF-CGNN — and the LLM-embedding-augmented variants (+SciBERT,
// +GPT) of Fig. 3.
//
// Paper MAE (eV): CGCNN 0.388, MEGNet 0.33, ALIGNN 0.218, MF-CGNN 0.215,
// +SciBERT 0.204, +GPT 0.197. The reproduction target is the ordering:
// richer structural features help, and literature embeddings help on top —
// with the GPT embedding (pre-trained on more tokens with more parameters
// than the BERT stand-in) best of all.

#include "bench_util.h"
#include "embed/embedding.h"
#include "gnn/bandgap.h"

using namespace matgpt;

int main() {
  bench::print_header("Table V", "Band-gap prediction MAE (eV)");

  // 1. Pre-train the text models on the shared corpus.
  auto sc = bench::default_study_config();
  core::ComparativeStudy study(sc);
  study.prepare_corpus();
  std::printf("corpus: %zu screened docs over %zu materials\n",
              study.screened_corpus().size(), study.materials().size());

  core::ExperimentSpec gpt_spec{
      "NeoX-HF-52K",          nn::ArchFamily::kNeoX,
      tok::TokenizerKind::kHuggingFace, 512,
      core::OptimizerKind::kAdam,       8,
      false,                  DType::kFloat32};
  const auto gpt = study.run_experiment(gpt_spec);
  std::printf("MatGPT stand-in trained: val loss %.3f\n",
              gpt.curve.final_val_loss());
  const auto bert = bench::train_bert_standin(study, *gpt.tokenizer);
  std::printf("MatSciBERT stand-in trained\n");

  // 2. Crystal dataset over the same materials the literature describes.
  const auto dataset = gnn::build_dataset_from(study.materials(), 31);

  // 3. Cache formula embeddings.
  const std::int64_t gpt_dim = gpt.model->config().hidden;
  const std::int64_t bert_dim = bert->config().hidden;
  std::vector<std::vector<float>> gpt_emb(dataset.pool.size());
  std::vector<std::vector<float>> bert_emb(dataset.pool.size());
  for (std::size_t i = 0; i < dataset.pool.size(); ++i) {
    gpt_emb[i] = embed::gpt_formula_embedding(*gpt.model, *gpt.tokenizer,
                                              dataset.pool[i].formula);
    bert_emb[i] = bert->embed(gpt.tokenizer->encode(dataset.pool[i].formula));
  }

  // 4. Train the ladder.
  gnn::RegressionConfig rc;
  rc.epochs = 30;
  struct Row {
    std::string name;
    gnn::GnnConfig config;
    const std::vector<std::vector<float>>* embeddings;
    const char* paper;
  };
  const std::vector<Row> rows{
      {"CGCNN", {gnn::GnnVariant::kCgcnn, 16, 0, 17}, nullptr, "0.388"},
      {"MEGNet", {gnn::GnnVariant::kMegnet, 16, 0, 17}, nullptr, "0.33"},
      {"ALIGNN", {gnn::GnnVariant::kAlignn, 16, 0, 17}, nullptr, "0.218"},
      {"MF-CGNN", {gnn::GnnVariant::kMfCgnn, 16, 0, 17}, nullptr, "0.215"},
      {"+SciBERT", {gnn::GnnVariant::kMfCgnn, 16, bert_dim, 17}, &bert_emb,
       "0.204"},
      {"+GPT", {gnn::GnnVariant::kMfCgnn, 16, gpt_dim, 17}, &gpt_emb,
       "0.197"},
  };

  TablePrinter table({"Model", "test MAE (eV)", "train MAE (eV)",
                      "paper MAE (eV)"});
  std::vector<double> maes;
  for (const auto& row : rows) {
    gnn::GnnModel model(row.config);
    gnn::EmbeddingProvider provider;
    if (row.embeddings) {
      const auto* emb = row.embeddings;
      provider = [emb](std::size_t i) { return (*emb)[i]; };
    }
    const auto result = gnn::train_bandgap(model, dataset, rc, provider);
    maes.push_back(result.test_mae_ev);
    table.add_row({row.name, TablePrinter::fmt(result.test_mae_ev, 3),
                   TablePrinter::fmt(result.train_mae_ev, 3), row.paper});
    std::printf("  trained %s\n", row.name.c_str());
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("shape checks (the paper compares vs MF-CGNN)");
  std::printf("feature ladder helps (CGCNN worst structure-only): %s\n",
              maes[0] > std::min(maes[2], maes[3]) ? "yes" : "NO");
  const double mf = maes[3];
  std::printf("+SciBERT vs MF-CGNN: %+.1f%% (paper: 5%% better)\n",
              100.0 * (1.0 - maes[4] / mf));
  std::printf("+GPT vs MF-CGNN: %+.1f%% (paper: 8%% better)\n",
              100.0 * (1.0 - maes[5] / mf));
  std::printf("+GPT beats +SciBERT (larger LM, better embeddings): %s\n",
              maes[5] < maes[4] ? "yes" : "NO");
  return 0;
}
