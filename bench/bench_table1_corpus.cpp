// Regenerates Table I: data sources for MatGPT — abstracts, full texts, and
// token counts per source, after the SciBERT-style domain screen.
//
// Paper values (millions / billions): CORE 2.5M+0.3M/8.8B, MAG 15M/3.5B,
// Aminer 3M/1.2B, SCOPUS 6M/1.5B, total 26.5M+0.3M/15B. Here the sources are
// scaled down by corpus_scale; the reproduction target is the shape: source
// proportions, CORE's full-text share, and SCOPUS arriving pre-filtered.

#include <map>

#include "bench_util.h"
#include "data/classifier.h"
#include "data/dataset.h"

using namespace matgpt;

int main() {
  bench::print_header("Table I", "Data sources for MatGPT (scaled corpus)");
  const double scale = 4e-5;
  data::CorpusBuilder builder(2024, 300);
  const auto sources = data::table1_sources(scale);
  const auto raw = builder.build(sources);

  // Screen the aggregated sources exactly as the pipeline does.
  std::vector<data::Document> seed_set, rest;
  for (const auto& doc : raw) {
    if (seed_set.size() < raw.size() / 10) {
      seed_set.push_back(doc);
    } else {
      rest.push_back(doc);
    }
  }
  const auto clf = data::DomainClassifier::train(seed_set);
  const auto quality = clf.evaluate(rest);

  std::vector<data::Document> screened;
  for (const auto& doc : raw) {
    if (doc.source == "SCOPUS" || clf.is_materials(doc.text)) {
      screened.push_back(doc);
    }
  }

  // Tokenize with the HF tokenizer to count tokens per source.
  std::vector<std::string> texts;
  for (const auto& d : screened) texts.push_back(d.text);
  const auto tk =
      tok::BpeTokenizer::train(texts, tok::TokenizerKind::kHuggingFace, 512);

  std::map<std::string, data::CorpusStats> stats;
  for (const auto& d : screened) {
    auto& s = stats[d.source];
    s.source = d.source;
    if (d.full_text) {
      ++s.n_full_texts;
    } else {
      ++s.n_abstracts;
    }
    s.n_tokens += tk.encode(d.text).size();
  }

  TablePrinter table({"Source", "#abstract", "#full-text", "#tokens",
                      "paper #abstract", "paper #tokens"});
  const std::map<std::string, std::pair<std::string, std::string>> paper{
      {"CORE", {"2.5M", "8.8B"}},
      {"MAG", {"15M", "3.5B"}},
      {"Aminer", {"3M", "1.2B"}},
      {"SCOPUS", {"6M", "1.5B"}},
  };
  std::size_t tot_a = 0, tot_f = 0, tot_t = 0;
  for (const char* name : {"CORE", "MAG", "Aminer", "SCOPUS"}) {
    const auto& s = stats[name];
    table.add_row({name, TablePrinter::fmt_int(s.n_abstracts),
                   TablePrinter::fmt_int(s.n_full_texts),
                   TablePrinter::fmt_int(s.n_tokens),
                   paper.at(name).first, paper.at(name).second});
    tot_a += s.n_abstracts;
    tot_f += s.n_full_texts;
    tot_t += s.n_tokens;
  }
  table.add_row({"All", TablePrinter::fmt_int(tot_a),
                 TablePrinter::fmt_int(tot_f), TablePrinter::fmt_int(tot_t),
                 "26.5M", "15B"});
  std::printf("%s", table.render().c_str());

  bench::print_section("screening quality (SciBERT-classifier stand-in)");
  std::printf("precision %.3f  recall %.3f  kept %zu / %zu aggregated docs\n",
              quality.precision, quality.recall, quality.kept, quality.total);
  return 0;
}
