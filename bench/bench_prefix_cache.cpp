// Prefix-cache prefill throughput: radix-tree prompt reuse vs cold prefill.
//
// Replays a prefill-dominated trace (long prompts, 1-2 generated tokens,
// 80% of requests opening with one shared system-prompt span) through the
// InferenceEngine twice: once with the prefix cache disabled and once with
// it enabled. A hit aliases the shared span's KV blocks into the request's
// block table (zero-copy, refcounted) and prefills only the unshared tail,
// so the cached run should complete the same trace in a fraction of the
// prompt-processing time.
// Verifies the cached run's tokens are byte-identical to the cold run's,
// then reports prompt tokens/s, hit-rate counters, and the speedup.
//
// Acceptance gate: >= 1.5x prompt-token throughput at 80% shared-prefix
// traffic.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/trace.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("=== prefix-cache prefill throughput: radix reuse vs cold ===\n");

  // Same serving-shaped model as bench_serving_throughput: large enough
  // that prefill time is real compute, GQA so the KV economics are honest.
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 8192;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 128;
  nn::GptModel model(c);

  // Prefill-dominated workload: long prompts, almost no decode, and 80% of
  // requests opening with the same 48-token span (system prompt + few-shot
  // header, the traffic prefix caching exists for).
  serve::TraceSpec spec;
  spec.n_requests = 32;
  spec.vocab_size = c.vocab_size;
  spec.prompt_len_min = 48;
  spec.prompt_len_max = 64;
  spec.max_new_min = 1;
  spec.max_new_max = 2;
  spec.shared_prefix_fraction = 0.8;
  spec.shared_prefix_len = 48;
  const auto trace = serve::synth_trace(spec);

  std::int64_t prompt_tokens = 0;
  for (const auto& req : trace) {
    prompt_tokens += static_cast<std::int64_t>(req.prompt.size());
  }
  std::printf("model: llama %lld hidden, %lld layers, %lld heads (%lld kv)\n",
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.n_layers),
              static_cast<long long>(c.n_heads),
              static_cast<long long>(c.kv_heads()));
  std::printf("trace: %zu requests, %lld prompt tokens, prompts %lld..%lld, "
              "%.0f%% sharing a %lld-token prefix\n\n",
              trace.size(), static_cast<long long>(prompt_tokens),
              static_cast<long long>(spec.prompt_len_min),
              static_cast<long long>(spec.prompt_len_max),
              100.0 * spec.shared_prefix_fraction,
              static_cast<long long>(spec.shared_prefix_len));

  // Warm up allocators and instruction caches on an off-trace request.
  {
    Rng warm(1);
    model.generate_cached(trace[0].prompt, 2, trace[0].sampling, warm);
  }

  serve::EngineConfig base;
  base.max_batch = 8;
  base.kv_slots = 8;

  // Deterministic paths; best-of-reps removes shared-box scheduler noise.
  constexpr int kReps = 3;
  auto run = [&](const serve::EngineConfig& ec, double& best_s,
                 std::string& report, std::uint64_t& reused,
                 double& hit_rate) {
    std::vector<serve::RequestResult> best;
    for (int rep = 0; rep < kReps; ++rep) {
      serve::InferenceEngine engine(model, ec);
      auto replay = trace;
      const auto t0 = Clock::now();
      auto results = engine.run_trace(std::move(replay));
      const double s = secs_since(t0);
      if (rep == 0 || s < best_s) {
        best_s = s;
        best = std::move(results);
        report = engine.stats().report(s);
        reused = engine.stats().prefix_tokens_reused();
        hit_rate = engine.stats().prefix_hit_rate();
      }
    }
    return best;
  };

  double cold_s = 0.0, cold_hit = 0.0;
  std::uint64_t cold_reused = 0;
  std::string cold_report;
  const auto cold = run(base, cold_s, cold_report, cold_reused, cold_hit);
  const double cold_tps = static_cast<double>(prompt_tokens) / cold_s;
  std::printf("cold prefill:  %.3f s -> %.1f prompt tokens/s (best of %d)\n",
              cold_s, cold_tps, kReps);

  serve::EngineConfig cached_ec = base;
  cached_ec.prefix_cache_bytes = 4u << 20;  // plenty for one shared span
  double cached_s = 0.0, hit_rate = 0.0;
  std::uint64_t reused = 0;
  std::string cached_report;
  const auto cached = run(cached_ec, cached_s, cached_report, reused,
                          hit_rate);
  const double cached_tps = static_cast<double>(prompt_tokens) / cached_s;
  std::printf("prefix cache:  %.3f s -> %.1f prompt tokens/s (best of %d)\n",
              cached_s, cached_tps, kReps);

  // Byte identity: reusing cached rows must not change a single token.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cached.size(); ++i) {
    if (cached[i].tokens != cold[i].tokens) ++mismatches;
  }
  std::printf("token identity vs cold prefill: %s (%zu/%zu requests match)\n",
              mismatches == 0 ? "OK" : "MISMATCH",
              cached.size() - mismatches, cached.size());

  std::printf("\n%s", cached_report.c_str());
  const double speedup = cached_tps / cold_tps;
  std::printf("\nspeedup: %.2fx prompt-token throughput (%.0f%% hit rate, "
              "%llu tokens reused)\n",
              speedup, 100.0 * hit_rate,
              static_cast<unsigned long long>(reused));

  bench::write_bench_json(
      "BENCH_prefix.json",
      {{"cold_prompt_tokens_per_s", cold_tps},
       {"cached_prompt_tokens_per_s", cached_tps},
       {"speedup", speedup},
       {"prefix_hit_rate", hit_rate},
       {"prefix_tokens_reused", static_cast<double>(reused)},
       {"prompt_tokens", static_cast<double>(prompt_tokens)},
       {"shared_prefix_fraction", spec.shared_prefix_fraction}});
  const bool pass = mismatches == 0 && speedup >= 1.5;
  std::printf("%s: prefix caching %s the >=1.5x gate\n",
              pass ? "PASS" : "FAIL", speedup >= 1.5 ? "clears" : "misses");
  return pass ? 0 : 1;
}
