// Google-benchmark microbenchmarks of the CPU engine's hot kernels: the
// blocked GEMM variants, flash vs. materialized attention (forward and
// forward+backward), and the fused cross-entropy — the on-engine analog of
// the paper's kernel-level analysis (Fig. 10).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace {

using namespace matgpt;

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    kernels::gemm_nn(a.data(), b.data(), c.data(), n, n, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    kernels::gemm_nt(a.data(), b.data(), c.data(), n, n, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void attention_forward(benchmark::State& state, bool flash) {
  const auto t = static_cast<std::int64_t>(state.range(0));
  Rng rng(2);
  Tensor q0 = Tensor::randn({1, t, 4, 16}, rng);
  Tensor k0 = Tensor::randn({1, t, 4, 16}, rng);
  Tensor v0 = Tensor::randn({1, t, 4, 16}, rng);
  for (auto _ : state) {
    Tape tape;
    tape.set_recording(false);
    Var q = tape.leaf(q0, false);
    Var k = tape.leaf(k0, false);
    Var v = tape.leaf(v0, false);
    Var out = ops::attention(tape, q, k, v, true, flash);
    benchmark::DoNotOptimize(out.value().data());
  }
}
void BM_AttentionMaterializedFwd(benchmark::State& state) {
  attention_forward(state, false);
}
void BM_AttentionFlashFwd(benchmark::State& state) {
  attention_forward(state, true);
}
BENCHMARK(BM_AttentionMaterializedFwd)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_AttentionFlashFwd)->Arg(64)->Arg(128)->Arg(256);

void attention_train(benchmark::State& state, bool flash) {
  const auto t = static_cast<std::int64_t>(state.range(0));
  Rng rng(2);
  Tensor q0 = Tensor::randn({1, t, 4, 16}, rng);
  for (auto _ : state) {
    Tape tape;
    Var q = tape.leaf(q0.clone(), true);
    Var k = tape.leaf(q0.clone(), true);
    Var v = tape.leaf(q0.clone(), true);
    Var out = ops::attention(tape, q, k, v, true, flash);
    Var loss = ops::sum_all(tape, out);
    tape.backward(loss);
    benchmark::DoNotOptimize(q.grad().data());
  }
}
void BM_AttentionMaterializedTrain(benchmark::State& state) {
  attention_train(state, false);
}
void BM_AttentionFlashTrain(benchmark::State& state) {
  attention_train(state, true);
}
BENCHMARK(BM_AttentionMaterializedTrain)->Arg(64)->Arg(128);
BENCHMARK(BM_AttentionFlashTrain)->Arg(64)->Arg(128);

void BM_CrossEntropy(benchmark::State& state) {
  const auto v = static_cast<std::int64_t>(state.range(0));
  Rng rng(3);
  Tensor logits0 = Tensor::randn({64, v}, rng);
  std::vector<std::int32_t> targets(64);
  for (auto& t : targets) {
    t = static_cast<std::int32_t>(rng.uniform_int(
        static_cast<std::uint64_t>(v)));
  }
  for (auto _ : state) {
    Tape tape;
    Var logits = tape.leaf(logits0.clone(), true);
    Var loss = ops::cross_entropy(tape, logits, targets);
    tape.backward(loss);
    benchmark::DoNotOptimize(logits.grad().data());
  }
}
BENCHMARK(BM_CrossEntropy)->Arg(512)->Arg(2048);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(4);
  Tensor x0 = Tensor::randn({256, 256}, rng);
  Tensor g0 = Tensor::full({256}, 1.0f);
  Tensor b0 = Tensor::zeros({256});
  for (auto _ : state) {
    Tape tape;
    tape.set_recording(false);
    Var x = tape.leaf(x0, false);
    Var g = tape.leaf(g0, false);
    Var b = tape.leaf(b0, false);
    Var y = ops::layer_norm(tape, x, g, b);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_LayerNorm);

}  // namespace

BENCHMARK_MAIN();
