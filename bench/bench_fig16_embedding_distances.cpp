// Regenerates Fig. 16: density distributions of (left) Euclidean distances
// and (right) cosine similarities between formula-embedding vectors, for
// the MatGPT variants and the MatSciBERT stand-in.
//
// Paper shapes: GPT embedding vectors sit much closer to each other than
// BERT vectors (distance histograms hug the y-axis), and all GPT variants'
// pairwise cosines pile up near 1, while BERT cosines spread out.

#include "bench_util.h"
#include "embed/embedding.h"
#include "eval/scorer.h"

using namespace matgpt;

int main() {
  bench::print_header("Fig. 16",
                      "Embedding distance / cosine densities (formulas)");
  auto sc = bench::default_study_config();
  core::ComparativeStudy study(sc);

  core::ExperimentSpec llama{"LLaMA-HF", nn::ArchFamily::kLLaMA,
                             tok::TokenizerKind::kHuggingFace, 512,
                             core::OptimizerKind::kLamb, 16, false,
                             DType::kFloat32};
  core::ExperimentSpec neox = llama;
  neox.label = "NeoX-HF";
  neox.arch = nn::ArchFamily::kNeoX;

  std::printf("training GPT variants + BERT stand-in ...\n");
  std::fflush(stdout);
  const auto ml = study.run_experiment(llama);
  const auto mn = study.run_experiment(neox);
  const auto bert = bench::train_bert_standin(study, *ml.tokenizer);

  // Embed a shared formula set with every model.
  const std::size_t n_formulas = 120;
  std::vector<std::string> formulas;
  for (std::size_t i = 0; i < n_formulas && i < study.materials().size();
       ++i) {
    formulas.push_back(study.materials()[i].formula);
  }
  auto embed_gpt = [&](const core::PretrainedModel& pm) {
    embed::EmbeddingSet set;
    for (const auto& f : formulas) {
      set.vectors.push_back(
          embed::gpt_formula_embedding(*pm.model, *pm.tokenizer, f));
      set.labels.push_back(f);
    }
    return set;
  };
  embed::EmbeddingSet bert_set;
  for (const auto& f : formulas) {
    bert_set.vectors.push_back(bert->embed(ml.tokenizer->encode(f)));
    bert_set.labels.push_back(f);
  }

  struct Entry {
    std::string label;
    embed::EmbeddingSet set;
  };
  std::vector<Entry> entries;
  entries.push_back({"MatGPT-LLaMA", embed_gpt(ml)});
  entries.push_back({"MatGPT-NeoX", embed_gpt(mn)});
  entries.push_back({"MatSciBERT", std::move(bert_set)});

  // Use one shared distance range so the histograms are comparable.
  double dist_hi = 0.0;
  {
    Rng rng(3);
    for (auto& e : entries) {
      const auto s = embed::pairwise_stats(e.set, 200, rng);
      dist_hi = std::max(dist_hi, s.distance_hist.bin_hi(
                                      s.distance_hist.bin_count() - 1));
    }
  }

  TablePrinter table({"model", "mean pair distance", "mean pair cosine",
                      "cosine > 0.9 share"});
  for (auto& e : entries) {
    Rng rng(5);
    const auto s = embed::pairwise_stats(e.set, 2000, rng, dist_hi);
    double near_one = 0.0;
    for (std::size_t b = 0; b < s.cosine_hist.bin_count(); ++b) {
      if (s.cosine_hist.bin_lo(b) >= 0.9) near_one += s.cosine_hist.count(b);
    }
    table.add_row({e.label, TablePrinter::fmt(s.mean_distance, 3),
                   TablePrinter::fmt(s.mean_cosine, 3),
                   TablePrinter::fmt_percent(near_one /
                                             s.cosine_hist.total())});
    bench::print_section(e.label + ": distance density (shared range)");
    std::printf("%s", s.distance_hist.ascii(36).c_str());
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper shapes: GPT variants — small mutual distances, cosines near 1 "
      "(overlapping vertical line); BERT — larger distances, spread-out "
      "cosines.\nscale caveat: the paper's cosine~1 GPT geometry is the "
      "anisotropy of billion-parameter causal LMs; it does not emerge in "
      "these 2-layer stand-ins, so at this scale the densities separate the "
      "models without matching the paper's direction (see EXPERIMENTS.md).\n");
  return 0;
}
