// Regenerates Fig. 12: rocm-smi-style traces of power, memory, and GPU
// utilization while training MatGPT 1.7B and 6.7B on 256 GCDs.
//
// Paper: mean MI250X power 476 W (1.7B) and 434 W (6.7B) with larger
// oscillation for 6.7B; near-100% GPU utilization in both cases (RCCL
// kernels also occupy the GPU, so utilization is a poor compute signal);
// power correlates with computational performance instead.

#include "bench_util.h"
#include "simfrontier/trace.h"

using namespace matgpt;
using namespace matgpt::sim;

namespace {
void trace_for(const TrainingSimulator& sim, const char* label,
               const ModelDesc& model, const ParallelConfig& parallel,
               std::int64_t tokens, double paper_power) {
  bench::print_section(label);
  const auto profile = sim.simulate_step(model, parallel, tokens, 2048,
                                         AttentionImpl::kFlashV2);
  const auto trace = StepTrace::build(sim, model, parallel, tokens, 2048,
                                      AttentionImpl::kFlashV2);
  const double dt = trace.duration_s() / 200.0;
  const auto power = trace.power_trace(dt, GcdSpec{});
  const auto util = trace.utilization_trace(dt);
  const auto mem = trace.memory_trace(dt, profile.memory, GcdSpec{});

  double p_mean = 0.0, p_lo = 1e9, p_hi = 0.0;
  for (const auto& s : power) {
    p_mean += s.value;
    p_lo = std::min(p_lo, s.value);
    p_hi = std::max(p_hi, s.value);
  }
  p_mean /= static_cast<double>(power.size());
  double u_mean = 0.0;
  for (const auto& s : util) u_mean += s.value;
  u_mean /= static_cast<double>(util.size());
  double m_peak = 0.0;
  for (const auto& s : mem) m_peak = std::max(m_peak, s.value);

  std::printf("power per MI250X: mean %.0f W (paper %.0f), range %.0f–%.0f W "
              "(oscillation %.0f W)\n",
              p_mean, paper_power, p_lo, p_hi, p_hi - p_lo);
  std::printf("GPU utilization: mean %.1f%% (pinned near 100%%)\n",
              100.0 * u_mean);
  std::printf("peak HBM usage: %.0f%%\n", 100.0 * m_peak);
  // Compact ASCII power sparkline.
  std::printf("power trace: ");
  for (std::size_t i = 0; i < power.size(); i += 5) {
    const int level = static_cast<int>(
        (power[i].value - 150.0) / (520.0 - 150.0) * 8.0);
    std::printf("%c", " .:-=+*#%"[std::clamp(level, 0, 8)]);
  }
  std::printf("\n");
}
}  // namespace

int main() {
  bench::print_header("Fig. 12",
                      "Power / memory / utilization traces, 256 GCDs");
  TrainingSimulator sim((Platform()));
  trace_for(sim, "MatGPT 1.7B (data parallel)",
            ModelDesc::matgpt_1_7b(ArchFamily::kNeoX), {256, 1, 1, false},
            16384, 476.0);
  trace_for(sim, "MatGPT 6.7B (ZeRO stage 1)",
            ModelDesc::matgpt_6_7b(ArchFamily::kNeoX), {256, 1, 1, true},
            8192, 434.0);
  std::printf(
      "\npaper: the 6.7B trace oscillates more (communication share), and "
      "power — not utilization — tracks computational performance.\n");
  return 0;
}
