// Regenerates Fig. 17: embedding clustering of material formulas after PCA
// + t-SNE, reported as cluster statistics (estimated cluster count,
// silhouette, and purity against the physical conductor / semiconductor /
// insulator classes) for the MatSciBERT stand-in and the MatGPT variants.
//
// Paper shapes: MatSciBERT embeddings form one big diffuse cluster
// (insufficient knowledge representation); GPT variants form a few
// well-separated clusters that track the band-gap classes; SPM tokenization
// over-fragments formulas and over-clusters.

#include "bench_util.h"
#include "embed/cluster.h"
#include "embed/embedding.h"

using namespace matgpt;

int main() {
  bench::print_header("Fig. 17", "Embedding clustering (PCA + t-SNE)");
  auto sc = bench::default_study_config();
  core::ComparativeStudy study(sc);

  core::ExperimentSpec llama_hf{"LLaMA-HF", nn::ArchFamily::kLLaMA,
                                tok::TokenizerKind::kHuggingFace, 512,
                                core::OptimizerKind::kLamb, 16, false,
                                DType::kFloat32};
  core::ExperimentSpec llama_spm = llama_hf;
  llama_spm.label = "LLaMA-SPM";
  llama_spm.tokenizer = tok::TokenizerKind::kSentencePiece;
  core::ExperimentSpec neox = llama_hf;
  neox.label = "NeoX-HF";
  neox.arch = nn::ArchFamily::kNeoX;

  std::printf("training three GPT variants + BERT stand-in ...\n");
  std::fflush(stdout);
  const auto m_hf = study.run_experiment(llama_hf);
  const auto m_spm = study.run_experiment(llama_spm);
  const auto m_neox = study.run_experiment(neox);
  const auto bert = bench::train_bert_standin(study, *m_hf.tokenizer);

  const std::size_t n = std::min<std::size_t>(110, study.materials().size());
  std::vector<std::size_t> gap_labels;
  for (std::size_t i = 0; i < n; ++i) {
    gap_labels.push_back(
        static_cast<std::size_t>(study.materials()[i].gap_class));
  }

  struct Analysis {
    embed::ClusterEstimate est;
    double purity = 0.0;
  };
  auto analyze = [&](const std::string& label, embed::Matrix vectors) {
    // PCA to 8 dims then t-SNE to 2, as the paper does (TSNE in tandem
    // with PCA).
    const std::size_t pca_dims =
        std::min<std::size_t>(8, vectors[0].size());
    const embed::Matrix reduced = embed::pca(vectors, pca_dims);
    embed::TsneOptions topt;
    topt.iterations = 250;
    Rng trng(11);
    const embed::Matrix y = embed::tsne_2d(reduced, topt, trng);
    Rng krng(13);
    Analysis a;
    a.est = embed::estimate_clusters(y, 8, krng);
    a.purity = embed::purity(a.est.result.assignment, gap_labels);
    std::printf("%-14s clusters %zu  silhouette %.3f  gap-class purity %.3f\n",
                label.c_str(), a.est.k, a.est.silhouette, a.purity);
    return a;
  };

  bench::print_section("cluster statistics per embedding space");
  embed::Matrix bert_vecs, hf_vecs, spm_vecs, neox_vecs;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& f = study.materials()[i].formula;
    bert_vecs.push_back(bert->embed(m_hf.tokenizer->encode(f)));
    hf_vecs.push_back(
        embed::gpt_formula_embedding(*m_hf.model, *m_hf.tokenizer, f));
    spm_vecs.push_back(
        embed::gpt_formula_embedding(*m_spm.model, *m_spm.tokenizer, f));
    neox_vecs.push_back(
        embed::gpt_formula_embedding(*m_neox.model, *m_neox.tokenizer, f));
  }
  const auto bert_a = analyze("MatSciBERT", bert_vecs);
  const auto neox_a = analyze("MatGPT-NeoX", neox_vecs);
  const auto hf_a = analyze("LLaMA-HF", hf_vecs);
  const auto spm_a = analyze("LLaMA-SPM", spm_vecs);

  bench::print_section("paper-shape checks");
  std::printf(
      "materials have 3 physical classes (conductor/semiconductor/"
      "insulator); the paper's best model (NeoX) clusters consistently with "
      "them.\n");
  std::printf("NeoX cluster count %zu vs the 3 physical classes: %s\n",
              neox_a.est.k,
              neox_a.est.k == 3 ? "matches (the paper's consistency claim)"
                                : "differs here");
  const double best_gpt_purity =
      std::max({neox_a.purity, hf_a.purity, spm_a.purity});
  std::printf("best GPT gap-class purity %.3f vs BERT %.3f: %s\n",
              best_gpt_purity, bert_a.purity,
              best_gpt_purity >= bert_a.purity
                  ? "a GPT space tracks the physics best (paper shape)"
                  : "BERT tracks better here");
  std::printf("SPM vs HF cluster structure differs (%zu vs %zu clusters): "
              "tokenization changes the embedding geometry, the paper's "
              "mechanism — though at this scale SPM under- rather than "
              "over-segments.\n",
              spm_a.est.k, hf_a.est.k);
  return 0;
}
