// Regenerates Fig. 5: peak HBM usage when training MatGPT 1.7B for context
// lengths 2048..65536 with and without flash attention (simulated Frontier
// GCD), plus a real-engine ablation measuring actual peak activation bytes
// of flash vs. materialized attention on the CPU tensor engine.
//
// Paper: without flash, OOM beyond 8192; with flash, memory growth becomes
// linear and the max context extends ~4x to 32768.

#include "bench_util.h"
#include "simfrontier/memory_model.h"
#include "tensor/ops.h"

using namespace matgpt;

int main() {
  bench::print_header("Fig. 5",
                      "Peak memory vs. context length, with/without flash");
  sim::Platform plat;
  sim::MemoryModel mm(plat);
  const auto model = sim::ModelDesc::matgpt_1_7b(sim::ArchFamily::kNeoX);
  const sim::ParallelConfig serial{};

  TablePrinter table({"seq len", "no-flash (% HBM)", "no-flash fits",
                      "flash (% HBM)", "flash fits"});
  for (std::int64_t seq = 2048; seq <= 65536; seq *= 2) {
    const auto nf = mm.training_memory(model, 1, seq,
                                       sim::AttentionImpl::kMaterialized,
                                       serial);
    const auto fl = mm.training_memory(model, 1, seq,
                                       sim::AttentionImpl::kFlashV1, serial);
    table.add_row({TablePrinter::fmt_int(seq),
                   TablePrinter::fmt_percent(
                       nf.fraction_of(plat.gcd.hbm_bytes), 0),
                   mm.fits(nf) ? "ok" : "OOM",
                   TablePrinter::fmt_percent(
                       fl.fraction_of(plat.gcd.hbm_bytes), 0),
                   mm.fits(fl) ? "ok" : "OOM"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "max context: no-flash %lld, flash %lld (paper: 8192 -> 32768, ~4x)\n",
      static_cast<long long>(mm.max_sequence_length(
          model, sim::AttentionImpl::kMaterialized, serial)),
      static_cast<long long>(
          mm.max_sequence_length(model, sim::AttentionImpl::kFlashV1,
                                 serial)));

  bench::print_section(
      "real-engine ablation: measured peak activation bytes (tiny model)");
  // The same structural claim on the executable engine: the materialized
  // path allocates the [B, H, T, T] probability tensor, flash only O(T).
  Rng rng(5);
  TablePrinter real({"seq len", "materialized bytes", "flash bytes",
                     "ratio"});
  for (std::int64_t t : {32, 64, 128, 256}) {
    auto peak_for = [&](bool flash) {
      Tensor q0 = Tensor::randn({1, t, 2, 8}, rng);
      auto& tracker = MemoryTracker::instance();
      tracker.reset_peak();
      const std::size_t before = tracker.current_bytes();
      Tape tape;
      Var q = tape.leaf(q0.clone(), true);
      Var k = tape.leaf(q0.clone(), true);
      Var v = tape.leaf(q0.clone(), true);
      Var out = ops::attention(tape, q, k, v, true, flash);
      Var loss = ops::sum_all(tape, out);
      tape.backward(loss);
      return tracker.peak_bytes() - before;
    };
    const auto mat = peak_for(false);
    const auto fla = peak_for(true);
    real.add_row({TablePrinter::fmt_int(t), TablePrinter::fmt_int(
                                               static_cast<long long>(mat)),
                  TablePrinter::fmt_int(static_cast<long long>(fla)),
                  TablePrinter::fmt(static_cast<double>(mat) /
                                        static_cast<double>(fla),
                                    2)});
  }
  std::printf("%s", real.render().c_str());
  std::printf("ratio grows ~linearly with seq (quadratic vs linear memory)\n");
  return 0;
}
