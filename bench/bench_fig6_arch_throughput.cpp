// Regenerates Fig. 6: training throughput of the NeoX vs. LLaMA
// architectures for the 8 flash-eligible ~1B archs (the A–H marks of
// Fig. 4), with flash attention enabled.
//
// Paper: both perform about the same (identical attention layers); NeoX
// shows a slight edge in 7 of 8 cases, attributed to the MLP
// parameterization (2 GELU linears vs. 3 SiLU linears).

#include "bench_util.h"
#include "simfrontier/archsearch.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Fig. 6", "NeoX vs. LLaMA throughput, 8 archs, flash");
  ArchitectureSearch search((Platform()));
  SearchConstraints constraints;
  constraints.min_params = 1'400'000'000;
  constraints.max_params = 2'300'000'000;
  auto pick_aligned = [&](ArchFamily arch) {
    auto cands = search.search(arch, 52000,
                               ArchitectureSearch::default_layer_grid(),
                               ArchitectureSearch::default_hidden_grid(),
                               constraints, 16, 2048);
    std::vector<ArchCandidate> aligned;
    for (auto& c : cands) {
      if (c.tflops_flash_v2 > 0.0) aligned.push_back(c);
    }
    return aligned;
  };
  const auto neox = pick_aligned(ArchFamily::kNeoX);
  const auto llama = pick_aligned(ArchFamily::kLLaMA);

  TablePrinter table({"arch (L/h/d)", "NeoX TFLOPS", "LLaMA TFLOPS",
                      "edge"});
  int neox_wins = 0;
  std::size_t cases = std::min<std::size_t>({neox.size(), llama.size(), 8});
  for (std::size_t i = 0; i < cases; ++i) {
    char label[48];
    std::snprintf(label, sizeof(label), "%lld/%lld/%lld",
                  static_cast<long long>(neox[i].model.n_layers),
                  static_cast<long long>(neox[i].model.hidden),
                  static_cast<long long>(neox[i].head_dim()));
    const double n = neox[i].tflops_flash_v2;
    const double l = llama[i].tflops_flash_v2;
    neox_wins += n >= l;
    table.add_row({label, TablePrinter::fmt(n, 2), TablePrinter::fmt(l, 2),
                   n >= l ? "NeoX" : "LLaMA"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "NeoX edges ahead in %d of %zu cases (paper: 7 of 8, via the MLP "
      "parameterization); differences are small (identical attention).\n",
      neox_wins, cases);
  return 0;
}
