// Regenerates Fig. 11: the histogram of RCCL message sizes and the
// aggregated per-step per-GPU message volume for the three parallelism
// settings of Fig. 8 (1.7B data parallel, 6.7B ZeRO-1, 6.7B TP=2).
//
// Paper: ZeRO-1 and TP=2 issue over an order of magnitude more RCCL calls
// than plain DP; DP and ZeRO move ~2x the model size per step, TP ~3x (the
// extra activation allreduces), yet TP scales better because its traffic
// stays on the 200 GB/s GCD pair.

#include "bench_util.h"
#include "simfrontier/parallelism.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Fig. 11", "RCCL message histogram + per-step volume");
  TrainingSimulator sim((Platform()));
  const auto m17 = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto m67 = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);

  struct Case {
    const char* label;
    ModelDesc model;
    ParallelConfig parallel;
    std::int64_t tokens;
  };
  const std::vector<Case> cases{
      {"1.7B data-parallel", m17, {256, 1, 1, false}, 16384},
      {"6.7B ZeRO stage 1", m67, {256, 1, 1, true}, 8192},
      {"6.7B TP=2", m67, {128, 2, 1, false}, 8192},
  };

  TablePrinter table({"setting", "RCCL calls/step", "volume/step/GPU",
                      "x model size"});
  for (const auto& c : cases) {
    const auto p = sim.simulate_step(c.model, c.parallel, c.tokens, 2048,
                                     AttentionImpl::kFlashV2);
    const double model_bytes = 2.0 * static_cast<double>(c.model.params());
    char vol[32];
    std::snprintf(vol, sizeof(vol), "%.1f GB",
                  p.messages.total_transferred_bytes() / 1e9);
    table.add_row(
        {c.label,
         TablePrinter::fmt_int(p.messages.total_calls()), vol,
         TablePrinter::fmt(p.messages.total_transferred_bytes() / model_bytes,
                           2)});
  }
  std::printf("%s", table.render().c_str());

  for (const auto& c : cases) {
    const auto p = sim.simulate_step(c.model, c.parallel, c.tokens, 2048,
                                     AttentionImpl::kFlashV2);
    bench::print_section(std::string("message-size histogram: ") + c.label);
    for (const auto& r : p.messages.records()) {
      std::printf("  %-14s x%-5d %10.2f MB each (group of %d)\n",
                  collective_name(r.collective), r.count, r.bytes / 1e6,
                  r.group_size);
    }
    std::printf("%s", p.messages.size_histogram().ascii(40).c_str());
  }
  return 0;
}
