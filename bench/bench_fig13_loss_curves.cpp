// Regenerates Fig. 13: training and validation loss curves for the MatGPT
// pre-training grid — model size x tokenizer x vocabulary x optimizer x
// batch size — as real (scaled-down) training runs on the CPU engine, plus
// the fp16-vs-bf16 precision ablation the paper reports in passing.
//
// Paper observations reproduced in shape:
//  * LAMB @ 4M-token batch reaches a slightly lower loss (~2%) than
//    Adam @ 1M on the same data (large-batch gap closed).
//  * SPM / 32K losses are NOT comparable (different token streams).
//  * Under the LAMB recipe LLaMA edges out NeoX (Observation 3).
//  * fp16 and bf16 loss curves are almost identical.

#include "bench_util.h"

using namespace matgpt;

int main() {
  bench::print_header("Fig. 13", "Train/val loss curves for the MatGPT grid");
  auto sc = bench::default_study_config();
  core::ComparativeStudy study(sc);
  study.prepare_corpus();
  std::printf("screened corpus: %zu docs; screen precision %.2f recall %.2f\n",
              study.screened_corpus().size(),
              study.screen_quality().precision,
              study.screen_quality().recall);

  const auto specs = core::fig13_experiments();
  std::vector<core::PretrainedModel> results;
  for (const auto& spec : specs) {
    std::printf("training %-28s ...\n", spec.label.c_str());
    std::fflush(stdout);
    results.push_back(study.run_experiment(spec));
  }

  bench::print_section("loss curves (step: train / val)");
  for (const auto& r : results) {
    std::printf("%-28s", r.spec.label.c_str());
    for (std::size_t i = 0; i < r.curve.points.size();
         i += std::max<std::size_t>(1, r.curve.points.size() / 6)) {
      const auto& p = r.curve.points[i];
      std::printf("  %lld: %.2f/%.2f", static_cast<long long>(p.step),
                  p.train_loss, p.val_loss);
    }
    std::printf("  -> tail val %.3f\n", r.curve.tail_val_loss());
  }

  auto find = [&](const std::string& label) -> const core::PretrainedModel& {
    for (const auto& r : results) {
      if (r.spec.label == label) return r;
    }
    throw Error("missing experiment " + label);
  };

  bench::print_section("paper-observation checks");
  const auto& adam = find("1.7B-HF-52K-Adam-1M");
  const auto& lamb = find("1.7B-HF-52K-LAMB-4M");
  std::printf(
      "LAMB@4M vs Adam@1M val loss: %.3f vs %.3f (%.1f%% lower; paper ~2%% "
      "lower) -> %s\n",
      lamb.curve.tail_val_loss(), adam.curve.tail_val_loss(),
      100.0 * (1.0 - lamb.curve.tail_val_loss() / adam.curve.tail_val_loss()),
      lamb.curve.tail_val_loss() <= adam.curve.tail_val_loss() * 1.02
          ? "reproduced"
          : "NOT reproduced");

  const auto& spm = find("1.7B-SPM-52K-LAMB-4M");
  const auto& v32 = find("1.7B-HF-32K-LAMB-4M");
  std::printf(
      "tokenizer/vocab runs land on different scales (SPM %.3f, 32K %.3f vs "
      "HF-52K %.3f): losses are not comparable across token streams "
      "(Observation 3)\n",
      spm.curve.tail_val_loss(), v32.curve.tail_val_loss(),
      lamb.curve.tail_val_loss());

  const auto& big = find("6.7B-HF-52K-LAMB-4M");
  std::printf(
      "bigger model vs smaller, same data: %.3f vs %.3f -> %s\n",
      big.curve.tail_val_loss(), lamb.curve.tail_val_loss(),
      big.curve.tail_val_loss() < lamb.curve.tail_val_loss()
          ? "reproduced (bigger is lower, as in the paper)"
          : "not separated at this scale — the templated synthetic corpus "
            "saturates the small model, so capacity cannot pay off; the "
            "paper's effect needs its 15B-token data >> params regime "
            "(see EXPERIMENTS.md)");

  const auto& neox = find("NeoX-1.7B-HF-52K-LAMB-4M");
  std::printf("LLaMA vs NeoX under LAMB: %.3f vs %.3f -> %s\n",
              lamb.curve.tail_val_loss(), neox.curve.tail_val_loss(),
              lamb.curve.tail_val_loss() <= neox.curve.tail_val_loss() * 1.02
                  ? "LLaMA at or below NeoX (paper shape)"
                  : "NeoX lower here");

  bench::print_section("precision ablation: bf16 vs fp16 (paper: identical)");
  core::ExperimentSpec bf16 = lamb.spec;
  bf16.label = "1.7B-HF-52K-LAMB-bf16";
  bf16.precision = DType::kBFloat16;
  core::ExperimentSpec fp16 = lamb.spec;
  fp16.label = "1.7B-HF-52K-LAMB-fp16";
  fp16.precision = DType::kFloat16;
  const auto rb = study.run_experiment(bf16);
  const auto rf = study.run_experiment(fp16);
  std::printf("bf16 val %.4f vs fp16 val %.4f (diff %.2f%%)\n",
              rb.curve.tail_val_loss(), rf.curve.tail_val_loss(),
              100.0 * std::fabs(rb.curve.tail_val_loss() -
                                rf.curve.tail_val_loss()) /
                  rb.curve.tail_val_loss());

  bench::print_section("ablation: LAMB trust ratio (the large-batch fix)");
  // Same large-batch recipe but trust ratio forced to 1 (AdamW-like):
  // demonstrates what LAMB buys at 4M-token batches.
  {
    data::TokenDataset ds(study.screened_corpus(), *lamb.tokenizer, 0.1,
                          sc.seed ^ 0xab1eULL);
    nn::GptConfig mc = core::scaled_model_config(lamb.spec, sc.seq);
    mc.vocab_size = lamb.tokenizer->vocab_size();
    nn::GptModel with_trust(mc), without_trust(mc);
    auto run = [&](nn::GptModel& m, bool use_trust) {
      optim::LambConfig lc;
      lc.weight_decay = 0.1;
      lc.use_trust_ratio = use_trust;
      optim::Lamb opt(m.parameters(), lc);
      const std::int64_t ablation_steps = sc.steps / 2;  // a cheap probe
      optim::CosineSchedule sched(8e-2, ablation_steps);  // the tuned peak
      double last = 0.0;
      for (std::int64_t s = 0; s < ablation_steps; ++s) {
        auto b = ds.sample_batch(24, sc.seq);
        Tape tape;
        Var loss = m.loss(tape, b.tokens, b.targets, 24, sc.seq);
        last = loss.item();
        m.zero_grad();
        tape.backward(loss);
        opt.clip_grad_norm(1.0);
        opt.step(sched.lr(s));
      }
      return last;
    };
    const double with = run(with_trust, true);
    const double without = run(without_trust, false);
    std::printf("final train loss: trust ratio on %.3f vs off %.3f\n", with,
                without);
  }
  return 0;
}
