// Regenerates Fig. 7: single-node (8 GCD) training throughput for MatGPT
// 1.7B (pure data parallel) and 6.7B under ZeRO stage 1, TP=2, and PP=2 —
// each with and without flash attention.
//
// Paper: ZeRO-1 gives the best 6.7B throughput (81 TFLOPS/GPU), with a flash
// boost similar to the 1.7B model; PP=2 is clearly worst already at one node.

#include "bench_util.h"
#include "simfrontier/parallelism.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Fig. 7", "Single-node throughput by parallelism");
  TrainingSimulator sim((Platform()));
  const auto m17 = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto m67 = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);

  struct Case {
    const char* label;
    ModelDesc model;
    ParallelConfig parallel;
    std::int64_t tokens_per_gcd;
  };
  const std::vector<Case> cases{
      {"1.7B DP=8", m17, {8, 1, 1, false}, 16384},
      {"6.7B ZeRO=1", m67, {8, 1, 1, true}, 8192},
      {"6.7B TP=2", m67, {4, 2, 1, false}, 8192},
      {"6.7B PP=2", m67, {4, 1, 2, false}, 8192},
  };

  TablePrinter table({"config", "no-flash TF/GCD", "flash-v2 TF/GCD",
                      "flash boost", "comm share", "ckpt"});
  for (const auto& c : cases) {
    const auto base = sim.simulate_step(c.model, c.parallel, c.tokens_per_gcd,
                                        2048, AttentionImpl::kMaterialized);
    const auto flash = sim.simulate_step(c.model, c.parallel,
                                         c.tokens_per_gcd, 2048,
                                         AttentionImpl::kFlashV2);
    table.add_row({c.label, TablePrinter::fmt(base.per_gcd_tflops, 1),
                   TablePrinter::fmt(flash.per_gcd_tflops, 1),
                   TablePrinter::fmt_percent(flash.per_gcd_tflops /
                                                 base.per_gcd_tflops -
                                             1.0),
                   TablePrinter::fmt_percent(flash.comm_fraction()),
                   flash.checkpointed ? "yes" : "no"});
  }
  std::printf("%s", table.render().c_str());

  const auto zero = sim.simulate_step(m67, {8, 1, 1, true}, 8192, 2048,
                                      AttentionImpl::kFlashV2);
  const auto tp = sim.simulate_step(m67, {4, 2, 1, false}, 8192, 2048,
                                    AttentionImpl::kFlashV2);
  const auto pp = sim.simulate_step(m67, {4, 1, 2, false}, 8192, 2048,
                                    AttentionImpl::kFlashV2);
  std::printf(
      "\nordering: ZeRO-1 (%.1f) > TP=2 (%.1f) > PP=2 (%.1f) — paper: "
      "ZeRO-1 best at 81 TFLOPS/GPU, PP=2 much worse (bubble %.2fs here)\n",
      zero.per_gcd_tflops, tp.per_gcd_tflops, pp.per_gcd_tflops, pp.bubble_s);
  return 0;
}
