// Speculative decoding: batched multi-token verify vs sequential decode.
//
// Replays one greedy synthetic trace through the single-stream engine
// (max_batch 1 — the latency regime speculative decoding targets) four ways:
//
//   baseline     plain decoding, one sequential step per token;
//   oracle       ScriptedDraft replaying the baseline's own outputs —
//                acceptance exactly 1.0 at zero draft cost, isolating the
//                win of folding k+1 sequential steps into one verify GEMM;
//   layer-skip   self-speculative draft (first half of the target's layers),
//                the deployable no-second-model configuration;
//   adversarial  a tiny random IndependentDraft that agrees with the target
//                only by chance — the worst-case overhead bound.
//
// Every speculative run must be BYTE-IDENTICAL to the baseline (greedy
// exactness contract). Acceptance gates:
//   oracle:      >= 1.5x decode throughput, acceptance == 1.0;
//   adversarial: >= 0.5x (speculation may slow decoding, never corrupt it).
//
// The model is weight-bandwidth-bound at batch 1 (same sizing argument as
// bench_serving_throughput), so a (k+1)-token verify costs much less than
// k+1 single-token steps — the regime the paper's serving analysis assumes.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/spec/proposer.h"
#include "serve/trace.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct RunResult {
  double tokens_per_s = 0.0;
  double acceptance = 0.0;
  std::vector<std::vector<std::int32_t>> tokens;
};

// Replay the trace through a fresh single-stream engine; best wall time of
// kReps (the runs are deterministic, reps only shed scheduler noise).
RunResult run_engine(const nn::GptModel& model,
                     std::shared_ptr<serve::spec::DraftProposer> proposer,
                     const std::vector<serve::Request>& trace,
                     std::int64_t spec_k, int reps) {
  RunResult out;
  double best_s = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    serve::EngineConfig ec;
    ec.max_batch = 1;
    ec.kv_slots = 1;
    ec.proposer = proposer;
    serve::InferenceEngine engine(model, ec);
    auto replay = trace;
    for (auto& req : replay) req.spec_k = spec_k;
    const auto t0 = Clock::now();
    auto results = engine.run_trace(std::move(replay));
    const double s = secs_since(t0);
    if (rep == 0 || s < best_s) {
      best_s = s;
      out.tokens_per_s =
          static_cast<double>(engine.stats().tokens_generated()) / s;
      out.acceptance = engine.stats().acceptance_rate();
      out.tokens.clear();
      out.tokens.reserve(results.size());
      for (auto& r : results) out.tokens.push_back(std::move(r.tokens));
    }
  }
  return out;
}

std::size_t count_mismatches(
    const std::vector<std::vector<std::int32_t>>& got,
    const std::vector<std::vector<std::int32_t>>& want) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) ++n;
  }
  return n;
}

}  // namespace

int main() {
  std::printf("=== speculative decoding: multi-token verify vs sequential ===\n");

  // Same serving-shaped target as bench_serving_throughput: large enough to
  // be weight-bandwidth-bound at batch 1, where batching k+1 verify rows
  // into one GEMM is nearly free.
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 8192;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 128;
  nn::GptModel model(c);

  serve::TraceSpec spec;
  spec.n_requests = 16;
  spec.vocab_size = c.vocab_size;
  spec.max_new_min = 16;
  spec.max_new_max = 64;
  spec.greedy_fraction = 1.0;  // greedy: every run must be byte-identical
  const auto trace = serve::synth_trace(spec);
  constexpr std::int64_t kSpecK = 4;
  constexpr int kReps = 3;

  std::printf("model: llama %lld hidden, %lld layers, %lld heads (%lld kv)\n",
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.n_layers),
              static_cast<long long>(c.n_heads),
              static_cast<long long>(c.kv_heads()));
  std::printf("trace: %zu greedy requests, max_new %lld..%lld, k=%lld\n\n",
              trace.size(), static_cast<long long>(spec.max_new_min),
              static_cast<long long>(spec.max_new_max),
              static_cast<long long>(kSpecK));

  {
    Rng warm(1);
    model.generate_cached(trace[0].prompt, 4, trace[0].sampling, warm);
  }

  const RunResult baseline = run_engine(model, nullptr, trace, 0, kReps);
  std::printf("baseline (plain):      %8.1f tokens/s\n",
              baseline.tokens_per_s);

  // Oracle: scripts are the baseline's own outputs, so every draft token is
  // the target's argmax — acceptance 1.0, zero draft cost.
  auto oracle = std::make_shared<serve::spec::ScriptedDraft>(
      baseline.tokens, c.vocab_size, c.max_seq);
  const RunResult oracle_run = run_engine(model, oracle, trace, kSpecK, kReps);
  const double oracle_speedup = oracle_run.tokens_per_s / baseline.tokens_per_s;
  std::printf("oracle draft:          %8.1f tokens/s  (%.2fx, acceptance %.3f)\n",
              oracle_run.tokens_per_s, oracle_speedup, oracle_run.acceptance);

  // Self-speculative layer skip: first half of the target's own layers.
  auto skip = std::make_shared<serve::spec::LayerSkipDraft>(model,
                                                            c.n_layers / 2);
  const RunResult skip_run = run_engine(model, skip, trace, kSpecK, kReps);
  const double skip_speedup = skip_run.tokens_per_s / baseline.tokens_per_s;
  std::printf("layer-skip draft (%lld): %8.1f tokens/s  (%.2fx, acceptance %.3f)\n",
              static_cast<long long>(c.n_layers / 2), skip_run.tokens_per_s,
              skip_speedup, skip_run.acceptance);

  // Adversarial: a tiny random model sharing only the vocabulary. Its
  // proposals are noise; speculation must degrade gracefully, never corrupt.
  nn::GptConfig ac;
  ac.arch = nn::ArchFamily::kLLaMA;
  ac.vocab_size = c.vocab_size;
  ac.hidden = 16;
  ac.n_layers = 1;
  ac.n_heads = 1;
  ac.max_seq = c.max_seq;
  ac.seed = 777;  // decorrelate from the target's init
  auto adversary = std::make_shared<serve::spec::IndependentDraft>(ac);
  const RunResult adv_run = run_engine(model, adversary, trace, kSpecK, kReps);
  const double adv_speedup = adv_run.tokens_per_s / baseline.tokens_per_s;
  std::printf("adversarial draft:     %8.1f tokens/s  (%.2fx, acceptance %.3f)\n\n",
              adv_run.tokens_per_s, adv_speedup, adv_run.acceptance);

  const std::size_t oracle_bad = count_mismatches(oracle_run.tokens,
                                                  baseline.tokens);
  const std::size_t skip_bad = count_mismatches(skip_run.tokens,
                                                baseline.tokens);
  const std::size_t adv_bad = count_mismatches(adv_run.tokens,
                                               baseline.tokens);
  std::printf("byte identity vs baseline: oracle %zu, layer-skip %zu, "
              "adversarial %zu mismatched requests\n",
              oracle_bad, skip_bad, adv_bad);

  bench::write_bench_json(
      "BENCH_spec.json",
      {{"baseline_tokens_per_s", baseline.tokens_per_s},
       {"oracle_tokens_per_s", oracle_run.tokens_per_s},
       {"oracle_speedup", oracle_speedup},
       {"oracle_acceptance", oracle_run.acceptance},
       {"layer_skip_tokens_per_s", skip_run.tokens_per_s},
       {"layer_skip_speedup", skip_speedup},
       {"layer_skip_acceptance", skip_run.acceptance},
       {"adversarial_tokens_per_s", adv_run.tokens_per_s},
       {"adversarial_speedup", adv_speedup},
       {"adversarial_acceptance", adv_run.acceptance},
       {"spec_k", static_cast<double>(kSpecK)}});

  const bool identical = oracle_bad == 0 && skip_bad == 0 && adv_bad == 0;
  const bool oracle_gate = oracle_speedup >= 1.5 &&
                           oracle_run.acceptance == 1.0;
  const bool adv_gate = adv_speedup >= 0.5;
  std::printf("\n%s: byte identity %s; oracle %s the >=1.5x gate "
              "(acceptance %.3f); adversarial %s the >=0.5x floor\n",
              identical && oracle_gate && adv_gate ? "PASS" : "FAIL",
              identical ? "holds" : "BROKEN",
              oracle_speedup >= 1.5 ? "clears" : "misses",
              oracle_run.acceptance,
              adv_gate ? "clears" : "misses");
  return identical && oracle_gate && adv_gate ? 0 : 1;
}
