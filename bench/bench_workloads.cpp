// Mixed-workload serving: grammar-constrained decoding + batched embeddings
// through one engine (src/serve/workloads).
//
// Four measurements on the serving-shaped model shared by the other serve
// benches:
//
//   1. Mask identity — the same trace decoded plain vs. with an all-ones
//      pass_through grammar must produce BIT-IDENTICAL tokens (the masked
//      sampling path writes nothing when everything is legal), and the
//      masked run's throughput bounds the constrained-decode overhead.
//   2. Grammar legality — a real JSON-subset grammar replayed over the
//      sampled tokens: every token must be DFA-legal by construction.
//   3. Embedding batching — the same 64 sequences embedded through the
//      engine with max_embed_batch 8 vs. 1; grouped forwards must beat
//      one-at-a-time, and every vector must be bit-identical to a solo
//      BertEncoder::embed run.
//   4. Mixed-class latency — a trace mixing generation, constrained, and
//      embed requests under the priority scheduler with workload->class
//      mapping (constrained = interactive, embed = batch) vs. FCFS: the
//      mapping must cut constrained-request worst-case TTFT.
//
// Acceptance gate: 0 identity mismatches (mask-off AND embeddings),
// 0 illegal sampled tokens, masked throughput >= 0.70x plain, batched
// embedding >= 1.05x unbatched, mixed TTFT cut >= 1.2x.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/bert.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/trace.h"
#include "serve/workloads/embed.h"
#include "serve/workloads/grammar.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Synthetic JSON-fragment byte strings over the full 8192-token serving
// vocab (ids 0-4 mirror the tokenizer specials and stay empty/illegal;
// 3 = EOS). Cycling a fragment pool gives every grammar state plenty of
// legal continuations, so constrained decode makes real progress.
std::vector<std::string> synth_json_vocab(std::int64_t vocab) {
  static const char* kPool[] = {
      "{",  "}",  "[",  "]",  ":",  ",",  "\"", " ",  "0",  "1",  "2",
      "3",  "4",  "5",  "6",  "7",  "8",  "9",  "a",  "b",  "c",  "d",
      "e",  "f",  "x",  "y",  "z",  "{\"", "\":", ",\"", "\"}", "\",",
      "true", "false", "null", "-",  ".",  "e+", "{}", "[]", "1}", "0]",
      "\"a\":", "\"b\":", ": [", ", ", "]}", "}}",
  };
  constexpr std::size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);
  std::vector<std::string> bytes(static_cast<std::size_t>(vocab));
  for (std::size_t id = 5; id < bytes.size(); ++id) {
    bytes[id] = kPool[(id - 5) % kPoolSize];
  }
  return bytes;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(i, xs.size() - 1)];
}

}  // namespace

int main() {
  bench::print_header(
      "serve/workloads",
      "grammar-constrained decoding + batched embeddings, one engine");

  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 8192;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 128;
  nn::GptModel model(c);

  nn::BertConfig bc;
  bc.vocab_size = c.vocab_size;
  bc.hidden = 256;
  bc.n_layers = 2;
  bc.n_heads = 8;
  bc.max_seq = 64;
  const auto encoder = std::make_shared<const nn::BertEncoder>(bc);

  constexpr std::int32_t kEos = 3;
  const std::vector<std::string> vocab_bytes = synth_json_vocab(c.vocab_size);
  serve::workloads::GrammarSpec gspec;  // root object, depth 4
  const auto json_dfa = std::make_shared<const serve::workloads::TokenDfa>(
      serve::workloads::TokenDfa::compile(gspec, vocab_bytes, kEos));
  const auto pass_dfa = std::make_shared<const serve::workloads::TokenDfa>(
      serve::workloads::TokenDfa::pass_through(c.vocab_size, kEos));
  std::printf("grammar: %d char-DFA-derived token states over %lld tokens\n",
              json_dfa->n_states(), static_cast<long long>(c.vocab_size));

  serve::TraceSpec spec;
  spec.n_requests = 48;
  spec.vocab_size = c.vocab_size;
  spec.prompt_len_min = 8;
  spec.prompt_len_max = 24;
  spec.max_new_min = 16;
  spec.max_new_max = 32;
  const auto trace = serve::synth_trace(spec);

  serve::EngineConfig base;
  base.max_batch = 8;
  base.kv_slots = 8;
  base.queue_capacity = 64;
  base.workloads.grammar = true;
  base.workloads.embedder = encoder;

  // Warm-up.
  {
    Rng warm(1);
    model.generate_cached(trace[0].prompt, 2, trace[0].sampling, warm);
  }

  auto run_with_grammar =
      [&](const std::shared_ptr<const serve::workloads::TokenDfa>& g,
          double& wall_s, std::int64_t& tokens) {
        serve::InferenceEngine engine(model, base);
        auto replay = trace;
        for (auto& req : replay) req.grammar = g;
        const auto t0 = Clock::now();
        auto results = engine.run_trace(std::move(replay));
        wall_s = secs_since(t0);
        tokens = 0;
        for (const auto& r : results) tokens += r.generated_tokens;
        return results;
      };

  // --- 1. plain vs. all-ones mask: identity + overhead -------------------
  bench::print_section("mask-off identity + constrained overhead");
  constexpr int kReps = 3;
  double plain_wall = 0.0, masked_wall = 0.0;
  std::int64_t plain_tokens = 0, masked_tokens = 0;
  std::vector<serve::RequestResult> plain_results, masked_results;
  for (int rep = 0; rep < kReps; ++rep) {
    double w = 0.0;
    std::int64_t t = 0;
    auto r = run_with_grammar(nullptr, w, t);
    if (rep == 0 || w < plain_wall) {
      plain_wall = w;
      plain_tokens = t;
      plain_results = std::move(r);
    }
    auto m = run_with_grammar(pass_dfa, w, t);
    if (rep == 0 || w < masked_wall) {
      masked_wall = w;
      masked_tokens = t;
      masked_results = std::move(m);
    }
  }
  std::int64_t identity_mismatches = 0;
  for (std::size_t i = 0; i < plain_results.size(); ++i) {
    identity_mismatches +=
        plain_results[i].tokens == masked_results[i].tokens ? 0 : 1;
  }
  const double plain_tps = static_cast<double>(plain_tokens) / plain_wall;
  const double masked_tps = static_cast<double>(masked_tokens) / masked_wall;
  const double constrained_throughput_ratio = masked_tps / plain_tps;
  std::printf("plain:   %.3f s, %lld tokens, %.0f tok/s\n", plain_wall,
              static_cast<long long>(plain_tokens), plain_tps);
  std::printf("masked:  %.3f s, %lld tokens, %.0f tok/s (all-ones mask)\n",
              masked_wall, static_cast<long long>(masked_tokens), masked_tps);
  std::printf("identity mismatches: %lld (masked vs plain, %zu requests)\n",
              static_cast<long long>(identity_mismatches),
              plain_results.size());
  std::printf("masked/plain throughput: %.2fx\n",
              constrained_throughput_ratio);

  // --- 2. real JSON grammar: every sampled token DFA-legal ---------------
  bench::print_section("JSON grammar legality");
  double json_wall = 0.0;
  std::int64_t json_tokens = 0;
  const auto json_results = run_with_grammar(json_dfa, json_wall, json_tokens);
  std::int64_t illegal_tokens = 0;
  std::int64_t grammar_dead = 0, eos_completed = 0;
  for (const auto& r : json_results) {
    grammar_dead += r.status == serve::RequestStatus::kGrammarDead ? 1 : 0;
    std::int32_t s = json_dfa->start();
    const auto gen_begin =
        r.tokens.end() - static_cast<std::ptrdiff_t>(r.generated_tokens);
    for (auto it = gen_begin; it != r.tokens.end(); ++it) {
      if (*it == kEos) {
        illegal_tokens += json_dfa->eos_legal(s) ? 0 : 1;
        ++eos_completed;
        break;
      }
      const std::int32_t next = json_dfa->next(s, *it);
      if (next < 0) {
        ++illegal_tokens;
        break;
      }
      s = next;
    }
  }
  std::printf("constrained: %.3f s, %lld tokens | %lld complete documents, "
              "%lld dead-ended, %lld ILLEGAL tokens\n",
              json_wall, static_cast<long long>(json_tokens),
              static_cast<long long>(eos_completed),
              static_cast<long long>(grammar_dead),
              static_cast<long long>(illegal_tokens));

  // --- 3. embedding throughput: batched vs one-at-a-time -----------------
  bench::print_section("embedding batching");
  std::vector<serve::Request> embeds;
  Rng erng(7);
  for (std::uint64_t id = 0; id < 128; ++id) {
    serve::Request req;
    req.id = id;
    req.embed = true;
    for (int t = 0; t < 8; ++t) {
      req.prompt.push_back(static_cast<std::int32_t>(
          erng.uniform_int(static_cast<std::uint64_t>(bc.vocab_size))));
    }
    embeds.push_back(std::move(req));
  }
  auto run_embeds = [&](std::int64_t max_embed_batch, double& wall_s) {
    serve::EngineConfig ec = base;
    ec.workloads.max_embed_batch = max_embed_batch;
    serve::InferenceEngine engine(model, ec);
    auto replay = embeds;
    const auto t0 = Clock::now();
    auto results = engine.run_trace(std::move(replay));
    wall_s = secs_since(t0);
    return results;
  };
  double unbatched_wall = 0.0, batched_wall = 0.0;
  std::vector<serve::RequestResult> embed_results;
  for (int rep = 0; rep < kReps; ++rep) {
    double w = 0.0;
    run_embeds(1, w);
    if (rep == 0 || w < unbatched_wall) unbatched_wall = w;
    auto r = run_embeds(8, w);
    if (rep == 0 || w < batched_wall) {
      batched_wall = w;
      embed_results = std::move(r);
    }
  }
  std::int64_t embed_identity_mismatches = 0;
  for (const auto& r : embed_results) {
    const std::vector<float> solo = encoder->embed(embeds[r.id].prompt);
    embed_identity_mismatches += r.embedding == solo ? 0 : 1;
  }
  const double embed_batch_speedup = unbatched_wall / batched_wall;
  const double embed_seqs_per_s =
      static_cast<double>(embeds.size()) / batched_wall;
  std::printf("unbatched (1/forward): %.3f s\n", unbatched_wall);
  std::printf("batched   (8/forward): %.3f s  -> %.2fx, %.0f seqs/s\n",
              batched_wall, embed_batch_speedup, embed_seqs_per_s);
  std::printf("embedding identity mismatches vs solo encode: %lld\n",
              static_cast<long long>(embed_identity_mismatches));

  // --- 4. mixed trace: workload->class mapping cuts constrained TTFT -----
  bench::print_section("mixed workload, scheduler class mapping");
  serve::TraceSpec mixed = spec;
  mixed.n_requests = 64;
  mixed.embed_fraction = 0.3;
  mixed.constrained_fraction = 0.3;
  mixed.constrained_grammar = json_dfa;
  mixed.embed_len_max = 32;
  const auto mixed_trace = serve::synth_trace(mixed);

  // Tight budget so a queue forms and admission ORDER matters.
  serve::EngineConfig tight = base;
  tight.max_batch = 4;
  tight.kv_slots = 4;
  auto run_mixed = [&](bool map_classes) {
    serve::EngineConfig ec = tight;
    ec.workloads.map_classes = map_classes;
    ec.scheduler = map_classes ? serve::sched::Policy::kPriority
                               : serve::sched::Policy::kFcfs;
    double best_wall = 0.0;
    std::vector<double> ttfts;
    for (int rep = 0; rep < kReps; ++rep) {
      serve::InferenceEngine engine(model, ec);
      auto replay = mixed_trace;
      const auto t0 = Clock::now();
      const auto results = engine.run_trace(std::move(replay));
      const double w = secs_since(t0);
      if (rep > 0 && w >= best_wall) continue;
      best_wall = w;
      ttfts.clear();
      for (const auto& r : results) {
        if (r.constrained) ttfts.push_back(r.ttft_s * 1e3);
      }
    }
    return std::make_pair(best_wall, percentile(ttfts, 0.99));
  };
  const auto [fcfs_wall, fcfs_p99] = run_mixed(false);
  const auto [mapped_wall, mapped_p99] = run_mixed(true);
  const double mixed_ttft_cut = fcfs_p99 / mapped_p99;
  std::printf("fcfs:            %.3f s | constrained TTFT p99 %.1f ms\n",
              fcfs_wall, fcfs_p99);
  std::printf("priority+mapped: %.3f s | constrained TTFT p99 %.1f ms\n",
              mapped_wall, mapped_p99);
  std::printf("constrained p99 TTFT cut: %.2fx\n", mixed_ttft_cut);

  bench::write_bench_json(
      "BENCH_workloads.json",
      {{"constrained_throughput_ratio", constrained_throughput_ratio},
       {"identity_mismatches", static_cast<double>(identity_mismatches)},
       {"grammar_illegal_tokens", static_cast<double>(illegal_tokens)},
       {"embed_batch_speedup", embed_batch_speedup},
       {"embed_identity_mismatches",
        static_cast<double>(embed_identity_mismatches)},
       {"mixed_ttft_cut", mixed_ttft_cut},
       {"plain_tokens_per_s", plain_tps},
       {"masked_tokens_per_s", masked_tps},
       {"embed_seqs_per_s", embed_seqs_per_s},
       {"grammar_states", static_cast<double>(json_dfa->n_states())},
       {"eos_completed_documents", static_cast<double>(eos_completed)}});

  const bool pass = identity_mismatches == 0 && illegal_tokens == 0 &&
                    embed_identity_mismatches == 0 &&
                    constrained_throughput_ratio >= 0.70 &&
                    embed_batch_speedup >= 1.05 && mixed_ttft_cut >= 1.2;
  std::printf("\n%s: mixed-workload serving %s the identity/overhead/"
              "batching/latency gate\n",
              pass ? "PASS" : "FAIL", pass ? "clears" : "misses");
  return pass ? 0 : 1;
}
