// Ablation (paper extension): ZeRO stages beyond the paper's stage 1.
//
// The paper runs "DeepSpeed ZeRO optimization (e.g., stage 1 for
// partitioning the optimizer states)". This ablation extends the memory and
// communication model to stages 2 (gradient sharding) and 3 (parameter
// sharding) and quantifies the memory-vs-communication trade on the 6.7B
// model at 64 GCDs: each stage fits more state per GCD, stage 3 pays an
// extra parameter allgather every forward pass.

#include "bench_util.h"
#include "simfrontier/parallelism.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Ablation: ZeRO stages",
                      "Memory vs. communication across ZeRO 0-3 (6.7B)");
  TrainingSimulator sim((Platform()));
  const auto model = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);

  TablePrinter table({"stage", "static GB/GCD", "total GB/GCD",
                      "comm volume x model", "TFLOPS/GCD", "ckpt"});
  for (int stage : {0, 1, 2, 3}) {
    const ParallelConfig cfg{64, 1, 1, stage};
    const auto p = sim.simulate_step(model, cfg, 8192, 2048,
                                     AttentionImpl::kFlashV2);
    const double static_gb = (p.memory.param_bytes + p.memory.grad_bytes +
                              p.memory.optimizer_bytes) /
                             1e9;
    const double model_bytes = 2.0 * static_cast<double>(model.params());
    table.add_row({TablePrinter::fmt_int(stage),
                   TablePrinter::fmt(static_gb, 1),
                   TablePrinter::fmt(p.memory.total() / 1e9, 1),
                   TablePrinter::fmt(
                       p.messages.total_transferred_bytes() / model_bytes, 2),
                   TablePrinter::fmt(p.per_gcd_tflops, 1),
                   p.checkpointed ? "yes" : "no"});
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("max per-GCD batch enabled by sharding");
  // The paper notes that sharding frees memory for larger per-device
  // batches; find the largest power-of-two batch that fits per stage.
  for (int stage : {0, 1, 3}) {
    std::int64_t best = 0;
    for (std::int64_t tokens = 2048; tokens <= 131072; tokens *= 2) {
      const auto p = sim.simulate_step(model, {64, 1, 1, stage}, tokens,
                                       2048, AttentionImpl::kFlashV2);
      if (p.fits_memory && !p.checkpointed) best = tokens;
    }
    std::printf("  stage %d: up to %lld tokens/GCD without checkpointing\n",
                stage, static_cast<long long>(best));
  }
  std::printf(
      "\nshape: stages trade communication for memory; stage 1 (the paper's "
      "choice) is the sweet spot when the model's optimizer states, not its "
      "weights, are the bottleneck.\n");
  return 0;
}
