// Regenerates Fig. 4: (left) the training-throughput heatmap over layers x
// hidden-size for ~1B-class models, with the 8-aligned head-dim archs
// marked; (right) the flash attention v1/v2 boost for eligible archs.
//
// Paper: 58–76 TFLOPS/GCD spread, best at 24 layers / hidden 2304
// (head dim 96); flash boosts ~14% (v1) and ~19% (v2) on average, best
// overall 82 / 84 TFLOPS per GCD.

#include <algorithm>
#include <map>

#include "bench_util.h"
#include "simfrontier/archsearch.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Fig. 4",
                      "Throughput heatmap + flash attention boost (~1B grid)");
  ArchitectureSearch search((Platform()));
  SearchConstraints constraints;
  constraints.min_params = 1'400'000'000;
  constraints.max_params = 2'300'000'000;
  const auto cands = search.search(
      ArchFamily::kNeoX, 52000, ArchitectureSearch::default_layer_grid(),
      ArchitectureSearch::default_hidden_grid(), constraints, 16, 2048);

  bench::print_section("heatmap (TFLOPS per GCD, no flash; * = head dim % 8)");
  std::map<std::int64_t, std::map<std::int64_t, const ArchCandidate*>> grid;
  for (const auto& c : cands) {
    grid[c.model.n_layers][c.model.hidden] = &c;
  }
  std::vector<std::string> header{"layers \\ hidden"};
  for (std::int64_t h : ArchitectureSearch::default_hidden_grid()) {
    header.push_back(std::to_string(h));
  }
  TablePrinter table(header);
  for (auto& [layers, by_hidden] : grid) {
    std::vector<std::string> row{std::to_string(layers)};
    for (std::int64_t h : ArchitectureSearch::default_hidden_grid()) {
      const auto it = by_hidden.find(h);
      if (it == by_hidden.end()) {
        row.push_back("-");
      } else {
        row.push_back(TablePrinter::fmt(it->second->tflops_base, 1) +
                      (it->second->head_dim_aligned ? "*" : ""));
      }
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());

  double lo = 1e12, hi = 0.0;
  for (const auto& c : cands) {
    lo = std::min(lo, c.tflops_base);
    hi = std::max(hi, c.tflops_base);
  }
  std::printf("range %.1f–%.1f TFLOPS (paper: 58–76)\n", lo, hi);
  const auto& best = ArchitectureSearch::best(cands);
  std::printf("best: %lld layers, hidden %lld, head dim %lld (paper pick: "
              "24 / 2304 / 96)\n",
              static_cast<long long>(best.model.n_layers),
              static_cast<long long>(best.model.hidden),
              static_cast<long long>(best.head_dim()));
  // Rank of the paper's choice within our grid.
  std::vector<double> sorted;
  double paper_pick = 0.0;
  for (const auto& c : cands) {
    sorted.push_back(c.tflops_base);
    if (c.model.n_layers == 24 && c.model.hidden == 2304) {
      paper_pick = c.tflops_base;
    }
  }
  std::sort(sorted.rbegin(), sorted.rend());
  const auto rank = std::find(sorted.begin(), sorted.end(), paper_pick) -
                    sorted.begin() + 1;
  std::printf("paper's 24/2304 scores %.1f TFLOPS, rank %lld of %zu here\n",
              paper_pick, static_cast<long long>(rank), sorted.size());

  bench::print_section("flash attention boost (eligible archs)");
  TablePrinter boost({"arch (L/h/d)", "base", "flash v1", "v1 boost",
                      "flash v2", "v2 boost"});
  double v1_sum = 0.0, v2_sum = 0.0, best_v1 = 0.0, best_v2 = 0.0;
  int v1_n = 0, v2_n = 0;
  for (const auto& c : cands) {
    if (!c.head_dim_aligned) continue;
    char label[48];
    std::snprintf(label, sizeof(label), "%lld/%lld/%lld",
                  static_cast<long long>(c.model.n_layers),
                  static_cast<long long>(c.model.hidden),
                  static_cast<long long>(c.head_dim()));
    boost.add_row(
        {label, TablePrinter::fmt(c.tflops_base, 1),
         c.tflops_flash_v1 > 0 ? TablePrinter::fmt(c.tflops_flash_v1, 1)
                               : "n/a",
         c.tflops_flash_v1 > 0 ? TablePrinter::fmt_percent(c.flash_v1_boost())
                               : "-",
         c.tflops_flash_v2 > 0 ? TablePrinter::fmt(c.tflops_flash_v2, 1)
                               : "n/a",
         c.tflops_flash_v2 > 0
             ? TablePrinter::fmt_percent(c.flash_v2_boost())
             : "-"});
    if (c.tflops_flash_v1 > 0) {
      v1_sum += c.flash_v1_boost();
      ++v1_n;
      best_v1 = std::max(best_v1, c.tflops_flash_v1);
    }
    if (c.tflops_flash_v2 > 0) {
      v2_sum += c.flash_v2_boost();
      ++v2_n;
      best_v2 = std::max(best_v2, c.tflops_flash_v2);
    }
  }
  std::printf("%s", boost.render().c_str());
  std::printf(
      "mean boost: v1 %.1f%% (paper ~14%%), v2 %.1f%% (paper ~19%%)\n",
      100.0 * v1_sum / std::max(1, v1_n), 100.0 * v2_sum / std::max(1, v2_n));
  std::printf("best with flash: v1 %.1f (paper ~82), v2 %.1f (paper ~84) "
              "TFLOPS per GCD\n",
              best_v1, best_v2);

  bench::print_section(
      "ablation: matrix-core alignment effect (Observation 1)");
  KernelModel km((Platform()));
  const ModelDesc aligned{ArchFamily::kNeoX, 2304, 24, 24, 52000};   // d=96
  const ModelDesc unaligned{ArchFamily::kNeoX, 2280, 24, 24, 52000}; // d=95
  std::printf("head dim 96: %.1f TFLOPS | head dim 95: %.1f TFLOPS\n",
              km.achieved_tflops(aligned, 16, 2048,
                                 AttentionImpl::kMaterialized),
              km.achieved_tflops(unaligned, 16, 2048,
                                 AttentionImpl::kMaterialized));
  return 0;
}
