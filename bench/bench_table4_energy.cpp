// Regenerates Table IV: time and energy to pre-train one 1.7B and one 6.7B
// MatGPT on 256 GCDs over the 15B-token corpus, from the simulated step
// profile and the phase-weighted power model.
//
// Paper: 1.7B — 4.1 h, 0.23 MWh, 0.33 TFLOPS/W; 6.7B — 16.5 h, 0.91 MWh,
// 0.27 TFLOPS/W. The reproduction target is the shape (the ~4x time/energy
// ratio and the efficiency ordering); absolute hours run lower because the
// model excludes data-pipeline/checkpoint stalls of real runs.

#include "bench_util.h"
#include "common/units.h"
#include "simfrontier/parallelism.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Table IV",
                      "Time and energy for pre-training on Frontier");
  TrainingSimulator sim((Platform()));
  const double corpus_tokens = 15e9;

  struct Row {
    const char* name;
    ModelDesc model;
    ParallelConfig parallel;
    std::int64_t tokens_per_gcd;
    const char* paper;
  };
  const std::vector<Row> rows{
      {"1.7B", ModelDesc::matgpt_1_7b(ArchFamily::kNeoX),
       {256, 1, 1, false}, 16384, "4.1 h / 0.23 MWh / 0.33 TF/W"},
      {"6.7B", ModelDesc::matgpt_6_7b(ArchFamily::kNeoX),
       {256, 1, 1, true}, 8192, "16.5 h / 0.91 MWh / 0.27 TF/W"},
  };

  TablePrinter table({"Model", "GPUs", "Time (hours)", "Energy (MWh)",
                      "Efficiency (TFLOPS/W)", "W per MI250X", "paper"});
  std::vector<TrainingSimulator::TrainingRunEstimate> ests;
  for (const auto& row : rows) {
    const auto est =
        sim.estimate_run(row.model, row.parallel, row.tokens_per_gcd, 2048,
                         AttentionImpl::kFlashV2, corpus_tokens);
    ests.push_back(est);
    table.add_row({row.name, "256", TablePrinter::fmt(est.hours, 1),
                   TablePrinter::fmt(est.energy_joules / 3.6e9, 2),
                   TablePrinter::fmt(est.tflops_per_watt, 2),
                   TablePrinter::fmt(2.0 * est.mean_power_per_gcd_w, 0),
                   row.paper});
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("shape checks");
  std::printf("time ratio 6.7B/1.7B: %.2f (paper 16.5/4.1 = 4.02)\n",
              ests[1].hours / ests[0].hours);
  std::printf("energy ratio 6.7B/1.7B: %.2f (paper 0.91/0.23 = 3.96)\n",
              ests[1].energy_joules / ests[0].energy_joules);
  std::printf("efficiency ordering 1.7B > 6.7B: %s\n",
              ests[0].tflops_per_watt > ests[1].tflops_per_watt ? "yes"
                                                                : "NO");
  std::printf("note: the study trained 6 models in total (paper remark).\n");
  return 0;
}
