// Ablation (paper extension): grouped-query attention — the LLaMA-2 change
// the paper cites as "tweaks to improve inference performance".
//
// Reports (a) the analytic inference KV-cache footprint of the 6.7B model
// under MHA vs. GQA groupings across context lengths, and (b) real
// measurements on the CPU engine: parameter count, training-loss parity,
// and generation speed for a tiny model with and without GQA.

#include <chrono>

#include "bench_util.h"
#include "optim/optimizer.h"
#include "simfrontier/model_desc.h"

using namespace matgpt;

int main() {
  bench::print_header("Ablation: GQA",
                      "Grouped-query attention (LLaMA-2 inference tweak)");

  bench::print_section("analytic: 6.7B inference KV cache per sequence");
  // KV cache: 2 (K and V) * layers * seq * kv_heads * head_dim * bf16.
  const auto m = sim::ModelDesc::matgpt_6_7b(sim::ArchFamily::kLLaMA);
  TablePrinter cache({"context", "MHA (32 kv heads)", "GQA-8", "GQA-4",
                      "reduction @GQA-8"});
  for (std::int64_t seq : {2048L, 8192L, 32768L}) {
    auto bytes = [&](std::int64_t kv_heads) {
      return 2.0 * m.n_layers * static_cast<double>(seq) * kv_heads *
             m.head_dim() * 2.0;
    };
    cache.add_row({TablePrinter::fmt_int(seq),
                   TablePrinter::fmt(bytes(32) / 1e9, 2) + " GB",
                   TablePrinter::fmt(bytes(8) / 1e9, 2) + " GB",
                   TablePrinter::fmt(bytes(4) / 1e9, 2) + " GB",
                   TablePrinter::fmt(bytes(32) / bytes(8), 1) + "x"});
  }
  std::printf("%s", cache.render().c_str());

  bench::print_section("real engine: tiny model, MHA vs GQA");
  nn::GptConfig base;
  base.arch = nn::ArchFamily::kLLaMA;
  base.vocab_size = 64;
  base.hidden = 64;
  base.n_layers = 2;
  base.n_heads = 8;
  base.max_seq = 64;
  nn::GptConfig gqa = base;
  gqa.n_kv_heads = 2;

  TablePrinter real({"variant", "params", "final train loss",
                     "tokens/s (re-forward)", "tokens/s (KV cache)"});
  for (const auto& [label, cfg] :
       std::vector<std::pair<const char*, nn::GptConfig>>{{"MHA (8 kv)",
                                                           base},
                                                          {"GQA (2 kv)",
                                                           gqa}}) {
    nn::GptModel model(cfg);
    // Train on a repeating pattern so both variants face the same task.
    std::vector<std::int32_t> tokens, targets;
    for (int rep = 0; rep < 4; ++rep) {
      for (int i = 0; i < 16; ++i) {
        tokens.push_back(10 + i);
        targets.push_back(10 + (i + 1) % 16);
      }
    }
    optim::Adam opt(model.parameters());
    double last = 0.0;
    for (int step = 0; step < 120; ++step) {
      Tape tape;
      Var loss = model.loss(tape, tokens, targets, 4, 16);
      last = loss.item();
      model.zero_grad();
      tape.backward(loss);
      opt.step(3e-3);
    }
    // Generation throughput, with and without the KV cache.
    const std::vector<std::int32_t> prompt{10, 11, 12};
    const std::int64_t new_tokens = 48;
    auto tokens_per_sec = [&](bool cached) {
      Rng rng(7);
      const auto t0 = std::chrono::steady_clock::now();
      if (cached) {
        model.generate_cached(prompt, new_tokens, 0.0f, rng);
      } else {
        model.generate(prompt, new_tokens, 0.0f, rng);
      }
      return new_tokens /
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
    };
    real.add_row({label, TablePrinter::fmt_int(model.param_count()),
                  TablePrinter::fmt(last, 3),
                  TablePrinter::fmt(tokens_per_sec(false), 1),
                  TablePrinter::fmt(tokens_per_sec(true), 1)});
  }
  std::printf("%s", real.render().c_str());
  std::printf(
      "\nGQA shrinks the K/V projections and the inference KV cache while "
      "training to comparable loss — the LLaMA-2 trade the paper points "
      "to.\n");
  return 0;
}
