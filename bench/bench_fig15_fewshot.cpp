// Regenerates Fig. 15: 3-shot and 5-shot accuracy for the "6.7B-class"
// NeoX and LLaMA models on the nine QA tasks.
//
// Paper shapes: prompting with examples helps on some tasks (SciQ up to
// ~+5% over zero-shot); overall the two architectures trade wins.

#include "bench_util.h"
#include "eval/scorer.h"

using namespace matgpt;

int main() {
  bench::print_header("Fig. 15", "Few-shot (3/5) accuracy, NeoX vs LLaMA");
  auto sc = bench::default_study_config();
  core::ComparativeStudy study(sc);

  core::ExperimentSpec llama{"LLaMA-6.7B", nn::ArchFamily::kLLaMA,
                             tok::TokenizerKind::kHuggingFace, 512,
                             core::OptimizerKind::kLamb, 16, true,
                             DType::kFloat32};
  core::ExperimentSpec neox = llama;
  neox.label = "NeoX-6.7B";
  neox.arch = nn::ArchFamily::kNeoX;

  std::printf("training LLaMA-6.7B stand-in ...\n");
  std::fflush(stdout);
  const auto ml = study.run_experiment(llama);
  std::printf("training NeoX-6.7B stand-in ...\n");
  std::fflush(stdout);
  const auto mn = study.run_experiment(neox);

  eval::TaskGenerator gen(7, study.materials());
  TablePrinter table({"task", "LLaMA 0-shot", "LLaMA 3-shot", "LLaMA 5-shot",
                      "NeoX 0-shot", "NeoX 3-shot", "NeoX 5-shot"});
  double sciq_zero = 0.0, sciq_best = 0.0;
  int llama_wins = 0, neox_wins = 0;
  for (auto task : eval::all_tasks()) {
    const auto questions = gen.generate(task, 16);
    std::vector<std::string> row{eval::task_name(task)};
    double best_l = 0.0, best_n = 0.0;
    for (const auto* pm : {&ml, &mn}) {
      eval::LmEvaluator ev(*pm->model, *pm->tokenizer);
      for (int shots : {0, 3, 5}) {
        Rng rng(23);
        const auto r = ev.evaluate(questions, shots, rng);
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.2f", r.accuracy);
        row.emplace_back(cell);
        if (pm == &ml) {
          best_l = std::max(best_l, r.accuracy);
        } else {
          best_n = std::max(best_n, r.accuracy);
        }
        if (task == eval::TaskId::kSciQ && pm == &mn) {
          if (shots == 0) sciq_zero = r.accuracy;
          sciq_best = std::max(sciq_best, r.accuracy);
        }
      }
    }
    llama_wins += best_l > best_n;
    neox_wins += best_n > best_l;
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nSciQ NeoX: best few-shot %.2f vs zero-shot %.2f (paper: up to ~+5%% "
      "from shots)\n",
      sciq_best, sciq_zero);
  std::printf("task wins: LLaMA %d, NeoX %d (paper: 3 vs 3, rest on par)\n",
              llama_wins, neox_wins);
  return 0;
}
