// Regenerates Fig. 14: zero-shot accuracy on the nine QA tasks.
// (Top) tokenizer/vocabulary effect on the LLaMA models: HF vs SPM at 52K,
// and 32K vs 52K with HF. (Bottom) NeoX vs LLaMA at both model sizes.
//
// Paper shapes reproduced: the tokenizers/vocabs trade small wins across
// tasks (no uniform winner); NeoX and LLaMA perform similarly; the two
// off-domain Hendrycks tasks (HT-CM, HT-CCS) sit near chance for every
// model because the corpus never states those facts.

#include "bench_util.h"
#include "eval/scorer.h"

using namespace matgpt;

namespace {
void print_task_rows(
    const std::vector<std::pair<std::string, const core::PretrainedModel*>>&
        models,
    core::ComparativeStudy& study, int shots) {
  eval::TaskGenerator gen(7, study.materials());
  std::vector<std::string> header{"task"};
  for (const auto& [label, unused] : models) header.push_back(label);
  header.push_back("chance");
  TablePrinter table(header);
  for (auto task : eval::all_tasks()) {
    const auto questions = gen.generate(task, 16);
    std::vector<std::string> row{eval::task_name(task)};
    for (const auto& [label, pm] : models) {
      eval::LmEvaluator ev(*pm->model, *pm->tokenizer);
      Rng rng(17);
      const auto r = ev.evaluate(questions, shots, rng);
      char cell[48];
      std::snprintf(cell, sizeof(cell), "%.2f+-%.2f", r.accuracy, r.stderr_);
      row.emplace_back(cell);
    }
    char chance[16];
    std::snprintf(chance, sizeof(chance), "%.2f",
                  1.0 / static_cast<double>(questions[0].choices.size()));
    row.emplace_back(chance);
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
}
}  // namespace

int main() {
  bench::print_header("Fig. 14", "Zero-shot accuracy on the nine QA tasks");
  auto sc = bench::default_study_config();
  core::ComparativeStudy study(sc);

  using tok::TokenizerKind;
  using nn::ArchFamily;
  core::ExperimentSpec hf52{"LLaMA-HF-52K", ArchFamily::kLLaMA,
                            TokenizerKind::kHuggingFace, 512,
                            core::OptimizerKind::kLamb, 16, false,
                            DType::kFloat32};
  core::ExperimentSpec spm52 = hf52;
  spm52.label = "LLaMA-SPM-52K";
  spm52.tokenizer = TokenizerKind::kSentencePiece;
  core::ExperimentSpec hf32 = hf52;
  hf32.label = "LLaMA-HF-32K";
  hf32.vocab = 384;
  core::ExperimentSpec neox = hf52;
  neox.label = "NeoX-HF-52K";
  neox.arch = ArchFamily::kNeoX;
  core::ExperimentSpec llama_big = hf52;
  llama_big.label = "LLaMA-6.7B";
  llama_big.big_model = true;
  core::ExperimentSpec neox_big = neox;
  neox_big.label = "NeoX-6.7B";
  neox_big.big_model = true;

  std::vector<core::PretrainedModel> trained;
  for (const auto& spec :
       {hf52, spm52, hf32, neox, llama_big, neox_big}) {
    std::printf("training %-14s ...\n", spec.label.c_str());
    std::fflush(stdout);
    trained.push_back(study.run_experiment(spec));
  }

  bench::print_section("top: tokenizer and vocabulary effect (LLaMA 1.7B)");
  print_task_rows({{"HF-52K", &trained[0]},
                   {"SPM-52K", &trained[1]},
                   {"HF-32K", &trained[2]}},
                  study, /*shots=*/0);

  bench::print_section("bottom: NeoX vs LLaMA at both sizes");
  print_task_rows({{"LLaMA-1.7B", &trained[0]},
                   {"NeoX-1.7B", &trained[3]},
                   {"LLaMA-6.7B", &trained[4]},
                   {"NeoX-6.7B", &trained[5]}},
                  study, /*shots=*/0);

  std::printf(
      "\npaper shapes: no uniform tokenizer/vocab winner; NeoX ~ LLaMA on "
      "generic tasks; loss does not fully predict downstream accuracy "
      "(Observation 4); off-domain HT-CM / HT-CCS stay near chance.\n");
  return 0;
}
