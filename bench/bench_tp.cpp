// Tensor-parallel serving: measured TP decode-step speedup vs the analytic
// prediction, plus the byte-identity gate.
//
// One serving-shaped model is sharded across 2 and 4 rank threads and
// driven through batched decode steps. For each shard count the bench
// reports:
//   * measured step time for both layouts (column-gather and row-allreduce)
//     against the TP=1 GptModel baseline;
//   * the predicted step time from tp_predict — simfrontier's α–β collective
//     model and GEMM efficiency model re-anchored to this host's measured
//     GEMM throughput, memcpy bandwidth, and barrier latency — and the
//     relative prediction error (the predict-vs-measure loop);
//   * identity_mismatches: every column-gather step's logits are memcmp'd
//     against the TP=1 step — any nonzero byte difference fails the CI gate.
//
// Speedup is an honest wall-clock ratio on THIS machine: on a single-core
// container the rank threads timeshare one core and TP cannot beat TP=1
// (the prediction's oversubscription factor says so too); host_cores is
// recorded so the committed baseline documents its conditions.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/tp/tp_model.h"
#include "serve/tp/tp_predict.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::int64_t kBatch = 4;
constexpr std::int64_t kPrefill = 48;
constexpr int kSteps = 24;

nn::GptConfig bench_config() {
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 2048;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 4;  // divisible by every shard count the bench runs
  c.max_seq = 128;
  return c;
}

std::vector<std::int32_t> prompt_for(std::int64_t seq, std::int64_t vocab) {
  std::vector<std::int32_t> p;
  for (std::int64_t t = 0; t < kPrefill; ++t) {
    p.push_back(static_cast<std::int32_t>((seq * 7 + t * 3) % vocab));
  }
  return p;
}

// Prefill kBatch sequences through the TP=1 model (every configuration
// starts from byte-identical KV state).
void prime(const nn::GptModel& model, std::vector<nn::KvCache>& caches) {
  const nn::GptConfig& c = model.config();
  caches.resize(kBatch);
  for (std::int64_t s = 0; s < kBatch; ++s) {
    caches[static_cast<std::size_t>(s)].reserve(c);
    Tape tape;
    model.forward_incremental(tape, prompt_for(s, c.vocab_size),
                              caches[static_cast<std::size_t>(s)]);
  }
}

std::int32_t fed_token(std::int64_t seq, int step, std::int64_t vocab) {
  return static_cast<std::int32_t>((seq * 11 + step * 5 + 1) % vocab);
}

struct Measured {
  double step_ms = 0.0;
  std::int64_t mismatches = 0;
};

// Decode kSteps batched steps, timing each; when `reference` is non-null it
// is stepped in lockstep through the TP=1 model and the logits compared
// byte for byte.
template <typename Forward>
Measured run_decode(const nn::GptModel& model, Forward&& forward,
                    std::vector<nn::KvCache>& caches,
                    std::vector<nn::KvCache>* reference) {
  const std::int64_t vocab = model.config().vocab_size;
  Measured m;
  std::vector<double> step_s;
  for (int step = 0; step < kSteps; ++step) {
    std::vector<std::int32_t> fed;
    std::vector<nn::KvCache*> ptrs;
    for (std::int64_t s = 0; s < kBatch; ++s) {
      fed.push_back(fed_token(s, step, vocab));
      ptrs.push_back(&caches[static_cast<std::size_t>(s)]);
    }
    Tape tape;
    const auto t0 = Clock::now();
    Var logits = forward(tape, fed, ptrs);
    step_s.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
    if (reference != nullptr) {
      std::vector<nn::KvCache*> ref_ptrs;
      for (std::int64_t s = 0; s < kBatch; ++s) {
        ref_ptrs.push_back(&(*reference)[static_cast<std::size_t>(s)]);
      }
      Tape ref_tape;
      Var ref = model.decode_batch(ref_tape, fed, ref_ptrs);
      if (std::memcmp(logits.value().data(), ref.value().data(),
                      static_cast<std::size_t>(logits.value().numel()) *
                          sizeof(float)) != 0) {
        m.mismatches += 1;
      }
    }
  }
  // Median, not mean: on an oversubscribed host a descheduled step costs a
  // whole scheduler quantum and would swamp the typical-step figure.
  std::sort(step_s.begin(), step_s.end());
  m.step_ms = 1e3 * step_s[step_s.size() / 2];
  return m;
}

}  // namespace

int main() {
  bench::print_header("BENCH tp",
                      "tensor-parallel decode: measured speedup, analytic "
                      "prediction error, byte identity");
  const nn::GptConfig c = bench_config();
  nn::GptModel model(c);
  std::printf("model: llama %lld layers x hidden %lld, %lld/%lld heads, "
              "vocab %lld; batch %lld, context %lld + %d decode steps\n",
              static_cast<long long>(c.n_layers),
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.n_heads),
              static_cast<long long>(c.kv_heads()),
              static_cast<long long>(c.vocab_size),
              static_cast<long long>(kBatch),
              static_cast<long long>(kPrefill), kSteps);

  std::vector<std::pair<std::string, double>> metrics;

  // TP=1 baseline.
  bench::print_section("TP=1 baseline");
  std::vector<nn::KvCache> base_caches;
  prime(model, base_caches);
  const Measured tp1 = run_decode(
      model,
      [&](Tape& tape, std::span<const std::int32_t> fed,
          std::span<nn::KvCache* const> ptrs) {
        return model.decode_batch(tape, fed, ptrs);
      },
      base_caches, nullptr);
  std::printf("decode step: %.3f ms\n", tp1.step_ms);
  metrics.emplace_back("tp1_step_ms", tp1.step_ms);

  std::int64_t mismatches = 0;
  const std::int64_t context = kPrefill + kSteps / 2;  // mid-run length
  for (int ranks : {2, 4}) {
    bench::print_section("TP=" + std::to_string(ranks));
    const serve::tp::HostCalibration cal = serve::tp::calibrate_host(ranks);
    std::printf("host: %d cores, %.2f Gflop/s ref gemm, %.2f GB/s memcpy, "
                "%.1f us barrier\n",
                cal.cores, cal.gemm_flops / 1e9,
                cal.memcpy_bytes_per_s / 1e9, cal.barrier_s * 1e6);
    if (ranks == 2) {
      metrics.emplace_back("host_cores", static_cast<double>(cal.cores));
    }

    double colgather_ms = 0.0;
    for (auto layout : {serve::tp::TpLayout::kColumnGather,
                        serve::tp::TpLayout::kRowAllreduce}) {
      serve::tp::TpConfig tc;
      tc.ranks = ranks;
      tc.layout = layout;
      serve::tp::TpModel sharded(model, tc);

      std::vector<nn::KvCache> caches, reference;
      prime(model, caches);
      const bool exact = layout == serve::tp::TpLayout::kColumnGather;
      if (exact) prime(model, reference);
      const Measured got = run_decode(
          model,
          [&](Tape& tape, std::span<const std::int32_t> fed,
              std::span<nn::KvCache* const> ptrs) {
            return sharded.decode_batch(tape, fed, ptrs);
          },
          caches, exact ? &reference : nullptr);

      const serve::tp::TpPrediction pred =
          serve::tp::predict_decode_step(c, tc, kBatch, context, cal);
      const double pred_ms = 1e3 * pred.total_s();
      const double err =
          std::abs(pred_ms - got.step_ms) / std::max(got.step_ms, 1e-9);
      const std::string tag = std::string(serve::tp::layout_name(layout)) +
                              "_tp" + std::to_string(ranks);
      std::printf("%-16s measured %.3f ms (speedup %.2fx), predicted %.3f ms "
                  "(compute %.3f + comm %.3f), error %.0f%%",
                  serve::tp::layout_name(layout), got.step_ms,
                  tp1.step_ms / got.step_ms, pred_ms, 1e3 * pred.compute_s,
                  1e3 * pred.comm_s, 100.0 * err);
      if (exact) {
        std::printf(", %lld/%d steps mismatched",
                    static_cast<long long>(got.mismatches), kSteps);
        mismatches += got.mismatches;
        colgather_ms = got.step_ms;
        metrics.emplace_back("speedup_tp" + std::to_string(ranks),
                             tp1.step_ms / got.step_ms);
      }
      std::printf("\n");
      metrics.emplace_back(tag + "_step_ms", got.step_ms);
      metrics.emplace_back(tag + "_predicted_ms", pred_ms);
      metrics.emplace_back(tag + "_predict_error", err);
    }
    (void)colgather_ms;
  }

  metrics.emplace_back("identity_mismatches",
                       static_cast<double>(mismatches));
  bench::print_section("verdict");
  std::printf("identity mismatches: %lld (gate: 0)\n",
              static_cast<long long>(mismatches));
  bench::write_bench_json("BENCH_tp.json", metrics);
  return mismatches == 0 ? 0 : 1;
}
