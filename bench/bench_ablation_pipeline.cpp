// Ablation (paper extension): why pipeline parallelism loses (Fig. 7's PP=2
// result), made explicit with a dependency-driven schedule simulation of
// GPipe vs. 1F1B for the 6.7B model's per-stage timings.

#include "bench_util.h"
#include "simfrontier/kernel_model.h"
#include "simfrontier/pipeline_schedule.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Ablation: pipeline schedules",
                      "GPipe vs 1F1B bubble and memory (6.7B, PP stages)");
  KernelModel km((Platform()));
  const auto model = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  // Per-stage unit times for one microbatch (2 sequences of 2048).
  const double fwd =
      total_seconds(km.layer_forward(model, 2, 2048,
                                     AttentionImpl::kFlashV2)) *
      (model.n_layers / 2);
  const double bwd =
      total_seconds(km.layer_backward(model, 2, 2048,
                                      AttentionImpl::kFlashV2)) *
      (model.n_layers / 2);

  TablePrinter table({"stages", "microbatches", "schedule", "total (s)",
                      "bubble", "peak live microbatches"});
  for (int stages : {2, 4}) {
    for (int m : {4, 8, 16}) {
      for (auto sched : {PipelineSchedule::kGpipe, PipelineSchedule::k1F1B}) {
        const auto r = simulate_pipeline(stages, m, fwd, bwd, sched);
        table.add_row({TablePrinter::fmt_int(stages),
                       TablePrinter::fmt_int(m),
                       pipeline_schedule_name(sched),
                       TablePrinter::fmt(r.total_s, 2),
                       TablePrinter::fmt_percent(r.bubble_fraction),
                       TablePrinter::fmt_int(r.peak_live_microbatches)});
      }
    }
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("timeline: 2 stages x 4 microbatches (1F1B)");
  const auto r = simulate_pipeline(2, 4, fwd, bwd, PipelineSchedule::k1F1B);
  for (const auto& u : r.units) {
    std::printf("  stage %d %s mb%d  %6.2f -> %6.2f s\n", u.stage,
                u.forward ? "fwd" : "bwd", u.microbatch, u.start_s, u.end_s);
  }
  std::printf(
      "\nshape: both schedules share the (p-1)/(m+p-1) bubble — the cost the "
      "paper's Fig. 7 PP=2 bars show — but 1F1B caps live activations at p "
      "instead of m, which is why production stacks prefer it.\n");
  return 0;
}
