// SLO-aware scheduling: priority/EDF admission vs FCFS under load.
//
// Replays one mixed-priority trace (25% high / 25% low, no deadlines so
// every request runs to completion and throughput is comparable) through
// the InferenceEngine twice on a deliberately tight KV budget: once with
// the FCFS scheduler (arrival order, head-of-line blocking) and once with
// the priority scheduler (aged-class + EDF admission, preemption of lower
// classes under memory pressure). High-priority requests should reach
// their first token far sooner under the priority policy while total token
// throughput stays close to FCFS — the scheduler reorders work, it does
// not add any.
//
// A third informational run enables chunked prefill on top of the priority
// policy to show long prompts no longer stall the decode batch.
//
// Acceptance gate: priority cuts high-class p99 TTFT >= 2x vs FCFS at
// >= 0.9x total token throughput, with zero starved (non-ok) requests.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/trace.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct RunStats {
  double wall_s = 0.0;
  double tokens_per_s = 0.0;
  double high_p50_ms = 0.0;
  double high_p99_ms = 0.0;
  double low_p99_ms = 0.0;
  double queue_p99_ms = 0.0;
  std::uint64_t preemptions = 0;
  std::uint64_t starved = 0;  // requests that did not retire kOk
  std::string report;
};

}  // namespace

int main() {
  std::printf("=== scheduler: priority/EDF + preemption vs FCFS ===\n");

  // Same serving-shaped model as the other serve benches: big enough that
  // prefill and decode are real compute, GQA so KV economics are honest.
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 8192;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 128;
  nn::GptModel model(c);

  // Mixed-SLO workload: a quarter of the traffic is latency-sensitive, a
  // quarter is batch-class, and a slice of long prompts stresses prefill.
  // No deadlines: every request must finish, so the two runs produce the
  // same tokens and throughput is apples-to-apples.
  serve::TraceSpec spec;
  spec.n_requests = 64;
  spec.vocab_size = c.vocab_size;
  spec.prompt_len_min = 16;
  spec.prompt_len_max = 48;
  spec.max_new_min = 16;
  spec.max_new_max = 32;
  spec.high_fraction = 0.25;
  spec.low_fraction = 0.25;
  spec.long_prompt_fraction = 0.15;
  spec.long_prompt_len = 96;
  const auto trace = serve::synth_trace(spec);

  std::int64_t total_tokens = 0;  // prompt + decoded, same in both runs
  std::size_t n_high = 0, n_low = 0;
  for (const auto& req : trace) {
    total_tokens += static_cast<std::int64_t>(req.prompt.size()) +
                    req.max_new_tokens;
    n_high += req.priority == serve::Priority::kHigh ? 1 : 0;
    n_low += req.priority == serve::Priority::kLow ? 1 : 0;
  }
  std::printf("model: llama %lld hidden, %lld layers, %lld heads (%lld kv)\n",
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.n_layers),
              static_cast<long long>(c.n_heads),
              static_cast<long long>(c.kv_heads()));
  std::printf("trace: %zu requests (%zu high / %zu low), %lld total tokens, "
              "%.0f%% long prompts of %lld\n\n",
              trace.size(), n_high, n_low,
              static_cast<long long>(total_tokens),
              100.0 * spec.long_prompt_fraction,
              static_cast<long long>(spec.long_prompt_len));

  // Warm up allocators and instruction caches on an off-trace request.
  {
    Rng warm(1);
    model.generate_cached(trace[0].prompt, 2, trace[0].sampling, warm);
  }

  // Tight shared budget so a queue actually forms and scheduling matters:
  // 4-sequence decode batch over a 4-slot paged arena.
  serve::EngineConfig base;
  base.max_batch = 4;
  base.kv_slots = 4;
  base.queue_capacity = 32;

  // Deterministic token paths; best-of-reps (by wall time) removes
  // shared-box scheduler noise from the latency quantiles.
  constexpr int kReps = 3;
  auto run = [&](const serve::EngineConfig& ec) {
    RunStats best;
    for (int rep = 0; rep < kReps; ++rep) {
      serve::InferenceEngine engine(model, ec);
      auto replay = trace;
      const auto t0 = Clock::now();
      const auto results = engine.run_trace(std::move(replay));
      const double s = secs_since(t0);
      if (rep > 0 && s >= best.wall_s) continue;
      best.wall_s = s;
      best.tokens_per_s = static_cast<double>(total_tokens) / s;
      const auto& st = engine.stats();
      best.high_p50_ms = st.ttft_class_ms(serve::Priority::kHigh, 0.5);
      best.high_p99_ms = st.ttft_class_ms(serve::Priority::kHigh, 0.99);
      best.low_p99_ms = st.ttft_class_ms(serve::Priority::kLow, 0.99);
      best.queue_p99_ms = st.queue_delay_ms(0.99);
      best.preemptions = st.preemptions();
      best.starved = 0;
      for (const auto& r : results) {
        best.starved += r.status == serve::RequestStatus::kOk ? 0 : 1;
      }
      best.report = st.report(s);
    }
    return best;
  };

  serve::EngineConfig fcfs_ec = base;
  fcfs_ec.scheduler = serve::sched::Policy::kFcfs;
  const auto fcfs = run(fcfs_ec);
  std::printf("fcfs:             %.3f s, %.0f tok/s | high TTFT p50 %.1f ms "
              "p99 %.1f ms | low p99 %.1f ms\n",
              fcfs.wall_s, fcfs.tokens_per_s, fcfs.high_p50_ms,
              fcfs.high_p99_ms, fcfs.low_p99_ms);

  serve::EngineConfig prio_ec = base;
  prio_ec.scheduler = serve::sched::Policy::kPriority;
  prio_ec.preempt_mode = serve::sched::PreemptMode::kSwap;
  const auto prio = run(prio_ec);
  std::printf("priority:         %.3f s, %.0f tok/s | high TTFT p50 %.1f ms "
              "p99 %.1f ms | low p99 %.1f ms | %llu preemptions\n",
              prio.wall_s, prio.tokens_per_s, prio.high_p50_ms,
              prio.high_p99_ms, prio.low_p99_ms,
              static_cast<unsigned long long>(prio.preemptions));

  serve::EngineConfig chunk_ec = prio_ec;
  chunk_ec.prefill_chunk_tokens = 32;
  const auto chunked = run(chunk_ec);
  std::printf("priority+chunked: %.3f s, %.0f tok/s | high TTFT p50 %.1f ms "
              "p99 %.1f ms | low p99 %.1f ms (informational)\n",
              chunked.wall_s, chunked.tokens_per_s, chunked.high_p50_ms,
              chunked.high_p99_ms, chunked.low_p99_ms);

  std::printf("\n%s", prio.report.c_str());

  const double ttft_cut = fcfs.high_p99_ms / prio.high_p99_ms;
  const double throughput_ratio = prio.tokens_per_s / fcfs.tokens_per_s;
  const std::uint64_t starved = fcfs.starved + prio.starved + chunked.starved;
  std::printf("\nhigh-class p99 TTFT cut: %.2fx (%.1f ms -> %.1f ms)\n",
              ttft_cut, fcfs.high_p99_ms, prio.high_p99_ms);
  std::printf("total throughput ratio:  %.2fx (%.0f -> %.0f tok/s)\n",
              throughput_ratio, fcfs.tokens_per_s, prio.tokens_per_s);
  std::printf("starved requests:        %llu\n",
              static_cast<unsigned long long>(starved));

  bench::write_bench_json(
      "BENCH_sched.json",
      {{"ttft_cut", ttft_cut},
       {"throughput_ratio", throughput_ratio},
       {"starved_requests", static_cast<double>(starved)},
       {"fcfs_high_p99_ttft_ms", fcfs.high_p99_ms},
       {"priority_high_p99_ttft_ms", prio.high_p99_ms},
       {"priority_low_p99_ttft_ms", prio.low_p99_ms},
       {"fcfs_tokens_per_s", fcfs.tokens_per_s},
       {"priority_tokens_per_s", prio.tokens_per_s},
       {"chunked_high_p99_ttft_ms", chunked.high_p99_ms},
       {"preemptions", static_cast<double>(prio.preemptions)}});
  const bool pass =
      ttft_cut >= 2.0 && throughput_ratio >= 0.9 && starved == 0;
  std::printf("%s: priority scheduling %s the >=2x TTFT / >=0.9x throughput "
              "gate\n",
              pass ? "PASS" : "FAIL", pass ? "clears" : "misses");
  return pass ? 0 : 1;
}
