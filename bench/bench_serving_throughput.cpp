// Serving throughput: continuous batching vs sequential decoding.
//
// Replays one synthetic trace through (a) a sequential baseline that runs
// generate_cached request-by-request and (b) the continuous-batching
// InferenceEngine at 8 concurrent requests. Verifies the engine's output is
// token-identical to the baseline, then reports aggregate tokens/s, the
// speedup, and the engine's TTFT / inter-token latency quantiles.
//
// Acceptance gate: >= 2x aggregate throughput over sequential at batch 8.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/trace.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("=== serving throughput: continuous batching vs sequential ===\n");

  // Serving-shaped model: ~7M params (28 MB fp32), far larger than L2, so
  // decode is weight-bandwidth-bound at batch 1 — the regime continuous
  // batching exists for. Tiny-vocab toy configs are ALU-bound at every
  // batch size and show no batching win; this one does.
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 8192;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;  // GQA, the serving-relevant configuration
  c.max_seq = 128;
  nn::GptModel model(c);

  serve::TraceSpec spec;
  spec.n_requests = 32;
  spec.vocab_size = c.vocab_size;
  // Output-heavy mix (decode >> prefill), the shape serving traces take.
  spec.max_new_min = 16;
  spec.max_new_max = 64;
  const auto trace = serve::synth_trace(spec);

  std::printf("model: llama %lld hidden, %lld layers, %lld heads (%lld kv)\n",
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.n_layers),
              static_cast<long long>(c.n_heads),
              static_cast<long long>(c.kv_heads()));
  std::printf("trace: %zu requests, prompts %lld..%lld, max_new %lld..%lld\n\n",
              trace.size(), static_cast<long long>(spec.prompt_len_min),
              static_cast<long long>(spec.prompt_len_max),
              static_cast<long long>(spec.max_new_min),
              static_cast<long long>(spec.max_new_max));

  // Warm up allocators and instruction caches on an off-trace request.
  {
    Rng warm(1);
    model.generate_cached(trace[0].prompt, 4, trace[0].sampling, warm);
  }

  // Both paths are deterministic, so repeated runs produce identical
  // tokens; taking the best of a few reps per path removes scheduler noise
  // (this is a shared box) without biasing the comparison either way.
  constexpr int kReps = 3;

  // (a) Sequential baseline: one request at a time, batch-1 KV decoding.
  std::vector<std::vector<std::int32_t>> expected;
  std::int64_t generated = 0;
  double seq_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    expected.clear();
    expected.reserve(trace.size());
    generated = 0;
    const auto t_seq = Clock::now();
    for (const auto& req : trace) {
      Rng rng(req.sampling.seed);
      expected.push_back(
          model.generate_cached(req.prompt, req.max_new_tokens, req.sampling,
                                rng));
      generated += req.max_new_tokens;
    }
    const double s = secs_since(t_seq);
    if (rep == 0 || s < seq_s) seq_s = s;
  }
  const double seq_tps = static_cast<double>(generated) / seq_s;
  std::printf("sequential: %lld tokens in %.3f s -> %.1f tokens/s (best of %d)\n",
              static_cast<long long>(generated), seq_s, seq_tps, kReps);

  // (b) Continuous batching at 8 concurrent requests.
  serve::EngineConfig ec;
  ec.max_batch = 8;
  ec.kv_slots = 8;
  double eng_s = 0.0;
  std::uint64_t eng_tokens = 0;
  std::string eng_report;
  std::vector<serve::RequestResult> results;
  for (int rep = 0; rep < kReps; ++rep) {
    serve::InferenceEngine engine(model, ec);
    auto replay = trace;
    const auto t_eng = Clock::now();
    auto rep_results = engine.run_trace(std::move(replay));
    const double s = secs_since(t_eng);
    if (rep == 0 || s < eng_s) {
      eng_s = s;
      eng_tokens = engine.stats().tokens_generated();
      eng_report = engine.stats().report(s);
      results = std::move(rep_results);
    }
  }
  const double eng_tps = static_cast<double>(eng_tokens) / eng_s;
  std::printf("engine:     %llu tokens in %.3f s -> %.1f tokens/s (best of %d)\n",
              static_cast<unsigned long long>(eng_tokens), eng_s, eng_tps,
              kReps);

  // Token identity: batching must not change any request's output.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].tokens != expected[i]) ++mismatches;
  }
  std::printf("token identity vs sequential: %s (%zu/%zu requests match)\n\n",
              mismatches == 0 ? "OK" : "MISMATCH",
              results.size() - mismatches, results.size());

  std::printf("%s", eng_report.c_str());
  const double speedup = eng_tps / seq_tps;
  std::printf("\nspeedup: %.2fx aggregate tokens/s at batch %lld\n", speedup,
              static_cast<long long>(ec.max_batch));

  bench::write_bench_json(
      "BENCH_serving.json",
      {{"sequential_tokens_per_s", seq_tps},
       {"engine_tokens_per_s", eng_tps},
       {"speedup", speedup},
       {"tokens_generated", static_cast<double>(eng_tokens)},
       {"max_batch", static_cast<double>(ec.max_batch)}});
  const bool pass = mismatches == 0 && speedup >= 2.0;
  std::printf("%s: continuous batching %s the >=2x gate\n",
              pass ? "PASS" : "FAIL", speedup >= 2.0 ? "clears" : "misses");
  return pass ? 0 : 1;
}
