// Regenerates Fig. 10: (left) the proportion of one transformer layer's
// latency by component — GEMMs vs. dropout (DR), layer norm (LN), and other
// memory-bound ops — for a medium and a large model; (right) the individual
// GEMM shares: QKV, flash attention, score, AOV, linear projection, MLP.
//
// Paper: GEMMs take 65.9% (medium) and 91.2% (large) of layer runtime, with
// QKV + MLP the dominant GEMMs — the blocks future optimization should
// target.

#include "bench_util.h"
#include "simfrontier/kernel_model.h"

using namespace matgpt;
using namespace matgpt::sim;

namespace {
void breakdown_for(const KernelModel& km, const ModelDesc& m,
                   const char* label, AttentionImpl attn) {
  bench::print_section(std::string(label) + " (" +
                       attention_impl_name(attn) + ")");
  const auto fwd = km.layer_forward(m, 16, 2048, attn);
  const auto bwd = km.layer_backward(m, 16, 2048, attn);
  std::vector<Kernel> all = fwd;
  all.insert(all.end(), bwd.begin(), bwd.end());

  double total = total_seconds(all);
  double gemm = 0.0;
  for (const auto& k : all) {
    if (k.is_gemm) gemm += k.seconds;
  }
  TablePrinter left({"component", "share of layer latency"});
  // Aggregate non-GEMM by name family (strip _bwd).
  std::map<std::string, double> families;
  for (const auto& k : all) {
    std::string name = k.name;
    const auto pos = name.find("_bwd");
    if (pos != std::string::npos) name = name.substr(0, pos);
    if (!k.is_gemm) families[name] += k.seconds;
  }
  left.add_row({"GEMMs", TablePrinter::fmt_percent(gemm / total)});
  for (const auto& [name, secs] : families) {
    left.add_row({name, TablePrinter::fmt_percent(secs / total)});
  }
  std::printf("%s", left.render().c_str());

  TablePrinter right({"GEMM", "share of GEMM latency"});
  std::map<std::string, double> gemms;
  for (const auto& k : all) {
    if (!k.is_gemm) continue;
    std::string name = k.name;
    const auto pos = name.find("_bwd");
    if (pos != std::string::npos) name = name.substr(0, pos);
    gemms[name] += k.seconds;
  }
  for (const auto& [name, secs] : gemms) {
    right.add_row({name, TablePrinter::fmt_percent(secs / gemm)});
  }
  std::printf("%s", right.render().c_str());
  std::printf("GEMM share of the layer: %.1f%%\n", 100.0 * gemm / total);
}
}  // namespace

int main() {
  bench::print_header("Fig. 10", "Per-layer kernel latency breakdown");
  KernelModel km((Platform()));
  // "Medium" ~ a GPT-medium-class layer (hidden 768) with unfused
  // attention; "large" ~ the 6.7B layer with flash — the two regimes whose
  // GEMM shares the paper contrasts (65.9% vs 91.2%).
  const ModelDesc medium{ArchFamily::kNeoX, 768, 12, 12, 52000};
  const ModelDesc large = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  breakdown_for(km, medium, "medium model (hidden 768)",
                AttentionImpl::kMaterialized);
  breakdown_for(km, large, "large model (hidden 4096)",
                AttentionImpl::kFlashV2);
  std::printf(
      "\npaper: GEMM share grows with scale (65.9%% -> 91.2%%); QKV and MLP "
      "GEMMs dominate, so they are the blocks to optimize.\n");
  return 0;
}
