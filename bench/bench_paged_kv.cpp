// Paged-KV capacity: block-paged pool vs fixed-slot pool at the SAME byte
// budget.
//
// The slotted pool pins a full max_seq-sized slab per admitted sequence, so
// a mixed-length trace strands most of that memory: a 24-token chat request
// reserves 160 tokens of KV. The paged pool reserves only the blocks the
// request's token budget (prompt + max_new) can touch, so the same bytes
// admit several-fold more concurrent sequences. This bench replays one
// mixed trace (mostly short requests, a few long) through both pools and
// compares peak concurrent sequences, then checks the two invariants the
// pager must never trade away:
//   * byte-identical outputs — greedy, seeded-stochastic, and speculative
//     requests all match the standalone generate_cached reference;
//   * zero-copy prefix reuse — every prefix-cache hit aliases blocks
//     (tokens_aliased == tokens_reused), with copy-on-write touching only
//     boundary blocks.
//
// Acceptance gate: >= 1.5x peak concurrent sequences at equal bytes, all
// outputs byte-identical, all prefix reuse aliased.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/spec/proposer.h"
#include "serve/trace.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Mostly short chat-style requests plus a handful of long-context ones —
// the mix that makes slab-per-sequence reservation waste visible.
std::vector<serve::Request> mixed_trace(std::int64_t vocab) {
  serve::TraceSpec shorts;
  shorts.n_requests = 56;
  shorts.vocab_size = vocab;
  shorts.prompt_len_min = 8;
  shorts.prompt_len_max = 24;
  shorts.max_new_min = 2;
  shorts.max_new_max = 8;
  shorts.seed = 0xb10c;
  serve::TraceSpec longs;
  longs.n_requests = 8;
  longs.vocab_size = vocab;
  longs.prompt_len_min = 96;
  longs.prompt_len_max = 128;
  longs.max_new_min = 8;
  longs.max_new_max = 24;
  longs.seed = 0x1096;
  auto trace = serve::synth_trace(shorts);
  auto tail = serve::synth_trace(longs);
  // Interleave one long request per 7 short so long admissions contend
  // with short ones mid-trace instead of queueing at the end.
  std::vector<serve::Request> mixed;
  std::size_t s = 0, g = 0;
  while (s < trace.size() || g < tail.size()) {
    for (int i = 0; i < 7 && s < trace.size(); ++i) {
      mixed.push_back(std::move(trace[s++]));
    }
    if (g < tail.size()) mixed.push_back(std::move(tail[g]));
    if (g < tail.size()) ++g;
  }
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed[i].id = i;
  }
  return mixed;
}

// Every request must match the standalone batch-1 reference bit for bit.
std::size_t count_mismatches(const std::vector<serve::RequestResult>& results,
                             const std::vector<serve::Request>& reference,
                             nn::GptModel& model) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    Rng rng(reference[i].sampling.seed);
    if (results[i].tokens !=
        model.generate_cached(reference[i].prompt,
                              reference[i].max_new_tokens,
                              reference[i].sampling, rng)) {
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main() {
  std::printf("=== paged KV pool: capacity vs slotted at equal bytes ===\n");

  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 4096;
  c.hidden = 128;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 160;
  nn::GptModel model(c);

  const auto trace = mixed_trace(c.vocab_size);
  std::int64_t budget_tokens = 0;
  for (const auto& r : trace) {
    budget_tokens += static_cast<std::int64_t>(r.prompt.size()) +
                     r.max_new_tokens;
  }
  std::printf("model: llama %lld hidden, %lld layers, %lld/%lld heads, "
              "max_seq %lld\n",
              static_cast<long long>(c.hidden),
              static_cast<long long>(c.n_layers),
              static_cast<long long>(c.n_heads),
              static_cast<long long>(c.kv_heads()),
              static_cast<long long>(c.max_seq));
  std::printf("trace: %zu requests, mean KV budget %.1f tokens "
              "(slab reserves %lld)\n\n",
              trace.size(),
              static_cast<double>(budget_tokens) /
                  static_cast<double>(trace.size()),
              static_cast<long long>(c.max_seq));

  // Both pools: 6 full-length sequences' worth of KV bytes. The slotted
  // pool spends it as 6 slabs; the paged pool as 60 16-token blocks.
  serve::EngineConfig slotted_ec;
  slotted_ec.max_batch = 32;
  slotted_ec.kv_slots = 6;
  slotted_ec.queue_capacity = trace.size();
  slotted_ec.paged_kv = false;
  serve::EngineConfig paged_ec = slotted_ec;
  paged_ec.paged_kv = true;

  auto run = [&](const serve::EngineConfig& ec, double& wall_s,
                 std::size_t& peak, std::size_t& reserved,
                 std::vector<serve::RequestResult>& results,
                 std::string& report) {
    serve::InferenceEngine engine(model, ec);
    reserved = engine.kv_pool().reserved_bytes();
    auto replay = trace;
    const auto t0 = Clock::now();
    results = engine.run_trace(std::move(replay));
    wall_s = secs_since(t0);
    peak = engine.stats().peak_active();
    report = engine.stats().report(wall_s);
  };

  double slotted_s = 0.0, paged_s = 0.0;
  std::size_t slotted_peak = 0, paged_peak = 0;
  std::size_t slotted_bytes = 0, paged_bytes = 0;
  std::vector<serve::RequestResult> slotted_res, paged_res;
  std::string slotted_report, paged_report;
  run(slotted_ec, slotted_s, slotted_peak, slotted_bytes, slotted_res,
      slotted_report);
  run(paged_ec, paged_s, paged_peak, paged_bytes, paged_res, paged_report);

  std::printf("slotted: %6.3f s, peak %2zu concurrent seqs, %.2f MB KV\n",
              slotted_s, slotted_peak,
              static_cast<double>(slotted_bytes) / (1024.0 * 1024.0));
  std::printf("paged:   %6.3f s, peak %2zu concurrent seqs, %.2f MB KV\n",
              paged_s, paged_peak,
              static_cast<double>(paged_bytes) / (1024.0 * 1024.0));
  const bool same_bytes = paged_bytes <= slotted_bytes;
  const double capacity_ratio = slotted_peak == 0
                                    ? 0.0
                                    : static_cast<double>(paged_peak) /
                                          static_cast<double>(slotted_peak);
  std::printf("capacity: %.2fx concurrent sequences at %s byte budget\n\n",
              capacity_ratio, same_bytes ? "equal-or-smaller" : "LARGER");

  // Invariant 1: both pools, all sampling modes, byte-identical tokens.
  const std::size_t slotted_bad = count_mismatches(slotted_res, trace, model);
  const std::size_t paged_bad = count_mismatches(paged_res, trace, model);
  std::printf("token identity (greedy + stochastic mix): slotted %s, "
              "paged %s\n",
              slotted_bad == 0 ? "OK" : "MISMATCH",
              paged_bad == 0 ? "OK" : "MISMATCH");

  // Speculative decoding over paged KV: the verify/rollback path truncates
  // into block tables and must stay exact.
  serve::EngineConfig spec_ec = paged_ec;
  spec_ec.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 2);
  std::vector<serve::Request> spec_trace(trace.begin(), trace.begin() + 16);
  for (auto& r : spec_trace) {
    r.sampling.temperature = 0.0f;  // spec acceptance is exact under greedy
    r.spec_k = 2;
  }
  const auto spec_reference = spec_trace;
  serve::InferenceEngine spec_engine(model, spec_ec);
  const auto spec_res = spec_engine.run_trace(std::move(spec_trace));
  const std::size_t spec_bad =
      count_mismatches(spec_res, spec_reference, model);
  std::printf("token identity (speculative, k=2):        paged %s\n",
              spec_bad == 0 ? "OK" : "MISMATCH");

  // Invariant 2: prefix hits alias blocks — zero rows copied on restore.
  serve::TraceSpec shared;
  shared.n_requests = 24;
  shared.vocab_size = c.vocab_size;
  shared.prompt_len_min = 48;
  shared.prompt_len_max = 64;
  shared.max_new_min = 1;
  shared.max_new_max = 2;
  shared.shared_prefix_fraction = 0.8;
  shared.shared_prefix_len = 48;
  serve::EngineConfig hit_ec = paged_ec;
  hit_ec.prefix_cache_bytes = 4u << 20;
  serve::InferenceEngine hit_engine(model, hit_ec);
  const auto hit_res = hit_engine.run_trace(serve::synth_trace(shared));
  (void)hit_res;
  const auto& pcs = hit_engine.prefix_cache()->stats();
  const std::uint64_t reused = hit_engine.stats().prefix_tokens_reused();
  const bool zero_copy = pcs.tokens_aliased == reused && reused > 0;
  std::printf("prefix reuse: %llu tokens reused, %llu aliased, %llu CoW rows "
              "-> %s\n\n",
              static_cast<unsigned long long>(reused),
              static_cast<unsigned long long>(pcs.tokens_aliased),
              static_cast<unsigned long long>(hit_engine.kv_pool().cow_rows()),
              zero_copy ? "zero-copy OK" : "COPIES DETECTED");

  std::printf("%s", paged_report.c_str());

  bench::write_bench_json(
      "BENCH_paged.json",
      {{"capacity_ratio", capacity_ratio},
       {"slotted_peak_active", static_cast<double>(slotted_peak)},
       {"paged_peak_active", static_cast<double>(paged_peak)},
       {"kv_bytes_mb", static_cast<double>(paged_bytes) / (1024.0 * 1024.0)},
       {"identity_mismatches",
        static_cast<double>(slotted_bad + paged_bad + spec_bad)},
       {"prefix_tokens_reused", static_cast<double>(reused)},
       {"prefix_tokens_aliased", static_cast<double>(pcs.tokens_aliased)},
       {"slotted_wall_s", slotted_s},
       {"paged_wall_s", paged_s}});

  const bool pass = same_bytes && capacity_ratio >= 1.5 && slotted_bad == 0 &&
                    paged_bad == 0 && spec_bad == 0 && zero_copy;
  std::printf("\n%s: paged KV %s the >=1.5x capacity gate at equal bytes "
              "(byte-identical outputs, zero-copy prefix reuse)\n",
              pass ? "PASS" : "FAIL",
              capacity_ratio >= 1.5 ? "clears" : "misses");
  return pass ? 0 : 1;
}
