// Tiered KV sessions: parked-conversation capacity and resume latency vs
// re-prefilling from scratch.
//
// The paged arena only holds sequences the model reads *this step*; a chat
// conversation between turns needs none of that. Parking folds a finished
// turn's KV into the tier store (host RAM, demoted to disk under pressure)
// at its actual history length, so the same arena byte budget that runs
// `kv_slots` live sequences can keep several-fold more conversations warm.
// Resuming restores the parked rows instead of re-prefilling the whole
// history, so the second turn's TTFT scales with the *new* tokens only.
//
// Three phases:
//   1. capacity — park sessions into a host tier sized to exactly the
//      arena's byte budget and count how many stay resident;
//   2. resume TTFT — for long-history sessions, time turn-2 via park/resume
//      against a fresh request carrying the full history as its prompt;
//   3. disk demotion — squeeze the host tier so parked sessions demote to
//      checksummed spill files, then resume from disk.
// Phases 2 and 3 check byte identity: every resumed turn must match the
// fresh full-history request token for token.
//
// Acceptance gate: >= 3x parked sessions resident at equal arena bytes,
// median resume TTFT below re-prefill TTFT, zero identity mismatches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/engine.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

// Deterministic pseudo-random prompt: distinct per (session, position) so
// no two conversations share a prefix.
std::vector<std::int32_t> make_prompt(std::int64_t vocab, std::uint64_t tag,
                                      std::int64_t len) {
  std::vector<std::int32_t> prompt(static_cast<std::size_t>(len));
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ (tag * 0x100000001b3ull);
  for (auto& t : prompt) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    t = static_cast<std::int32_t>(h % static_cast<std::uint64_t>(vocab));
  }
  return prompt;
}

serve::Request greedy_request(std::uint64_t id, std::vector<std::int32_t> prompt,
                              std::int64_t max_new) {
  serve::Request r;
  r.id = id;
  r.prompt = std::move(prompt);
  r.max_new_tokens = max_new;
  r.sampling.temperature = 0.0f;
  r.sampling.seed = 0x5e55 + id;
  return r;
}

// Submit, drive the engine to idle, and report seconds from submit to the
// first emitted token (the TTFT a streaming client would see).
double timed_ttft(serve::InferenceEngine& engine, serve::Request req,
                  std::vector<std::int32_t>* tokens_out) {
  Clock::time_point first{};
  req.on_token = [&first](std::int32_t) {
    if (first == Clock::time_point{}) first = Clock::now();
  };
  const bool session = req.session_id != 0;
  const auto t0 = Clock::now();
  auto fut = session ? engine.resume(std::move(req))
                     : engine.submit(std::move(req));
  engine.run_until_idle();
  auto res = fut.get();
  if (tokens_out != nullptr) *tokens_out = std::move(res.tokens);
  return std::chrono::duration<double>(first - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// One finished conversation turn: history tokens plus the session id that
// now holds them parked in the tier store.
struct Parked {
  std::uint64_t session = 0;
  std::vector<std::int32_t> history;
};

Parked run_turn(serve::InferenceEngine& engine, std::uint64_t id,
                std::int64_t vocab, std::int64_t prompt_len,
                std::int64_t max_new) {
  Parked p;
  p.session = engine.create_session();
  auto req = greedy_request(id, make_prompt(vocab, p.session, prompt_len),
                            max_new);
  req.session_id = p.session;
  auto fut = engine.resume(std::move(req));
  engine.run_until_idle();
  // RequestResult::tokens is the full sequence (prompt + generated) — for a
  // session turn, exactly the parked history.
  p.history = std::move(fut.get().tokens);
  return p;
}

}  // namespace

int main() {
  std::printf("=== tiered KV: parked-session capacity + resume TTFT ===\n");

  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 4096;
  c.hidden = 128;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 160;
  nn::GptModel model(c);

  serve::EngineConfig base_ec;
  base_ec.max_batch = 4;
  base_ec.kv_slots = 4;
  base_ec.queue_capacity = 64;

  // --- Phase 1: parked capacity at equal arena bytes. -------------------
  // Host tier budget == the arena's reserved bytes, so "how many parked
  // sessions fit" is directly comparable to the kv_slots live sequences
  // the same bytes buy in the arena.
  double arena_bytes = 0.0;
  {
    serve::InferenceEngine probe(model, base_ec);
    arena_bytes = probe.kv_pool().reserved_bytes();
  }
  serve::EngineConfig cap_ec = base_ec;
  cap_ec.kv_tier.host_tier_bytes = static_cast<std::size_t>(arena_bytes);
  serve::InferenceEngine cap_engine(model, cap_ec);

  std::vector<Parked> parked;
  for (std::uint64_t i = 0; i < 64; ++i) {
    parked.push_back(
        run_turn(cap_engine, 1000 + i, c.vocab_size,
                 /*prompt_len=*/12 + static_cast<std::int64_t>(i % 7),
                 /*max_new=*/4));
    if (cap_engine.stats().session_park_drops() > 0) break;  // tier is full
  }
  std::size_t resident = 0;
  for (const auto& p : parked) {
    const auto info = cap_engine.session_info(p.session);
    if (info && info->residency != serve::kv_tier::Residency::kNone) {
      ++resident;
    }
  }
  const double arena_sessions = static_cast<double>(base_ec.kv_slots);
  const double parked_capacity_ratio =
      static_cast<double>(resident) / arena_sessions;
  std::printf("arena: %.2f MB = %zu live slots; host tier at the same bytes "
              "keeps %zu parked sessions resident -> %.2fx\n\n",
              arena_bytes / (1024.0 * 1024.0), base_ec.kv_slots, resident,
              parked_capacity_ratio);

  // --- Phase 2: resume TTFT vs re-prefilling the history. ---------------
  serve::EngineConfig warm_ec = base_ec;  // unbounded host tier
  serve::InferenceEngine warm_engine(model, warm_ec);
  serve::InferenceEngine fresh_engine(model, base_ec);
  // Warm both engines once so first-touch allocation noise stays out of
  // the timed runs.
  (void)timed_ttft(warm_engine,
                   greedy_request(1, make_prompt(c.vocab_size, 77, 16), 2),
                   nullptr);
  (void)timed_ttft(fresh_engine,
                   greedy_request(1, make_prompt(c.vocab_size, 77, 16), 2),
                   nullptr);

  const int kSessions = 8;
  const std::int64_t kHistoryPrompt = 96, kTurn1New = 8, kTurn2New = 4;
  std::vector<double> resume_ttft, reprefill_ttft;
  std::size_t mismatches = 0;
  auto second_turn = [&](serve::InferenceEngine& engine, const Parked& p,
                         std::uint64_t id) {
    // Turn 2 carries ONE new token; the parked history is restored from
    // the tier instead of re-prefilled.
    auto req = greedy_request(id, make_prompt(c.vocab_size, p.session ^ 0xabc,
                                              1),
                              kTurn2New);
    req.session_id = p.session;
    std::vector<std::int32_t> resumed;
    const double ttft = timed_ttft(engine, std::move(req), &resumed);
    // Reference: a fresh request whose prompt is the full history plus the
    // same new token — what a session-less server would have to run.
    auto full = p.history;
    const auto turn2 = make_prompt(c.vocab_size, p.session ^ 0xabc, 1);
    full.insert(full.end(), turn2.begin(), turn2.end());
    std::vector<std::int32_t> ref;
    const double ref_ttft = timed_ttft(
        fresh_engine, greedy_request(id + 500, std::move(full), kTurn2New),
        &ref);
    if (resumed != ref) ++mismatches;
    resume_ttft.push_back(ttft);
    reprefill_ttft.push_back(ref_ttft);
  };
  {
    std::vector<Parked> warm;
    for (int i = 0; i < kSessions; ++i) {
      warm.push_back(run_turn(warm_engine, 2000 + i, c.vocab_size,
                              kHistoryPrompt, kTurn1New));
    }
    for (int i = 0; i < kSessions; ++i) {
      second_turn(warm_engine, warm[static_cast<std::size_t>(i)], 2100 + i);
    }
  }
  const double med_resume = median(resume_ttft);
  const double med_reprefill = median(reprefill_ttft);
  const double resume_ttft_speedup =
      med_resume > 0.0 ? med_reprefill / med_resume : 0.0;
  std::printf("resume TTFT (host tier): median %.3f ms vs %.3f ms "
              "re-prefilling %lld history tokens -> %.2fx\n",
              med_resume * 1e3, med_reprefill * 1e3,
              static_cast<long long>(kHistoryPrompt + kTurn1New),
              resume_ttft_speedup);

  // --- Phase 3: demote to disk, resume from spill files. ----------------
  const auto spill_dir = std::filesystem::temp_directory_path() /
                         "matgpt_bench_kv_tiers_spill";
  std::filesystem::remove_all(spill_dir);
  const double history_bytes =
      arena_bytes / static_cast<double>(base_ec.kv_slots) *
      static_cast<double>(kHistoryPrompt + kTurn1New) /
      static_cast<double>(c.max_seq);
  serve::EngineConfig disk_ec = base_ec;
  // Room for ~2 parked histories in RAM; the rest demote to disk.
  disk_ec.kv_tier.host_tier_bytes =
      static_cast<std::size_t>(2.5 * history_bytes);
  disk_ec.kv_tier.disk_tier_bytes = 64u << 20;
  disk_ec.kv_tier.spill_dir = spill_dir.string();
  serve::InferenceEngine disk_engine(model, disk_ec);
  std::vector<Parked> cold;
  for (int i = 0; i < kSessions; ++i) {
    cold.push_back(run_turn(disk_engine, 3000 + i, c.vocab_size,
                            kHistoryPrompt, kTurn1New));
  }
  const std::uint64_t demotions = disk_engine.tier().stats().demotions;
  std::vector<double> disk_resume;
  const std::size_t before = mismatches;
  {
    std::vector<double> save_resume = std::move(resume_ttft);
    std::vector<double> save_reprefill = std::move(reprefill_ttft);
    resume_ttft.clear();
    reprefill_ttft.clear();
    for (int i = 0; i < kSessions; ++i) {
      second_turn(disk_engine, cold[static_cast<std::size_t>(i)], 3100 + i);
    }
    disk_resume = std::move(resume_ttft);
    resume_ttft = std::move(save_resume);
    reprefill_ttft = std::move(save_reprefill);
  }
  const std::uint64_t recomputes =
      disk_engine.stats().session_resume_recomputes();
  std::printf("disk tier: %llu demotions, %llu resume recomputes; resume "
              "from spill median %.3f ms, identity %s\n\n",
              static_cast<unsigned long long>(demotions),
              static_cast<unsigned long long>(recomputes),
              median(disk_resume) * 1e3,
              mismatches == before ? "OK" : "MISMATCH");
  std::filesystem::remove_all(spill_dir);

  std::printf("token identity (resume vs full-history re-prefill, host + "
              "disk): %zu mismatches\n",
              mismatches);

  bench::write_bench_json(
      "BENCH_kv_tiers.json",
      {{"parked_capacity_ratio", parked_capacity_ratio},
       {"parked_resident_sessions", static_cast<double>(resident)},
       {"arena_capacity_sessions", arena_sessions},
       {"arena_bytes_mb", arena_bytes / (1024.0 * 1024.0)},
       {"resume_ttft_speedup", resume_ttft_speedup},
       {"median_resume_ttft_ms", med_resume * 1e3},
       {"median_reprefill_ttft_ms", med_reprefill * 1e3},
       {"median_disk_resume_ttft_ms", median(disk_resume) * 1e3},
       {"disk_demotions", static_cast<double>(demotions)},
       {"resume_recomputes", static_cast<double>(recomputes)},
       {"identity_mismatches", static_cast<double>(mismatches)}});

  const bool pass = parked_capacity_ratio >= 3.0 &&
                    resume_ttft_speedup > 1.0 && mismatches == 0;
  std::printf("\n%s: tiered KV %s the >=3x parked-capacity gate at equal "
              "arena bytes (resume %.2fx faster than re-prefill, "
              "byte-identical)\n",
              pass ? "PASS" : "FAIL",
              parked_capacity_ratio >= 3.0 ? "clears" : "misses",
              resume_ttft_speedup);
  return pass ? 0 : 1;
}
