// Regenerates Table III: training hyper-parameters, and exercises the
// corresponding schedule/optimizer configuration (cosine decay with 1%
// warmup to 10% of peak, the paper's recipe).

#include "bench_util.h"
#include "optim/optimizer.h"

using namespace matgpt;

int main() {
  bench::print_header("Table III", "Training hyper-parameters for MatGPT");
  TablePrinter table({"Model", "Optimizer", "beta1", "beta2", "LR", "BS"});
  for (const auto& row : core::table3_rows()) {
    table.add_row({row.model, row.optimizer, TablePrinter::fmt(row.beta1, 2),
                   TablePrinter::fmt(row.beta2, 3),
                   TablePrinter::fmt(row.lr, 4), row.batch_tokens});
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("LAMB 6.7B schedule (cosine, 1% warmup, 10% floor)");
  // 15B tokens / 4M-token batches => ~3750 steps.
  const std::int64_t steps = 3750;
  optim::CosineSchedule schedule(0.006, steps, 0.01, 0.1);
  TablePrinter sched({"step", "lr"});
  for (std::int64_t s : {std::int64_t{0}, schedule.warmup_steps() - 1,
                         steps / 4, steps / 2, 3 * steps / 4, steps - 1}) {
    sched.add_row({TablePrinter::fmt_int(s),
                   TablePrinter::fmt(schedule.lr(s), 5)});
  }
  std::printf("%s", sched.render().c_str());
  std::printf("peak lr %.4f, final lr %.4f (10%% of peak), warmup %lld steps\n",
              schedule.lr(schedule.warmup_steps()),
              schedule.lr(steps - 1),
              static_cast<long long>(schedule.warmup_steps()));
  return 0;
}
