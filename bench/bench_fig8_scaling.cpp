// Regenerates Fig. 8: (top) scaling of training throughput to 256 GCDs for
// 1.7B data-parallel, 6.7B ZeRO-1, and 6.7B TP=2; (bottom) the
// rocprof-style compute/communication/IO breakdown of the three parallel
// distributions at 256 GCDs.
//
// Paper: 1.7B DP reaches >18 PFLOPS at 88% efficiency; 6.7B ZeRO-1 holds to
// ~64 GPUs then drops (all-device collectives); TP=2 sustains ~71%
// efficiency thanks to the 2-GCD MI250X mapping; IO is ~5%, communication
// up to ~40% of kernel time for ZeRO-1 at scale.

#include "bench_util.h"
#include "simfrontier/trace.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Fig. 8", "Scaling to 256 GCDs + profiling breakdown");
  TrainingSimulator sim((Platform()));
  const auto m17 = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto m67 = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);

  bench::print_section("scaling (TFLOPS/GCD; aggregate PFLOPS for 1.7B DP)");
  TablePrinter table({"GCDs", "1.7B DP (TF)", "1.7B PFLOPS", "1.7B eff",
                      "6.7B ZeRO (TF)", "6.7B ZeRO eff", "6.7B TP=2 (TF)",
                      "6.7B TP=2 eff"});
  StepProfile base17, base_zero, base_tp;
  for (int g : {8, 16, 32, 64, 128, 256}) {
    const auto dp = sim.simulate_step(m17, {g, 1, 1, false}, 16384, 2048,
                                      AttentionImpl::kFlashV2);
    const auto zero = sim.simulate_step(m67, {g, 1, 1, true}, 8192, 2048,
                                        AttentionImpl::kFlashV2);
    const auto tp = sim.simulate_step(m67, {g / 2, 2, 1, false}, 8192, 2048,
                                      AttentionImpl::kFlashV2);
    if (g == 8) {
      base17 = dp;
      base_zero = zero;
      base_tp = tp;
    }
    table.add_row({TablePrinter::fmt_int(g),
                   TablePrinter::fmt(dp.per_gcd_tflops, 1),
                   TablePrinter::fmt(dp.aggregate_pflops, 2),
                   TablePrinter::fmt_percent(
                       sim.scaling_efficiency(base17, dp), 0),
                   TablePrinter::fmt(zero.per_gcd_tflops, 1),
                   TablePrinter::fmt_percent(
                       sim.scaling_efficiency(base_zero, zero), 0),
                   TablePrinter::fmt(tp.per_gcd_tflops, 1),
                   TablePrinter::fmt_percent(
                       sim.scaling_efficiency(base_tp, tp), 0)});
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("rocprof breakdown at 256 GCDs (share of kernel time)");
  struct Case {
    const char* label;
    ModelDesc model;
    ParallelConfig parallel;
    std::int64_t tokens;
  };
  const std::vector<Case> cases{
      {"1.7B data-parallel", m17, {256, 1, 1, false}, 16384},
      {"6.7B ZeRO stage 1", m67, {256, 1, 1, true}, 8192},
      {"6.7B TP=2", m67, {128, 2, 1, false}, 8192},
  };
  TablePrinter prof({"distribution", "compute", "comm (RCCL)", "IO"});
  for (const auto& c : cases) {
    const auto trace = StepTrace::build(sim, c.model, c.parallel, c.tokens,
                                        2048, AttentionImpl::kFlashV2);
    const auto b = trace.breakdown();
    prof.add_row({c.label, TablePrinter::fmt_percent(b.compute_fraction()),
                  TablePrinter::fmt_percent(b.comm_fraction()),
                  TablePrinter::fmt_percent(b.io_fraction())});
  }
  std::printf("%s", prof.render().c_str());
  std::printf("paper: IO plays no big role (~5%% worst case for ZeRO); "
              "communication dominates the overhead at scale.\n");

  bench::print_section(
      "ablation: TP=2 mapped across nodes instead of the GCD pair");
  // Observation 2's topology claim: TP works because the partition maps onto
  // the 200 GB/s on-package link. Model the off-package variant by pricing
  // the TP allreduces at inter-node bandwidth (group of 16 spans nodes).
  const auto on_package = sim.network().collective_time(
      Collective::kAllReduce, 16384.0 * 2 * m67.hidden * 2, 2);
  const auto off_package = sim.network().collective_time(
      Collective::kAllReduce, 16384.0 * 2 * m67.hidden * 2, 16);
  std::printf(
      "per-layer TP allreduce: on-package %.3f ms vs off-package-style %.3f "
      "ms (%.1fx worse)\n",
      on_package * 1e3, off_package * 1e3, off_package / on_package);
  return 0;
}
