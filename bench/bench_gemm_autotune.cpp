// GEMM autotuner + quantized decode: the analytic cost model's
// predicted-vs-measured loop (the AMOS idiom at CPU scale), the tuned-vs-
// fixed-tiling speedup on the serving engine's decode shapes, and the int8
// decode path's accuracy gates.
//
// The serving engine's GEMMs live in the *streaming* regime: every decode
// step re-reads weight matrices far larger than cache while M is tiny. The
// fixed {mr=8, nc=512} tiling that wins hot-L2 microbenches loses badly
// there — a batch-1 GEMM touches each 512-column chunk for one row's worth
// of work, so the whole weight matrix streams k times with 2 KB segments.
// The tuner's cost model prices exactly that (compute efficiency vs
// streamed traffic with a segment-length term) and picks wide-chunk
// tilings for skinny shapes; every tiling is byte-identical, so the gate
// is pure speed. All measurements here cycle through enough weight copies
// to defeat the LLC, matching the engine's cold-weights reality.
//
// Phases:
//   1. calibration — the measured host anchors the model extrapolates from;
//   2. predicted vs measured — relative error over a shape x format x
//      tiling grid (gate: median error <= 50%, the tp_predict discipline);
//   3. tuned vs fixed — autotune_speedup (int8 decode shape, gate >= 1.3x),
//      fp32_autotune_speedup (geomean over M in {1,4,8}), and
//      int8_decode_speedup (tuned int8 vs fixed-tiling fp32 at M=1);
//   4. accuracy — int8 decode logit error vs fp32 on a serving-shaped
//      model (exact_max gate) and token identity: engine int8 (batched,
//      chunked prefill, speculative) vs batch-1 generate_cached int8,
//      zero mismatches allowed.
// Also persists the tuner cache (BENCH_gemm_tune_cache.json) so CI can
// archive the shape->tiling choices alongside the metrics.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/spec/proposer.h"
#include "tensor/gemm_tune.h"
#include "tensor/kernels.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;
using gemm_tune::GemmTuner;
using kernels::GemmVariant;
using kernels::WeightFormat;

namespace {

double now_s() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::vector<float> pattern_matrix(std::int64_t rows, std::int64_t cols,
                                  std::uint64_t seed) {
  std::vector<float> m(static_cast<std::size_t>(rows * cols));
  std::uint64_t h = seed * 0x9e3779b97f4a7c15ull + 1;
  for (float& v : m) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    v = static_cast<float>(static_cast<std::int64_t>(h % 2001) - 1000) /
        1000.0f;
  }
  return m;
}

/// One GEMM shape's cold-weights working set: enough weight copies that
/// cycling through them defeats the last-level cache between timed calls.
struct ColdWeights {
  std::int64_t k = 0, n = 0;
  std::size_t copies = 0;
  std::vector<std::vector<float>> f32;
  std::vector<gemm_tune::QuantWeights> quant;

  ColdWeights(std::int64_t k_, std::int64_t n_, WeightFormat format)
      : k(k_), n(n_) {
    // >= 96 MB in the format actually streamed — int8 weights are 4x
    // smaller than fp32, so sizing by the fp32 footprint would leave the
    // int8 working set LLC-resident and the "cold" numbers hot.
    const std::size_t elems = static_cast<std::size_t>(k * n);
    const std::size_t bytes =
        format == WeightFormat::kF32
            ? elems * 4
            : (format == WeightFormat::kBf16 ? elems * 2 : elems);
    copies = std::max<std::size_t>(4, (96u << 20) / bytes);
    for (std::size_t i = 0; i < copies; ++i) {
      auto w = pattern_matrix(k, n, 77 + i);
      if (format == WeightFormat::kF32) {
        f32.push_back(std::move(w));
      } else {
        quant.push_back(gemm_tune::quantize_weights(w.data(), k, n, format));
      }
    }
  }
};

double one_cycle(const ColdWeights& w, WeightFormat format, const float* a,
                 float* c, std::int64_t m, const GemmVariant& variant) {
  const double t0 = now_s();
  for (std::size_t i = 0; i < w.copies; ++i) {
    switch (format) {
      case WeightFormat::kF32:
        kernels::gemm_nn_variant(a, w.f32[i].data(), c, m, w.n, w.k, false,
                                 variant);
        break;
      case WeightFormat::kBf16:
        kernels::gemm_nn_bf16(a, w.quant[i].bf16.data(), c, m, w.n, w.k,
                              variant);
        break;
      case WeightFormat::kInt8:
        kernels::gemm_nn_int8(a, w.quant[i].q8.data(), w.quant[i].scale.data(),
                              c, m, w.n, w.k, variant);
        break;
    }
  }
  return (now_s() - t0) / static_cast<double>(w.copies);
}

/// Best-of-3 seconds per call for one tiling over the cold working set.
double time_cold(const ColdWeights& w, WeightFormat format, std::int64_t m,
                 const GemmVariant& variant) {
  const auto a = pattern_matrix(m, w.k, 5);
  std::vector<float> c(static_cast<std::size_t>(m * w.n));
  double best = 1e30;
  for (int cycle = 0; cycle < 5; ++cycle) {
    best = std::min(best, one_cycle(w, format, a.data(), c.data(), m, variant));
  }
  return best;
}

/// Time two tilings with their cycles interleaved in ABBA order, so slow
/// drift on a shared 1-core host hits both equally, and return the best of
/// 16 cycles each — enough rounds that both variants land quiet windows
/// and the min converges. Comparing two independent time_cold calls is NOT
/// reliable
/// here: back-to-back runs of the identical variant were observed 40%
/// apart. Strict ABAB ordering is not enough either — under progressive
/// frequency throttling the first slot always runs earlier on average,
/// which showed up as an 11% bias between identical variants.
std::pair<double, double> time_cold_pair(const ColdWeights& w,
                                         WeightFormat format, std::int64_t m,
                                         const GemmVariant& v1,
                                         const GemmVariant& v2) {
  const auto a = pattern_matrix(m, w.k, 5);
  std::vector<float> c(static_cast<std::size_t>(m * w.n));
  double best1 = 1e30, best2 = 1e30;
  for (int round = 0; round < 8; ++round) {
    const bool swap = (round % 2) != 0;
    const GemmVariant& first = swap ? v2 : v1;
    const GemmVariant& second = swap ? v1 : v2;
    double& bf = swap ? best2 : best1;
    double& bs = swap ? best1 : best2;
    bf = std::min(bf, one_cycle(w, format, a.data(), c.data(), m, first));
    bs = std::min(bs, one_cycle(w, format, a.data(), c.data(), m, second));
    bs = std::min(bs, one_cycle(w, format, a.data(), c.data(), m, second));
    bf = std::min(bf, one_cycle(w, format, a.data(), c.data(), m, first));
  }
  return {best1, best2};
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

double gflops(std::int64_t m, std::int64_t n, std::int64_t k, double secs) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) / secs / 1e9;
}

// ---------------------------------------------------------------------------
// Accuracy harness model (the serving shape matgpt_cli uses)
// ---------------------------------------------------------------------------

nn::GptConfig serving_config() {
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 8192;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 128;
  return c;
}

std::vector<std::int32_t> make_prompt(std::int64_t vocab, std::uint64_t tag,
                                      std::int64_t len) {
  std::vector<std::int32_t> prompt(static_cast<std::size_t>(len));
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ (tag * 0x100000001b3ull);
  for (auto& t : prompt) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    t = static_cast<std::int32_t>(h % static_cast<std::uint64_t>(vocab));
  }
  return prompt;
}

serve::Request greedy_request(std::uint64_t id,
                              std::vector<std::int32_t> prompt,
                              std::int64_t max_new) {
  serve::Request r;
  r.id = id;
  r.prompt = std::move(prompt);
  r.max_new_tokens = max_new;
  r.sampling.temperature = 0.0f;
  r.sampling.seed = 0x5e55 + id;
  return r;
}

/// Count requests whose engine tokens differ from batch-1 generate_cached
/// under the model's currently installed decode format.
std::size_t identity_mismatches(serve::InferenceEngine& engine,
                                const nn::GptModel& model,
                                std::size_t n_requests, std::int64_t max_new,
                                bool speculative) {
  std::vector<serve::Request> trace;
  for (std::size_t i = 0; i < n_requests; ++i) {
    auto req = greedy_request(1 + i,
                              make_prompt(model.config().vocab_size, 31 + i,
                                          6 + static_cast<std::int64_t>(i) % 9),
                              max_new);
    if (speculative) req.spec_k = 2;
    trace.push_back(std::move(req));
  }
  const auto reference = trace;
  const auto results = engine.run_trace(std::move(trace));
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    Rng rng(reference[i].sampling.seed);
    const auto expected =
        model.generate_cached(reference[i].prompt,
                              reference[i].max_new_tokens,
                              reference[i].sampling, rng);
    if (results[i].tokens != expected) ++mismatches;
  }
  return mismatches;
}

}  // namespace

int main() {
  bench::print_header("GEMM autotuner + int8 decode",
                      "analytic-model-guided tiling on the serving shapes");
  if (!kernels::gemm_simd_active()) {
    std::printf("WARNING: SIMD dispatch inactive (portable build / no AVX2); "
                "tilings collapse to the scalar kernel and speedups read "
                "1.0x.\n");
  }

  // --- 1. calibration -------------------------------------------------------
  bench::print_section("host anchors (measured, tp_predict idiom)");
  const auto& anchors = gemm_tune::host_anchors();
  std::printf("hot compute peaks: f32 %.1f / bf16 %.1f / int8 %.1f GFLOP/s\n",
              anchors.f32_gflops, anchors.bf16_gflops, anchors.int8_gflops);
  std::printf("streaming weight bandwidth: %.1f GB/s\n", anchors.stream_gbs);

  // --- 2. predicted vs measured --------------------------------------------
  bench::print_section("cost model: predicted vs measured (cold weights)");
  struct GridShape {
    std::int64_t m, n, k;
  };
  const GridShape grid[] = {{1, 2048, 512}, {4, 2048, 512}, {8, 2048, 512},
                            {1, 8192, 256}, {8, 512, 512}};
  std::vector<double> rel_errors;
  double worst_err = 0.0;
  for (const auto format : {WeightFormat::kF32, WeightFormat::kInt8}) {
    for (const auto& s : grid) {
      ColdWeights w(s.k, s.n, format);
      // The default tiling plus the model's own pick: the two tilings the
      // dispatcher will actually run.
      std::vector<GemmVariant> tilings{kernels::gemm_default_variant()};
      const auto cands = gemm_tune::candidate_space(s.m, s.n, s.k, format);
      GemmVariant best = cands[0];
      double best_pred = gemm_tune::predict_seconds(s.m, s.n, s.k, format,
                                                    best, anchors);
      for (const auto& v : cands) {
        const double p =
            gemm_tune::predict_seconds(s.m, s.n, s.k, format, v, anchors);
        if (p < best_pred) {
          best_pred = p;
          best = v;
        }
      }
      if (!(best == tilings[0])) tilings.push_back(best);
      for (const auto& v : tilings) {
        const double predicted =
            gemm_tune::predict_seconds(s.m, s.n, s.k, format, v, anchors);
        const double measured = time_cold(w, format, s.m, v);
        const double err = std::abs(predicted - measured) / measured;
        rel_errors.push_back(err);
        worst_err = std::max(worst_err, err);
        std::printf("  %4s %2lldx%lldx%lld mr=%2d nc=%4lld: predicted %7.1f "
                    "us, measured %7.1f us (%.1f GFLOP/s), err %4.0f%%\n",
                    kernels::format_name(format),
                    static_cast<long long>(s.m), static_cast<long long>(s.n),
                    static_cast<long long>(s.k), v.mr,
                    static_cast<long long>(v.nc), predicted * 1e6,
                    measured * 1e6, gflops(s.m, s.n, s.k, measured), 100 * err);
      }
    }
  }
  const double predict_error_median = median(rel_errors);
  std::printf("relative error: median %.0f%%, worst %.0f%% over %zu points\n",
              100 * predict_error_median, 100 * worst_err, rel_errors.size());

  // --- 3. tuned vs fixed tiling --------------------------------------------
  bench::print_section("tuned vs fixed tiling (decode shapes, cold weights)");
  const GemmVariant fixed = kernels::gemm_default_variant();
  auto model_best = [&](std::int64_t m, std::int64_t n, std::int64_t k,
                        WeightFormat format) {
    GemmVariant best = fixed;
    double best_pred =
        gemm_tune::predict_seconds(m, n, k, format, best, anchors);
    for (const auto& v : gemm_tune::candidate_space(m, n, k, format)) {
      const double p = gemm_tune::predict_seconds(m, n, k, format, v, anchors);
      if (p < best_pred) {
        best_pred = p;
        best = v;
      }
    }
    return best;
  };

  // The flagship gate: batch-1 int8 decode through the lm_head shape
  // (k=256 -> n=8192, this file's accuracy-model head). With nc=512 the
  // inner stream is 512-byte segments at an 8 KB stride — the pattern the
  // fixed tiling was never designed for; wide chunks restore contiguity.
  ColdWeights head_w(256, 8192, WeightFormat::kInt8);
  const GemmVariant head_pick = model_best(1, 8192, 256, WeightFormat::kInt8);
  const auto [head_fixed, head_tuned] =
      time_cold_pair(head_w, WeightFormat::kInt8, 1, fixed, head_pick);
  const double autotune_speedup = head_fixed / head_tuned;
  std::printf("int8 M=1 lm_head (256->8192): fixed {8,512} %.1f us vs tuned "
              "{%d,%lld} %.1f us -> %.2fx\n",
              head_fixed * 1e6, head_pick.mr,
              static_cast<long long>(head_pick.nc), head_tuned * 1e6,
              autotune_speedup);

  // Secondary: the MLP up-projection decode shape (k=512 -> n=2048), where
  // the stride is short enough for the prefetcher to mostly keep up.
  ColdWeights int8_w(512, 2048, WeightFormat::kInt8);
  const GemmVariant int8_pick = model_best(1, 2048, 512, WeightFormat::kInt8);
  const auto [int8_fixed, int8_tuned] =
      time_cold_pair(int8_w, WeightFormat::kInt8, 1, fixed, int8_pick);
  const double mlp_autotune_speedup = int8_fixed / int8_tuned;
  std::printf("int8 M=1 mlp_up (512->2048): fixed {8,512} %.1f us vs tuned "
              "{%d,%lld} %.1f us -> %.2fx\n",
              int8_fixed * 1e6, int8_pick.mr,
              static_cast<long long>(int8_pick.nc), int8_tuned * 1e6,
              mlp_autotune_speedup);

  // fp32 is a regression guard more than a win: at these decode shapes fp32
  // streams 4 bytes/weight and is bandwidth-bound under every tiling, so
  // the model mostly picks the default and the honest geomean sits near
  // 1.0x. The gate catches the tuner ever picking a SLOWER fp32 tiling.
  ColdWeights f32_w(512, 2048, WeightFormat::kF32);
  double fp32_geomean = 1.0;
  int fp32_points = 0;
  double f32_m1_fixed = 0.0;
  for (const std::int64_t m : {1, 4, 8}) {
    const GemmVariant pick = model_best(m, 2048, 512, WeightFormat::kF32);
    const auto [t_fixed, t_tuned] =
        time_cold_pair(f32_w, WeightFormat::kF32, m, fixed, pick);
    if (m == 1) f32_m1_fixed = t_fixed;
    const double speedup = t_fixed / t_tuned;
    fp32_geomean *= speedup;
    ++fp32_points;
    std::printf("f32  M=%lld: fixed %.1f us vs tuned {%d,%lld} %.1f us -> "
                "%.2fx\n",
                static_cast<long long>(m), t_fixed * 1e6, pick.mr,
                static_cast<long long>(pick.nc), t_tuned * 1e6, speedup);
  }
  const double fp32_autotune_speedup =
      std::pow(fp32_geomean, 1.0 / fp32_points);
  const double int8_decode_speedup = f32_m1_fixed / int8_tuned;
  std::printf("fp32 autotune geomean %.2fx; tuned int8 vs fixed fp32 at M=1: "
              "%.2fx\n",
              fp32_autotune_speedup, int8_decode_speedup);

  // --- 4. accuracy: int8 decode vs fp32 ------------------------------------
  bench::print_section("int8 decode accuracy (serving-shaped model)");
  const nn::GptConfig mc = serving_config();
  nn::GptModel model(mc);
  const auto prompt = make_prompt(mc.vocab_size, 7, 16);
  const int steps = 16;
  auto step_token = [&](int s) {
    return static_cast<std::int32_t>((prompt[s % prompt.size()] + s) %
                                     mc.vocab_size);
  };
  std::vector<std::vector<float>> ref_logits;
  model.prepare_decode_quant(WeightFormat::kF32);
  {
    nn::KvCache cache;
    Tape t0;
    model.forward_incremental(t0, prompt, cache);
    for (int s = 0; s < steps; ++s) {
      Tape t;
      const std::int32_t tok = step_token(s);
      Var lg = model.forward_incremental(
          t, std::span<const std::int32_t>(&tok, 1), cache);
      ref_logits.emplace_back(lg.value().data(),
                              lg.value().data() + mc.vocab_size);
    }
  }
  model.prepare_decode_quant(WeightFormat::kInt8);
  double int8_logit_max_abs_err = 0.0;
  double max_abs_logit = 0.0;
  std::int64_t argmax_agree = 0;
  {
    nn::KvCache cache;
    Tape t0;
    model.forward_incremental(t0, prompt, cache);
    for (int s = 0; s < steps; ++s) {
      Tape t;
      const std::int32_t tok = step_token(s);
      Var lg = model.forward_incremental(
          t, std::span<const std::int32_t>(&tok, 1), cache);
      const float* q = lg.value().data();
      std::int64_t ra = 0, qa = 0;
      for (std::int64_t v = 0; v < mc.vocab_size; ++v) {
        max_abs_logit = std::max(max_abs_logit,
                                 std::abs(static_cast<double>(
                                     ref_logits[s][v])));
        int8_logit_max_abs_err =
            std::max(int8_logit_max_abs_err,
                     std::abs(static_cast<double>(q[v]) - ref_logits[s][v]));
        if (ref_logits[s][v] > ref_logits[s][ra]) ra = v;
        if (q[v] > q[qa]) qa = v;
      }
      if (ra == qa) ++argmax_agree;
    }
  }
  std::printf("teacher-forced logits over %d steps: max |err| %.2e "
              "(max |logit| %.3f), argmax agreement %lld/%d\n",
              steps, int8_logit_max_abs_err, max_abs_logit,
              static_cast<long long>(argmax_agree), steps);

  // Token identity WITHIN the int8 format: the engine (batched decode,
  // chunked prefill, speculative verify) against batch-1 generate_cached on
  // the same quantized weights. fp32-vs-int8 token equality is not a
  // meaningful gate on a random-init model; within-format byte identity is
  // the property the engine guarantees.
  bench::print_section("int8 token identity: engine vs generate_cached");
  std::size_t int8_identity_mismatches = 0;
  {
    serve::EngineConfig ec;
    ec.max_batch = 4;
    ec.kv_slots = 4;
    ec.decode_quant = WeightFormat::kInt8;
    ec.prefill_chunk_tokens = 3;
    serve::InferenceEngine engine(model, ec);
    const std::size_t m = identity_mismatches(engine, model, 8, 10, false);
    std::printf("chunked prefill (3-token chunks): %zu/8 mismatches\n", m);
    int8_identity_mismatches += m;
  }
  {
    serve::EngineConfig ec;
    ec.max_batch = 4;
    ec.kv_slots = 4;
    ec.decode_quant = WeightFormat::kInt8;
    ec.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 2);
    serve::InferenceEngine engine(model, ec);
    const std::size_t m = identity_mismatches(engine, model, 8, 12, true);
    std::printf("speculative (k=2, layer-skip draft): %zu/8 mismatches\n", m);
    int8_identity_mismatches += m;
  }
  // The autotuned engine runs LAST: every engine ctor reconfigures the
  // process-global tuner (clearing its cache), so the stats snapshot and
  // the persisted cache must be taken while this one is still alive.
  gemm_tune::TunerStats tuner_stats;
  {
    serve::EngineConfig ec;
    ec.max_batch = 4;
    ec.kv_slots = 4;
    ec.decode_quant = WeightFormat::kInt8;
    ec.gemm_autotune = true;
    serve::InferenceEngine engine(model, ec);
    const std::size_t m = identity_mismatches(engine, model, 10, 12, false);
    std::printf("batched + autotuned: %zu/10 mismatches\n", m);
    int8_identity_mismatches += m;
    tuner_stats = GemmTuner::instance().stats();
    GemmTuner::instance().save("BENCH_gemm_tune_cache.json");
  }
  model.prepare_decode_quant(WeightFormat::kF32);

  // --- persist the tuner cache + metrics ------------------------------------
  std::printf("\ntuner (autotuned engine run): %llu lookups, %llu shapes "
              "tuned, %llu cached\n",
              static_cast<unsigned long long>(tuner_stats.lookups),
              static_cast<unsigned long long>(tuner_stats.tunes),
              static_cast<unsigned long long>(tuner_stats.entries));
  std::printf("wrote BENCH_gemm_tune_cache.json\n");
  GemmTuner::instance().configure({});

  bench::write_bench_json(
      "BENCH_gemm.json",
      {{"autotune_speedup", autotune_speedup},
       {"mlp_autotune_speedup", mlp_autotune_speedup},
       {"fp32_autotune_speedup", fp32_autotune_speedup},
       {"int8_decode_speedup", int8_decode_speedup},
       {"predict_error_median", predict_error_median},
       {"predict_error_worst", worst_err},
       {"int8_logit_max_abs_err", int8_logit_max_abs_err},
       {"int8_argmax_agreement",
        static_cast<double>(argmax_agree) / static_cast<double>(steps)},
       {"int8_identity_mismatches",
        static_cast<double>(int8_identity_mismatches)},
       {"tuner_shapes_cached", static_cast<double>(tuner_stats.entries)}});
  return 0;
}
