// Regenerates Fig. 2: the anatomy of one transformer layer in each family —
// parameter and FLOP counts per component for the 1.7B models at sequence
// length 2048 and batch 16, from the analytic kernel inventory.

#include "bench_util.h"
#include "simfrontier/kernel_model.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header(
      "Fig. 2", "Transformer layer of GPT-NeoX and LLaMA (1.7B, T=2048, B=16)");
  KernelModel km((Platform()));
  for (auto arch : {ArchFamily::kNeoX, ArchFamily::kLLaMA}) {
    const auto m = ModelDesc::matgpt_1_7b(arch);
    bench::print_section(std::string(nn::arch_name(arch)) + " layer");
    std::printf("norms: %s | MLP: %s\n",
                arch == ArchFamily::kNeoX ? "LayerNorm x2"
                                          : "RMSNorm x2",
                arch == ArchFamily::kNeoX
                    ? "2 linears, GELU (h -> 4h -> h)"
                    : "3 linears, SiLU gate (h -> 8h/3 x2 -> h)");
    std::printf("layer parameters: %.2fM   layer forward FLOPs: %.1f GF\n",
                m.layer_params() / 1e6,
                m.layer_forward_flops(16 * 2048, 2048) / 1e9);
    const auto kernels =
        km.layer_forward(m, 16, 2048, AttentionImpl::kMaterialized);
    TablePrinter table({"op", "GFLOPs", "MB moved", "time share"});
    const double total = total_seconds(kernels);
    for (const auto& [name, agg] : aggregate_by_name(kernels)) {
      table.add_row({name, TablePrinter::fmt(agg.flops / 1e9, 2),
                     TablePrinter::fmt(agg.bytes / 1e6, 1),
                     TablePrinter::fmt_percent(agg.seconds / total)});
    }
    std::printf("%s", table.render().c_str());
  }

  bench::print_section("controlled-comparison check");
  const auto neox = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto llama = ModelDesc::matgpt_1_7b(ArchFamily::kLLaMA);
  std::printf(
      "attention blocks identical by construction; params ratio %.3f, "
      "FLOPs ratio %.3f (paper: approximately equal)\n",
      static_cast<double>(neox.layer_params()) / llama.layer_params(),
      neox.layer_forward_flops(16 * 2048, 2048) /
          llama.layer_forward_flops(16 * 2048, 2048));
  return 0;
}
