// Regenerates Fig. 9: the OmniTrace-style runtime and GPU power trace of one
// distributed training step of MatGPT 6.7B with ZeRO stage 1 on 256 GCDs,
// including the zoom-in on one layer's forward operations.
//
// Paper: the forward pass walks 32 layers each dominated by the flash
// attention kernel; the backward's allreduce takes significant time; power
// is high during compute and drops during communication.

#include "bench_util.h"
#include "simfrontier/trace.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  bench::print_header("Fig. 9",
                      "One training step: runtime + power trace (6.7B ZeRO-1)");
  TrainingSimulator sim((Platform()));
  const auto model = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const ParallelConfig parallel{256, 1, 1, true};
  const auto trace = StepTrace::build(sim, model, parallel, 8192, 2048,
                                      AttentionImpl::kFlashV2);

  bench::print_section("step phases");
  double fwd_end = 0.0, bwd_end = 0.0;
  for (const auto& e : trace.events()) {
    if (e.name.rfind("lm_head", 0) == 0 || e.name.rfind("loss", 0) == 0) {
      fwd_end = std::max(fwd_end, e.end_s());
    }
    if (e.name == "zero1_reduce_scatter") bwd_end = e.end_s();
  }
  std::printf("step duration: %.3f s (forward ~%.3f s)\n",
              trace.duration_s(), fwd_end);
  std::printf("events in timeline: %zu\n", trace.events().size());
  (void)bwd_end;

  bench::print_section("zoom-in: forward operations of one layer (L0)");
  TablePrinter zoom({"op", "start (ms)", "duration (ms)", "class"});
  for (const auto& e : trace.events()) {
    if (e.name.rfind("L0.", 0) != 0) continue;
    if (e.name.find("_bwd") != std::string::npos) continue;
    const char* cls = e.cls == KernelClass::kCompute ? "compute"
                      : e.cls == KernelClass::kComm  ? "comm"
                                                     : "io";
    zoom.add_row({e.name.substr(3), TablePrinter::fmt(e.start_s * 1e3, 3),
                  TablePrinter::fmt(e.duration_s * 1e3, 3), cls});
  }
  std::printf("%s", zoom.render().c_str());
  // The dominant in-layer kernel, as in the paper's zoom (flash attention).
  double best = 0.0;
  std::string dominant;
  for (const auto& e : trace.events()) {
    if (e.name.rfind("L0.", 0) == 0 &&
        e.name.find("_bwd") == std::string::npos && e.duration_s > best) {
      best = e.duration_s;
      dominant = e.name.substr(3);
    }
  }
  std::printf("dominant forward kernel in the layer: %s\n", dominant.c_str());

  bench::print_section("communication events");
  for (const auto& e : trace.events()) {
    if (e.cls == KernelClass::kComm && e.name.rfind("L", 0) != 0) {
      std::printf("  %-24s %.3f s\n", e.name.c_str(), e.duration_s);
    }
  }

  bench::print_section("per-MI250X power trace (sampled)");
  const auto power = trace.power_trace(trace.duration_s() / 60.0, GcdSpec{});
  std::printf("t(ms):power(W) ");
  for (std::size_t i = 0; i < power.size(); i += 6) {
    std::printf("%.0f:%.0f ", power[i].t_s * 1e3, power[i].value);
  }
  std::printf("\n");
  double lo = 1e9, hi = 0.0, mean = 0.0;
  for (const auto& s : power) {
    lo = std::min(lo, s.value);
    hi = std::max(hi, s.value);
    mean += s.value;
  }
  mean /= static_cast<double>(power.size());
  std::printf(
      "power min/mean/max: %.0f / %.0f / %.0f W per MI250X — high during "
      "compute, dips during the allreduce (paper's oscillation)\n",
      lo, mean, hi);
  return 0;
}
