// Regenerates Table II: the MatGPT architecture grid, with parameter counts
// recomputed from the analytic model (validated in tests against the real
// nn::GptModel) rather than copied.

#include "bench_util.h"
#include "simfrontier/model_desc.h"

using namespace matgpt;

int main() {
  bench::print_header("Table II",
                      "Model architectures and data tokenization");
  TablePrinter table({"MatGPT Arch", "#parameters", "hidden-size", "#layers",
                      "#heads", "head-dim", "tokenizer", "vocab-size"});
  for (const auto& spec : core::table2_specs()) {
    const auto arch = std::string(spec.arch) == "LLaMA"
                          ? nn::ArchFamily::kLLaMA
                          : nn::ArchFamily::kNeoX;
    const sim::ModelDesc desc{arch, spec.hidden, spec.n_layers, spec.n_heads,
                              52000};
    char params[32];
    std::snprintf(params, sizeof(params), "%.2fB",
                  static_cast<double>(desc.params()) / 1e9);
    table.add_row({spec.arch, params, TablePrinter::fmt_int(spec.hidden),
                   TablePrinter::fmt_int(spec.n_layers),
                   TablePrinter::fmt_int(spec.n_heads),
                   TablePrinter::fmt_int(spec.head_dim), spec.tokenizer,
                   spec.vocab});
  }
  std::printf("%s", table.render().c_str());

  bench::print_section("per-layer parity check (Fig. 2 premise)");
  const auto neox = sim::ModelDesc::matgpt_1_7b(nn::ArchFamily::kNeoX);
  const auto llama = sim::ModelDesc::matgpt_1_7b(nn::ArchFamily::kLLaMA);
  std::printf(
      "1.7B layer params: NeoX %.2fM vs LLaMA %.2fM (ratio %.3f)\n",
      neox.layer_params() / 1e6, llama.layer_params() / 1e6,
      static_cast<double>(neox.layer_params()) / llama.layer_params());
  std::printf(
      "1.7B layer fwd FLOPs (B=16, T=2048): NeoX %.2f GF vs LLaMA %.2f GF\n",
      neox.layer_forward_flops(16 * 2048, 2048) / 1e9,
      llama.layer_forward_flops(16 * 2048, 2048) / 1e9);
  return 0;
}
