// Regenerates Fig. 1: major LLM releases per architecture branch per year
// (2018–2023), aggregated from a curated release list rather than hardcoded
// counts. The paper's observation: encoder-only dominates 2018–2019;
// decoder-only (GPT) dominates from 2021.

#include <map>

#include "bench_util.h"

using namespace matgpt;

namespace {
enum class Branch { kEncoderOnly, kEncoderDecoder, kDecoderOnly };

struct Release {
  const char* name;
  int year;
  Branch branch;
};

// Curated from the survey the paper cites (Yang et al., "Harnessing the
// power of LLMs in practice") — major model releases only.
constexpr Release kReleases[] = {
    {"ELMo", 2018, Branch::kEncoderOnly},
    {"BERT", 2018, Branch::kEncoderOnly},
    {"GPT-1", 2018, Branch::kDecoderOnly},
    {"GPT-2", 2019, Branch::kDecoderOnly},
    {"RoBERTa", 2019, Branch::kEncoderOnly},
    {"ALBERT", 2019, Branch::kEncoderOnly},
    {"XLNet", 2019, Branch::kEncoderOnly},
    {"ERNIE", 2019, Branch::kEncoderOnly},
    {"T5", 2019, Branch::kEncoderDecoder},
    {"BART", 2019, Branch::kEncoderDecoder},
    {"ELECTRA", 2020, Branch::kEncoderOnly},
    {"DeBERTa", 2020, Branch::kEncoderOnly},
    {"GPT-3", 2020, Branch::kDecoderOnly},
    {"mT5", 2020, Branch::kEncoderDecoder},
    {"GPT-Neo", 2021, Branch::kDecoderOnly},
    {"GPT-J", 2021, Branch::kDecoderOnly},
    {"Jurassic-1", 2021, Branch::kDecoderOnly},
    {"Gopher", 2021, Branch::kDecoderOnly},
    {"ERNIE-3", 2021, Branch::kEncoderOnly},
    {"Switch", 2021, Branch::kEncoderDecoder},
    {"GPT-NeoX", 2022, Branch::kDecoderOnly},
    {"PaLM", 2022, Branch::kDecoderOnly},
    {"OPT", 2022, Branch::kDecoderOnly},
    {"BLOOM", 2022, Branch::kDecoderOnly},
    {"Chinchilla", 2022, Branch::kDecoderOnly},
    {"GLM", 2022, Branch::kDecoderOnly},
    {"UL2", 2022, Branch::kEncoderDecoder},
    {"Flan-T5", 2022, Branch::kEncoderDecoder},
    {"LLaMA", 2023, Branch::kDecoderOnly},
    {"GPT-4", 2023, Branch::kDecoderOnly},
    {"Falcon", 2023, Branch::kDecoderOnly},
    {"LLaMA-2", 2023, Branch::kDecoderOnly},
    {"Claude", 2023, Branch::kDecoderOnly},
    {"PaLM-2", 2023, Branch::kDecoderOnly},
};

const char* branch_name(Branch b) {
  switch (b) {
    case Branch::kEncoderOnly:
      return "encoder-only";
    case Branch::kEncoderDecoder:
      return "encoder-decoder";
    case Branch::kDecoderOnly:
      return "decoder-only";
  }
  return "?";
}
}  // namespace

int main() {
  bench::print_header("Fig. 1", "Evolution of LLM architecture since 2018");
  std::map<int, std::map<Branch, int>> counts;
  for (const auto& r : kReleases) ++counts[r.year][r.branch];

  TablePrinter table({"year", "encoder-only", "encoder-decoder",
                      "decoder-only", "dominant"});
  for (auto& [year, by_branch] : counts) {
    Branch top = Branch::kEncoderOnly;
    int best = -1;
    for (auto b : {Branch::kEncoderOnly, Branch::kEncoderDecoder,
                   Branch::kDecoderOnly}) {
      if (by_branch[b] > best) {
        best = by_branch[b];
        top = b;
      }
    }
    table.add_row({TablePrinter::fmt_int(year),
                   TablePrinter::fmt_int(by_branch[Branch::kEncoderOnly]),
                   TablePrinter::fmt_int(by_branch[Branch::kEncoderDecoder]),
                   TablePrinter::fmt_int(by_branch[Branch::kDecoderOnly]),
                   branch_name(top)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper observation: decoder-only (GPT) dominates from 2021 — %s\n",
      counts[2021][Branch::kDecoderOnly] >
              counts[2021][Branch::kEncoderOnly]
          ? "reproduced"
          : "NOT reproduced");
  return 0;
}
