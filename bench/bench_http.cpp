// HTTP front end under load: goodput-under-SLO over real loopback sockets.
//
// Stands up the full serving deployment shape — engine worker thread +
// epoll HTTP server — and drives it with the socket-level load harness:
//
//   1. identity: tokens streamed over HTTP (chunked transfer encoding)
//      must be byte-identical to an in-process run_trace with the same
//      seeds. The transport is not allowed to perturb the engine.
//   2. closed-loop calibration: fixed concurrency measures the server's
//      capacity (completions per second when the client waits politely).
//   3. open-loop sweep: Poisson arrivals (seeded, deterministic schedule)
//      at fractions of that capacity. Open-loop clients do not slow down
//      when the server does — past the knee the admission queue fills,
//      try_submit sheds to 429, and goodput-under-SLO stops tracking the
//      offered rate. A closed-loop harness structurally cannot show this.
//
// Acceptance gate: zero identity mismatches, p99 TTFT at the 0.7x-capacity
// target load inside the SLO (ttft_headroom >= 1), and target-load goodput
// >= 50% of calibrated capacity.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/trace.h"

using namespace matgpt;
using Clock = std::chrono::steady_clock;

namespace {

constexpr double kSloTtftMs = 500.0;

serve::TraceSpec bench_spec(std::size_t n, std::uint64_t seed) {
  serve::TraceSpec spec;
  spec.n_requests = n;
  spec.vocab_size = 8192;
  spec.prompt_len_min = 16;
  spec.prompt_len_max = 48;
  spec.max_new_min = 8;
  spec.max_new_max = 24;
  spec.seed = seed;
  return spec;
}

/// Re-number a trace into its own id block so concurrently-live sweeps
/// can never collide on the server's stream table.
std::vector<serve::Request> with_id_block(std::vector<serve::Request> trace,
                                          std::uint64_t block) {
  for (auto& req : trace) req.id += block * 100000;
  return trace;
}

}  // namespace

int main() {
  bench::print_header("BENCH http",
                      "epoll HTTP front end: streaming identity, capacity, "
                      "open-loop goodput knee");

  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 8192;
  c.hidden = 256;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.max_seq = 128;
  nn::GptModel model(c);

  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.kv_slots = 8;
  ec.queue_capacity = 16;  // small on purpose: overload must shed, not buffer

  // Byte-identity reference: the same trace, in process, no sockets.
  const auto identity_trace = serve::synth_trace(bench_spec(24, 0x11));
  std::vector<serve::RequestResult> reference;
  {
    serve::InferenceEngine ref_engine(model, ec);
    reference = ref_engine.run_trace(identity_trace);
  }

  serve::InferenceEngine engine(model, ec);
  engine.start();
  net::HttpServer server(engine);
  server.start();
  std::printf("server: 127.0.0.1:%u, engine max_batch %lld, queue %zu\n\n",
              server.port(), static_cast<long long>(ec.max_batch),
              ec.queue_capacity);

  net::LoadGenConfig lg;
  lg.port = server.port();

  // --- 1. streaming byte-identity over real sockets --------------------
  bench::print_section("streamed-token identity vs run_trace");
  std::uint64_t identity_mismatches = 0;
  {
    net::LoadGenConfig cfg = lg;
    cfg.concurrency = 3;
    const auto report = net::LoadGen(cfg).run_closed(identity_trace);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto& ref = reference[i];
      const net::LoadRecord* rec = nullptr;
      for (const auto& r : report.records) {
        if (r.id == ref.id) rec = &r;
      }
      const std::vector<std::int32_t> expect(
          ref.tokens.end() - ref.generated_tokens, ref.tokens.end());
      if (rec == nullptr || rec->http_status != 200 ||
          rec->tokens != expect) {
        ++identity_mismatches;
      }
    }
    std::printf("%zu requests streamed, %llu token-sequence mismatches\n",
                identity_trace.size(),
                static_cast<unsigned long long>(identity_mismatches));
  }

  // --- 2. closed-loop capacity calibration ----------------------------
  bench::print_section("closed-loop capacity (concurrency = max_batch)");
  double capacity_rps = 0.0;
  double closed_p99_ttft_ms = 0.0;
  {
    const auto trace =
        with_id_block(serve::synth_trace(bench_spec(64, 0x22)), 1);
    net::LoadGenConfig cfg = lg;
    cfg.concurrency = static_cast<std::size_t>(ec.max_batch);
    for (int rep = 0; rep < 2; ++rep) {  // best of 2: warmup + measure
      const auto report = net::LoadGen(cfg).run_closed(
          with_id_block(trace, static_cast<std::uint64_t>(rep + 1)));
      const double rps =
          static_cast<double>(report.completed_ok) / report.wall_s;
      if (rps > capacity_rps) {
        capacity_rps = rps;
        closed_p99_ttft_ms = report.ttft_quantile(0.99) * 1e3;
      }
    }
    std::printf("capacity: %.1f req/s, closed-loop p99 TTFT %.1f ms\n",
                capacity_rps, closed_p99_ttft_ms);
  }

  // --- 3. open-loop Poisson sweep -------------------------------------
  bench::print_section("open-loop sweep (Poisson arrivals, seed 42)");
  const double fractions[] = {0.4, 0.7, 1.0, 1.6};
  const std::size_t kTargetIdx = 1;  // 0.7x capacity: the SLO operating point
  const std::size_t kOverloadIdx = 3;
  struct SweepPoint {
    double offered_rps = 0.0;
    double goodput_rps = 0.0;
    double p99_ttft_ms = 0.0;
    double shed_rate = 0.0;
  };
  std::vector<SweepPoint> sweep;
  std::printf("  offered    goodput   p99 TTFT   shed\n");
  for (std::size_t s = 0; s < std::size(fractions); ++s) {
    const double rate = fractions[s] * capacity_rps;
    const std::size_t n = 64;
    const auto trace =
        with_id_block(serve::synth_trace(bench_spec(n, 0x33)), 10 + s);
    const auto schedule = net::poisson_schedule(n, rate, 42);
    const auto report = net::LoadGen(lg).run_open(trace, schedule);
    SweepPoint pt;
    pt.offered_rps = rate;
    pt.goodput_rps = report.goodput_rps(kSloTtftMs);
    pt.p99_ttft_ms = report.ttft_quantile(0.99) * 1e3;
    pt.shed_rate = report.shed_rate();
    sweep.push_back(pt);
    std::printf("  %5.1f/s  %6.1f/s  %7.1f ms  %4.1f%%%s\n", pt.offered_rps,
                pt.goodput_rps, pt.p99_ttft_ms, 100.0 * pt.shed_rate,
                s == kTargetIdx ? "   <- target load" : "");
  }

  server.stop();
  engine.drain();

  const SweepPoint& target = sweep[kTargetIdx];
  const SweepPoint& overload = sweep[kOverloadIdx];
  const double ttft_headroom =
      target.p99_ttft_ms > 0.0 ? kSloTtftMs / target.p99_ttft_ms : 0.0;
  const double goodput_capacity_ratio =
      capacity_rps > 0.0 ? target.goodput_rps / capacity_rps : 0.0;

  std::printf("\ntarget load (%.0f%% capacity): p99 TTFT %.1f ms vs %.0f ms "
              "SLO -> headroom %.2fx\n",
              100.0 * fractions[kTargetIdx], target.p99_ttft_ms, kSloTtftMs,
              ttft_headroom);
  std::printf("goodput at target: %.1f/s = %.2fx capacity\n",
              target.goodput_rps, goodput_capacity_ratio);
  std::printf("overload (%.1fx capacity): goodput %.1f/s, shed %.1f%%, "
              "p99 TTFT %.1f ms — the open-loop knee\n",
              fractions[kOverloadIdx], overload.goodput_rps,
              100.0 * overload.shed_rate, overload.p99_ttft_ms);

  bench::write_bench_json(
      "BENCH_http.json",
      {{"identity_mismatches", static_cast<double>(identity_mismatches)},
       {"ttft_headroom", ttft_headroom},
       {"goodput_capacity_ratio", goodput_capacity_ratio},
       {"capacity_rps", capacity_rps},
       {"closed_p99_ttft_ms", closed_p99_ttft_ms},
       {"target_offered_rps", target.offered_rps},
       {"target_goodput_rps", target.goodput_rps},
       {"target_p99_ttft_ms", target.p99_ttft_ms},
       {"overload_offered_rps", overload.offered_rps},
       {"overload_goodput_rps", overload.goodput_rps},
       {"overload_shed_rate", overload.shed_rate},
       {"overload_p99_ttft_ms", overload.p99_ttft_ms},
       {"slo_ttft_ms", kSloTtftMs}});

  // Goodput divides by the full wall clock including the post-arrival
  // drain tail, so at 0.7x offered load ~0.55x capacity is the honest
  // sustained figure for a short run; 0.5 is the sanity floor (the CI
  // baseline comparison is the tight regression gate).
  const bool pass = identity_mismatches == 0 && ttft_headroom >= 1.0 &&
                    goodput_capacity_ratio >= 0.5;
  std::printf("\n%s: HTTP serving %s the identity + p99-TTFT-under-SLO + "
              "goodput gate\n",
              pass ? "PASS" : "FAIL", pass ? "clears" : "misses");
  return pass ? 0 : 1;
}
