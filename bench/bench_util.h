#pragma once
// Shared bench scaffolding: headers that tie each binary to its paper
// artefact, and a training fixture reused by the "real experiment" benches
// (Figs. 13–17, Table V) so they all see the same corpus and recipe.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/study.h"
#include "nn/bert.h"
#include "nn/serialize.h"

namespace matgpt::bench {

inline void print_header(const std::string& artefact,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artefact.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void print_section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Emit a flat {"metric": value, ...} JSON file so CI and tooling can track
/// bench results without scraping stdout. Values print with enough digits to
/// round-trip a double.
inline void write_bench_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.17g%s\n", metrics[i].first.c_str(),
                 metrics[i].second, i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Standard scaled-down study configuration shared by the real-experiment
/// benches. One instance trains everything it is asked for on the same
/// screened corpus (the controlled-comparison requirement).
inline core::StudyConfig default_study_config() {
  core::StudyConfig sc;
  sc.corpus_scale = 4e-5;  // ~1100 documents
  sc.n_materials = 400;
  sc.seq = 48;
  sc.steps = 160;
  sc.seed = 2024;
  // Benches sharing an experiment spec reload the checkpoint instead of
  // retraining (delete the directory to force fresh runs).
  sc.cache_dir = ".matgpt_bench_cache";
  std::filesystem::create_directories(sc.cache_dir);
  return sc;
}

/// Train the MatSciBERT stand-in on the study's screened corpus (cached on
/// disk alongside the GPT experiments).
inline std::shared_ptr<nn::BertEncoder> train_bert_standin(
    core::ComparativeStudy& study, const tok::BpeTokenizer& tokenizer) {
  nn::BertConfig bc;
  bc.vocab_size = tokenizer.vocab_size();
  bc.hidden = 48;  // smaller than the GPTs, like MatSciBERT vs MatGPT
  bc.n_layers = 2;
  bc.n_heads = 2;
  bc.max_seq = study.config().seq;
  auto bert = std::make_shared<nn::BertEncoder>(bc);
  // MLM gets gradient signal on ~15% of positions per step, so the BERT
  // stand-in trains 2x longer than the causal models.
  const std::int64_t bert_steps = 2 * study.config().steps;

  const std::string cache = study.config().cache_dir.empty()
                                ? std::string{}
                                : study.config().cache_dir + "/bert-" +
                                      std::to_string(bc.vocab_size) + "-" +
                                      std::to_string(bert_steps) + ".ckpt";
  if (!cache.empty() && std::filesystem::exists(cache)) {
    try {
      nn::load_parameters_file(*bert, cache);
      return bert;
    } catch (const Error&) {
      // stale cache: fall through and retrain
    }
  }
  data::TokenDataset ds(study.screened_corpus(), tokenizer, 0.1,
                        study.config().seed ^ 0xbe27ULL);
  core::TrainConfig tc;
  tc.steps = bert_steps;
  tc.batch_seqs = 8;
  tc.seq = study.config().seq;
  tc.lr = 2e-3;
  core::train_bert(*bert, ds, tc);
  if (!cache.empty()) nn::save_parameters_file(*bert, cache);
  return bert;
}

}  // namespace matgpt::bench
