#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json files against committed baselines.

The serving benches emit flat {"metric": value} JSON files. CI runs them
with continue-on-error (absolute throughput is noisy on shared runners),
then runs this script as a HARD step: it checks only the ratio metrics
listed in bench/baselines/gates.json, which divide out machine speed, and
fails on a >tolerance regression vs the committed baseline.

Usage:
    python3 bench/compare_baselines.py --results-dir build \
        [--baselines-dir bench/baselines]

Exit status: 0 when every gate holds, 1 otherwise. A bench that produced no
results file fails its gates (the bench crashed before writing JSON).
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as exc:
        print(f"  cannot read {path}: {exc}")
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", required=True,
                        help="directory holding the BENCH_*.json files the "
                             "benches just wrote")
    parser.add_argument("--baselines-dir", default="bench/baselines",
                        help="directory with committed baselines + gates.json")
    args = parser.parse_args()

    manifest = load_json(os.path.join(args.baselines_dir, "gates.json"))
    if manifest is None:
        print("FAIL: gates manifest missing or unreadable")
        return 1
    tolerance = float(manifest.get("tolerance", 0.30))

    failures = 0
    checked = 0
    results_cache = {}
    baselines_cache = {}
    for gate in manifest["gates"]:
        fname, metric = gate["file"], gate["metric"]
        if fname not in results_cache:
            results_cache[fname] = load_json(
                os.path.join(args.results_dir, fname))
        if fname not in baselines_cache:
            baselines_cache[fname] = load_json(
                os.path.join(args.baselines_dir, fname))
        current_doc, baseline_doc = results_cache[fname], baselines_cache[fname]
        label = f"{fname}:{metric}"
        checked += 1
        if current_doc is None:
            print(f"FAIL  {label}: no results file (bench crashed?)")
            failures += 1
            continue
        if baseline_doc is None or metric not in baseline_doc:
            print(f"FAIL  {label}: no committed baseline")
            failures += 1
            continue
        if metric not in current_doc:
            print(f"FAIL  {label}: metric missing from results")
            failures += 1
            continue
        current = float(current_doc[metric])
        baseline = float(baseline_doc[metric])
        if "exact_max" in gate:
            bound = float(gate["exact_max"])
            ok = current <= bound
            detail = f"current {current:g} (must be <= {bound:g})"
        else:
            floor = baseline * (1.0 - tolerance)
            ok = current >= floor
            detail = (f"current {current:.4g} vs baseline {baseline:.4g} "
                      f"(floor {floor:.4g})")
        print(f"{'ok   ' if ok else 'FAIL '} {label}: {detail}")
        failures += 0 if ok else 1

    print(f"\n{checked - failures}/{checked} bench gates hold "
          f"(tolerance {tolerance:.0%})")
    if failures:
        print("FAIL: bench regression vs committed baselines — if the change "
              "is intentional, refresh bench/baselines/*.json")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
