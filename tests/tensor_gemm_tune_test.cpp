// Unit tests for src/tensor/gemm_tune + the quantized decode path: every
// kernel variant is byte-identical to the reference tiling (the invariant
// that makes autotuning safe), the tuner cache keys/evicts/persists
// correctly and survives concurrent lookups, quantized sidecars stay
// within their accuracy bounds, and the serving engine's decode_quant mode
// is token-identical to batch-1 generate_cached under the same format —
// including speculative decoding and chunked prefill.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/spec/proposer.h"
#include "serve/trace.h"
#include "tensor/gemm_tune.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace matgpt {
namespace {

using gemm_tune::GemmTuner;
using kernels::GemmVariant;
using kernels::WeightFormat;

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> m(static_cast<std::size_t>(rows * cols));
  for (float& v : m) v = dist(gen);
  return m;
}

/// Restores the process-global tuner to kOff when a test scope ends, so no
/// test leaks tuner state into another.
struct TunerGuard {
  ~TunerGuard() { GemmTuner::instance().configure({}); }
};

// ---------------------------------------------------------------------------
// Variant byte identity: the invariant the whole tuner rests on
// ---------------------------------------------------------------------------

TEST(GemmVariants, F32AllTilingsMatchReferenceBytes) {
  const struct {
    std::int64_t m, n, k;
  } shapes[] = {{1, 8, 16},    {3, 17, 5},   {7, 64, 33},
                {8, 512, 256}, {13, 100, 70}, {33, 24, 40}};
  const GemmVariant variants[] = {{1, 128},  {2, 256}, {4, 4096},
                                  {8, 512},  {16, 64}, {32, 1024}};
  for (const auto& s : shapes) {
    const auto a = random_matrix(s.m, s.k, 1);
    const auto b = random_matrix(s.k, s.n, 2);
    for (const bool accumulate : {false, true}) {
      std::vector<float> ref(static_cast<std::size_t>(s.m * s.n), 0.5f);
      std::vector<float> got = ref;
      kernels::gemm_nn(a.data(), b.data(), ref.data(), s.m, s.n, s.k,
                       accumulate);
      for (const auto& v : variants) {
        std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.5f);
        kernels::gemm_nn_variant(a.data(), b.data(), c.data(), s.m, s.n, s.k,
                                 accumulate, v);
        ASSERT_EQ(0, std::memcmp(ref.data(), c.data(),
                                 c.size() * sizeof(float)))
            << s.m << "x" << s.n << "x" << s.k << " mr=" << v.mr
            << " nc=" << v.nc << " acc=" << accumulate;
        (void)got;
      }
    }
  }
}

TEST(GemmVariants, QuantTilingsMatchEachOtherBytes) {
  const struct {
    std::int64_t m, n, k;
  } shapes[] = {{1, 50, 16}, {4, 33, 20}, {8, 128, 64}, {5, 17, 9}};
  const GemmVariant variants[] = {{1, 128}, {2, 4096}, {4, 256}, {8, 512}};
  for (const auto format : {WeightFormat::kBf16, WeightFormat::kInt8}) {
    for (const auto& s : shapes) {
      const auto a = random_matrix(s.m, s.k, 3);
      const auto w = random_matrix(s.k, s.n, 4);
      const auto qw = gemm_tune::quantize_weights(w.data(), s.k, s.n, format);
      std::vector<float> ref(static_cast<std::size_t>(s.m * s.n));
      bool have_ref = false;
      for (const auto& v : variants) {
        std::vector<float> c(static_cast<std::size_t>(s.m * s.n), -7.0f);
        if (format == WeightFormat::kBf16) {
          kernels::gemm_nn_bf16(a.data(), qw.bf16.data(), c.data(), s.m, s.n,
                                s.k, v);
        } else {
          kernels::gemm_nn_int8(a.data(), qw.q8.data(), qw.scale.data(),
                                c.data(), s.m, s.n, s.k, v);
        }
        if (!have_ref) {
          ref = c;
          have_ref = true;
        } else {
          ASSERT_EQ(0, std::memcmp(ref.data(), c.data(),
                                   c.size() * sizeof(float)))
              << kernels::format_name(format) << " " << s.m << "x" << s.n
              << "x" << s.k << " mr=" << v.mr << " nc=" << v.nc;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Quantization round-trip accuracy
// ---------------------------------------------------------------------------

TEST(QuantizeWeights, Int8RoundTripWithinHalfScalePerElement) {
  const std::int64_t k = 37, n = 23;
  const auto w = random_matrix(k, n, 5);
  const auto qw = gemm_tune::quantize_weights(w.data(), k, n,
                                              WeightFormat::kInt8);
  ASSERT_EQ(qw.scale.size(), static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float back = static_cast<float>(qw.q8[i * n + j]) * qw.scale[j];
      EXPECT_NEAR(back, w[i * n + j], 0.5f * qw.scale[j] + 1e-7f)
          << i << "," << j;
    }
  }
}

TEST(QuantizeWeights, Bf16RoundTripWithinRelativeUlp) {
  const std::int64_t k = 19, n = 31;
  const auto w = random_matrix(k, n, 6);
  const auto qw = gemm_tune::quantize_weights(w.data(), k, n,
                                              WeightFormat::kBf16);
  for (std::size_t i = 0; i < w.size(); ++i) {
    float back;
    const std::uint32_t bits = static_cast<std::uint32_t>(qw.bf16[i]) << 16;
    std::memcpy(&back, &bits, sizeof(back));
    // bf16 keeps 8 mantissa bits: relative error <= 2^-8 after rounding.
    EXPECT_NEAR(back, w[i], std::abs(w[i]) * (1.0f / 256.0f) + 1e-38f) << i;
  }
}

TEST(QuantizeWeights, Int8ZeroColumnGetsUnitScale) {
  std::vector<float> w(8 * 2, 0.0f);
  for (int i = 0; i < 8; ++i) w[i * 2 + 1] = 0.5f;  // column 0 all-zero
  const auto qw = gemm_tune::quantize_weights(w.data(), 8, 2,
                                              WeightFormat::kInt8);
  EXPECT_EQ(qw.scale[0], 1.0f);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(qw.q8[i * 2 + 0], 0);
}

// ---------------------------------------------------------------------------
// Cost model + candidate space
// ---------------------------------------------------------------------------

TEST(CostModel, PredictionsArePositiveAndShapeMonotone) {
  const auto& anchors = gemm_tune::host_anchors();
  const GemmVariant v = kernels::gemm_default_variant();
  const double small =
      gemm_tune::predict_seconds(1, 256, 256, WeightFormat::kF32, v, anchors);
  const double big =
      gemm_tune::predict_seconds(64, 2048, 2048, WeightFormat::kF32, v,
                                 anchors);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, 64.0 * small);  // 512x the FLOPs, allow model slack
}

TEST(CandidateSpace, ContainsDefaultAndDeduplicates) {
  for (const auto format : {WeightFormat::kF32, WeightFormat::kInt8}) {
    const auto cands = gemm_tune::candidate_space(1, 50, 16, format);
    ASSERT_FALSE(cands.empty());
    EXPECT_TRUE(cands[0] == kernels::gemm_default_variant());
    // m = 1: every mr collapses onto the same single-row decomposition, and
    // n = 50 < every nc: the space must collapse accordingly.
    EXPECT_LE(cands.size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Tuner cache behaviour
// ---------------------------------------------------------------------------

TEST(GemmTuner, CachesPerShapeAndFormat) {
  TunerGuard guard;
  GemmTuner::Config cfg;
  cfg.mode = GemmTuner::Mode::kModel;  // deterministic, no timing
  GemmTuner::instance().configure(cfg);

  const std::int64_t m = 2, n = 48, k = 32;
  const auto a = random_matrix(m, k, 7);
  const auto w = random_matrix(k, n, 8);
  const auto qw = gemm_tune::quantize_weights(w.data(), k, n,
                                              WeightFormat::kInt8);
  std::vector<float> c(static_cast<std::size_t>(m * n));

  GemmTuner::instance().gemm(a.data(), w.data(), nullptr, c.data(), m, n, k,
                             false);
  GemmTuner::instance().gemm(a.data(), w.data(), nullptr, c.data(), m, n, k,
                             false);
  GemmTuner::instance().gemm(a.data(), w.data(), &qw, c.data(), m, n, k,
                             false);

  const auto stats = GemmTuner::instance().stats();
  if (kernels::gemm_simd_active()) {
    EXPECT_EQ(stats.lookups, 3u);
    EXPECT_EQ(stats.hits, 1u);    // second f32 call
    EXPECT_EQ(stats.tunes, 2u);   // f32 entry + int8 entry
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_TRUE(GemmTuner::instance()
                    .peek(m, n, k, WeightFormat::kF32)
                    .has_value());
    EXPECT_TRUE(GemmTuner::instance()
                    .peek(m, n, k, WeightFormat::kInt8)
                    .has_value());
    EXPECT_FALSE(GemmTuner::instance()
                     .peek(m, n, k, WeightFormat::kBf16)
                     .has_value());
  }
  EXPECT_EQ(stats.f32_calls, 2u);
  EXPECT_EQ(stats.int8_calls, 1u);
}

TEST(GemmTuner, EvictsLeastRecentlyUsedAtCapacity) {
  if (!kernels::gemm_simd_active()) GTEST_SKIP() << "portable build";
  TunerGuard guard;
  GemmTuner::Config cfg;
  cfg.mode = GemmTuner::Mode::kModel;
  cfg.max_entries = 3;
  GemmTuner::instance().configure(cfg);

  const auto a = random_matrix(4, 64, 9);
  const auto w = random_matrix(64, 64, 10);
  std::vector<float> c(4 * 64);
  // Shapes keyed by m: 1..3 fill the cache; re-touch m=1 so m=2 is LRU.
  for (const std::int64_t m : {1, 2, 3, 1}) {
    GemmTuner::instance().gemm(a.data(), w.data(), nullptr, c.data(), m, 64,
                               64, false);
  }
  GemmTuner::instance().gemm(a.data(), w.data(), nullptr, c.data(), 4, 64, 64,
                             false);
  const auto stats = GemmTuner::instance().stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_TRUE(GemmTuner::instance().peek(1, 64, 64, WeightFormat::kF32));
  EXPECT_FALSE(GemmTuner::instance().peek(2, 64, 64, WeightFormat::kF32));
  EXPECT_TRUE(GemmTuner::instance().peek(4, 64, 64, WeightFormat::kF32));
}

TEST(GemmTuner, ConcurrentLookupsRaceSafely) {
  TunerGuard guard;
  GemmTuner::Config cfg;
  cfg.mode = GemmTuner::Mode::kModel;
  GemmTuner::instance().configure(cfg);

  const auto a = random_matrix(8, 32, 11);
  const auto w = random_matrix(32, 40, 12);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> c(8 * 40);
      for (int i = 0; i < 200; ++i) {
        const std::int64_t m = 1 + (i + t) % 8;  // same 8 shapes, all threads
        GemmTuner::instance().gemm(a.data(), w.data(), nullptr, c.data(), m,
                                   40, 32, false);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = GemmTuner::instance().stats();
  // Portable builds bypass the tuned path entirely (scalar kernel, no
  // lookup), so the cache counters only move with SIMD dispatch active;
  // the concurrent gemm() calls above still exercise thread safety.
  if (kernels::gemm_simd_active()) {
    EXPECT_EQ(stats.lookups, 800u);
    EXPECT_EQ(stats.entries, 8u);
  } else {
    EXPECT_EQ(stats.lookups, 0u);
  }
}

TEST(GemmTuner, SaveLoadRoundTripsVariants) {
  if (!kernels::gemm_simd_active()) GTEST_SKIP() << "portable build";
  TunerGuard guard;
  GemmTuner::Config cfg;
  cfg.mode = GemmTuner::Mode::kModel;
  GemmTuner::instance().configure(cfg);

  const auto a = random_matrix(8, 96, 13);
  const auto w = random_matrix(96, 80, 14);
  std::vector<float> c(8 * 80);
  for (const std::int64_t m : {1, 3, 8}) {
    GemmTuner::instance().gemm(a.data(), w.data(), nullptr, c.data(), m, 80,
                               96, false);
  }
  const auto v1 = GemmTuner::instance().peek(1, 80, 96, WeightFormat::kF32);
  const auto v8 = GemmTuner::instance().peek(8, 80, 96, WeightFormat::kF32);
  ASSERT_TRUE(v1.has_value());
  ASSERT_TRUE(v8.has_value());

  const std::string path =
      (std::filesystem::temp_directory_path() / "matgpt_tune_cache_test.json")
          .string();
  ASSERT_TRUE(GemmTuner::instance().save(path));
  GemmTuner::instance().reset();
  EXPECT_FALSE(GemmTuner::instance().peek(1, 80, 96, WeightFormat::kF32));
  EXPECT_EQ(GemmTuner::instance().load(path), 3u);
  const auto r1 = GemmTuner::instance().peek(1, 80, 96, WeightFormat::kF32);
  const auto r8 = GemmTuner::instance().peek(8, 80, 96, WeightFormat::kF32);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r8.has_value());
  EXPECT_TRUE(*r1 == *v1);
  EXPECT_TRUE(*r8 == *v8);
  std::remove(path.c_str());
  // A missing file loads zero entries without throwing.
  EXPECT_EQ(GemmTuner::instance().load(path), 0u);
}

TEST(GemmTuner, TunedOutputMatchesUntunedBytesThroughOps) {
  TunerGuard guard;
  const auto a_data = random_matrix(5, 24, 15);
  const auto w_data = random_matrix(24, 36, 16);

  auto run = [&](GemmTuner::Mode mode) {
    GemmTuner::Config cfg;
    cfg.mode = mode;
    GemmTuner::instance().configure(cfg);
    Tape tape;
    Var a = tape.leaf(Tensor::from_data({5, 24}, a_data), false);
    Var w = tape.leaf(Tensor::from_data({24, 36}, w_data), false);
    Var y = ops::linear_matmul(tape, a, w, nullptr);
    return std::vector<float>(y.value().data(),
                              y.value().data() + y.value().numel());
  };

  const auto off = run(GemmTuner::Mode::kOff);
  const auto model = run(GemmTuner::Mode::kModel);
  const auto measured = run(GemmTuner::Mode::kMeasure);
  EXPECT_EQ(0, std::memcmp(off.data(), model.data(),
                           off.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(off.data(), measured.data(),
                           off.size() * sizeof(float)));
}

// ---------------------------------------------------------------------------
// Quantized decode accuracy + engine identity
// ---------------------------------------------------------------------------

nn::GptConfig quant_model_config() {
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = 1;
  c.max_seq = 64;
  return c;
}

serve::TraceSpec quant_trace_spec() {
  serve::TraceSpec spec;
  spec.n_requests = 8;
  spec.vocab_size = 50;
  spec.prompt_len_min = 2;
  spec.prompt_len_max = 6;
  spec.max_new_min = 2;
  spec.max_new_max = 8;
  return spec;
}

TEST(DecodeQuant, LogitsStayNearFp32AndGreedyArgmaxAgrees) {
  const nn::GptConfig c = quant_model_config();
  nn::GptModel model(c);
  const std::vector<std::int32_t> prompt{1, 2, 3, 4, 5, 6, 7, 8};
  const int steps = 12;
  auto step_token = [&](int s) {
    return static_cast<std::int32_t>((prompt[s % prompt.size()] + s) %
                                     c.vocab_size);
  };

  // fp32 decode reference logits, teacher-forced over a fixed token walk.
  model.prepare_decode_quant(WeightFormat::kF32);
  std::vector<std::vector<float>> ref;
  {
    nn::KvCache cache;
    Tape t0;
    model.forward_incremental(t0, prompt, cache);
    for (int s = 0; s < steps; ++s) {
      Tape t;
      const std::int32_t tok = step_token(s);
      Var lg = model.forward_incremental(
          t, std::span<const std::int32_t>(&tok, 1), cache);
      ref.emplace_back(lg.value().data(),
                       lg.value().data() + c.vocab_size);
    }
  }

  for (const auto format : {WeightFormat::kBf16, WeightFormat::kInt8}) {
    model.prepare_decode_quant(format);
    EXPECT_EQ(model.decode_quant_format(), format);
    nn::KvCache cache;
    Tape t0;
    model.forward_incremental(t0, prompt, cache);
    float max_err = 0.0f;
    for (int s = 0; s < steps; ++s) {
      Tape t;
      const std::int32_t tok = step_token(s);
      Var lg = model.forward_incremental(
          t, std::span<const std::int32_t>(&tok, 1), cache);
      const float* q = lg.value().data();
      std::int64_t ref_argmax = 0, q_argmax = 0;
      for (std::int64_t v = 0; v < c.vocab_size; ++v) {
        max_err = std::max(max_err, std::abs(q[v] - ref[s][v]));
        if (ref[s][v] > ref[s][ref_argmax]) ref_argmax = v;
        if (q[v] > q[q_argmax]) q_argmax = v;
      }
      EXPECT_EQ(ref_argmax, q_argmax)
          << kernels::format_name(format) << " step " << s;
    }
    // Measured on this deterministic model: 5.2e-4 (bf16), 1.2e-3 (int8).
    EXPECT_LT(max_err, 0.02f) << kernels::format_name(format);
  }
  model.prepare_decode_quant(WeightFormat::kF32);
}

TEST(DecodeQuant, EngineTokensIdenticalToGenerateCachedSameFormat) {
  const nn::GptConfig c = quant_model_config();
  nn::GptModel model(c);

  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.kv_slots = 4;
  ec.decode_quant = WeightFormat::kInt8;
  ec.gemm_autotune = true;  // tuned tilings must not change bytes either
  serve::InferenceEngine engine(model, ec);

  auto trace = serve::synth_trace(quant_trace_spec());
  const auto reference_trace = trace;
  const auto results = engine.run_trace(std::move(trace));
  ASSERT_EQ(results.size(), reference_trace.size());

  // The engine installed the int8 sidecars on the shared model, so
  // generate_cached now runs the same quantized decode path.
  ASSERT_EQ(model.decode_quant_format(), WeightFormat::kInt8);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& req = reference_trace[i];
    Rng rng(req.sampling.seed);
    const auto expected = model.generate_cached(req.prompt,
                                                req.max_new_tokens,
                                                req.sampling, rng);
    EXPECT_EQ(results[i].tokens, expected) << "request " << i;
  }
  GemmTuner::instance().configure({});
}

TEST(DecodeQuant, ChunkedPrefillIdenticalToWholePrefillUnderQuant) {
  const nn::GptConfig c = quant_model_config();
  nn::GptModel model(c);

  serve::EngineConfig whole;
  whole.max_batch = 4;
  whole.kv_slots = 4;
  whole.decode_quant = WeightFormat::kInt8;
  serve::EngineConfig chunked = whole;
  chunked.prefill_chunk_tokens = 1;  // worst case: every chunk is one token

  auto spec = quant_trace_spec();
  serve::InferenceEngine a(model, whole);
  const auto ra = a.run_trace(serve::synth_trace(spec));
  serve::InferenceEngine b(model, chunked);
  const auto rb = b.run_trace(serve::synth_trace(spec));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tokens, rb[i].tokens) << "request " << i;
  }
}

TEST(DecodeQuant, SpeculativeIdenticalToPlainUnderQuant) {
  const nn::GptConfig c = quant_model_config();
  nn::GptModel model(c);

  serve::EngineConfig plain;
  plain.max_batch = 4;
  plain.kv_slots = 4;
  plain.decode_quant = WeightFormat::kInt8;
  serve::EngineConfig spec_cfg = plain;
  spec_cfg.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 1);

  // The speculative byte-identity contract is greedy (stochastic requests
  // use rejection sampling, which consumes the rng stream differently).
  auto spec = quant_trace_spec();
  spec.max_new_min = 4;  // enough tokens for a couple of verify rounds
  auto plain_trace = serve::synth_trace(spec);
  for (auto& req : plain_trace) req.sampling.temperature = 0.0f;
  auto trace = plain_trace;
  serve::InferenceEngine a(model, plain);
  const auto ra = a.run_trace(std::move(plain_trace));

  for (auto& req : trace) req.spec_k = 2;
  serve::InferenceEngine b(model, spec_cfg);
  const auto rb = b.run_trace(std::move(trace));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tokens, rb[i].tokens) << "request " << i;
  }
}

TEST(DecodeQuant, EngineValidatesKnobCombinations) {
  nn::GptModel model(quant_model_config());
  {
    serve::EngineConfig ec;
    ec.tune_cache_path = "/tmp/never_written.json";  // without gemm_autotune
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.decode_quant = WeightFormat::kInt8;
    ec.tensor_parallel = 2;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
}

TEST(DecodeQuant, EngineStatsReportQuantAndTunerCounters) {
  const nn::GptConfig c = quant_model_config();
  nn::GptModel model(c);
  serve::EngineConfig ec;
  ec.max_batch = 2;
  ec.kv_slots = 2;
  ec.decode_quant = WeightFormat::kInt8;
  ec.gemm_autotune = true;
  serve::InferenceEngine engine(model, ec);
  auto spec = quant_trace_spec();
  spec.n_requests = 3;
  engine.run_trace(serve::synth_trace(spec));

  EXPECT_EQ(engine.stats().decode_quant(), std::string("int8"));
  EXPECT_TRUE(engine.stats().gemm_autotune());
  EXPECT_GT(engine.stats().gemm().int8_calls, 0u);
  EXPECT_GT(engine.stats().gemm().f32_calls, 0u);  // prefill stays fp32
  const std::string json = engine.stats().to_json(1.0);
  EXPECT_NE(json.find("\"decode_quant\": \"int8\""), std::string::npos);
  EXPECT_NE(json.find("\"gemm_tune_lookups\""), std::string::npos);
  GemmTuner::instance().configure({});
}

}  // namespace
}  // namespace matgpt
