// Unit + integration tests for src/serve/sched: priority/EDF/aging admission
// policy, preempt-resume byte-identity (recompute and swap, plain and
// speculative), chunked prefill equivalence, cancellation/deadline
// retirement, try_submit load-shedding, and the KvTierStore host budget.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/sched/fcfs.h"
#include "serve/sched/priority.h"
#include "serve/kv_tier/kv_tier.h"
#include "serve/spec/proposer.h"
#include "serve/trace.h"

namespace matgpt {
namespace {

using serve::sched::ActiveItem;
using serve::sched::Clock;
using serve::sched::QueueItem;
using SchedPolicy = serve::sched::Policy;
using serve::sched::kNone;
using serve::sched::PreemptMode;

nn::GptConfig sched_config() {
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = 1;
  c.max_seq = 64;
  return c;
}

QueueItem queue_item(std::uint64_t id, serve::Priority cls,
                     Clock::time_point submitted,
                     Clock::time_point deadline = Clock::time_point::max()) {
  QueueItem item;
  item.id = id;
  item.priority = cls;
  item.submitted = submitted;
  item.deadline = deadline;
  return item;
}

ActiveItem active_item(std::uint64_t id, serve::Priority cls,
                       Clock::time_point submitted, std::int64_t emitted) {
  ActiveItem item;
  item.id = id;
  item.priority = cls;
  item.submitted = submitted;
  item.emitted = emitted;
  return item;
}

// ---------------------------------------------------------------------------
// PriorityScheduler policy logic (pure, fabricated timestamps)
// ---------------------------------------------------------------------------

TEST(PrioritySched, EffectiveClassAgesTowardZeroAndClamps) {
  serve::sched::PriorityScheduler sched(100.0);
  const auto t0 = Clock::now();
  const QueueItem low = queue_item(1, serve::Priority::kLow, t0);
  EXPECT_EQ(sched.effective_class(low, t0), 2);
  EXPECT_EQ(sched.effective_class(low, t0 + std::chrono::milliseconds(150)),
            1);
  EXPECT_EQ(sched.effective_class(low, t0 + std::chrono::milliseconds(250)),
            0);
  EXPECT_EQ(sched.effective_class(low, t0 + std::chrono::seconds(100)), 0);

  serve::sched::PriorityScheduler no_aging(0.0);
  EXPECT_EQ(
      no_aging.effective_class(low, t0 + std::chrono::seconds(100)), 2);
}

TEST(PrioritySched, PickNextOrdersByClassBeforeDeadline) {
  serve::sched::PriorityScheduler sched(0.0);
  const auto t0 = Clock::now();
  // A normal-class request with an urgent deadline still loses to a
  // high-class one whose deadline is later: class is the primary key.
  const std::vector<QueueItem> waiting{
      queue_item(0, serve::Priority::kNormal, t0,
                 t0 + std::chrono::milliseconds(5)),
      queue_item(1, serve::Priority::kHigh, t0,
                 t0 + std::chrono::milliseconds(500)),
  };
  EXPECT_EQ(sched.pick_next(waiting, t0), 1u);
}

TEST(PrioritySched, PickNextRunsEdfWithinAClass) {
  serve::sched::PriorityScheduler sched(0.0);
  const auto t0 = Clock::now();
  const std::vector<QueueItem> waiting{
      queue_item(0, serve::Priority::kHigh, t0,
                 t0 + std::chrono::milliseconds(300)),
      queue_item(1, serve::Priority::kHigh, t0,
                 t0 + std::chrono::milliseconds(100)),
      queue_item(2, serve::Priority::kHigh, t0,
                 t0 + std::chrono::milliseconds(200)),
  };
  EXPECT_EQ(sched.pick_next(waiting, t0), 1u);
}

TEST(PrioritySched, DeadlinelessRequestsCarryTheImpliedDeadline) {
  serve::sched::PriorityScheduler sched(0.0);
  const auto t0 = Clock::now();
  // A deadline tighter than the implied offset beats a deadline-less peer;
  // one looser than the implied offset loses to it. Deadline-less requests
  // therefore order FIFO among themselves instead of starving behind every
  // deadline-carrying arrival.
  const auto implied =
      std::chrono::milliseconds(static_cast<std::int64_t>(
          serve::sched::kImpliedDeadlineMs));
  const std::vector<QueueItem> tight{
      queue_item(0, serve::Priority::kNormal, t0),
      queue_item(1, serve::Priority::kNormal, t0, t0 + implied / 2),
  };
  EXPECT_EQ(sched.pick_next(tight, t0), 1u);
  const std::vector<QueueItem> loose{
      queue_item(0, serve::Priority::kNormal, t0),
      queue_item(1, serve::Priority::kNormal, t0, t0 + implied * 2),
  };
  EXPECT_EQ(sched.pick_next(loose, t0), 0u);
}

TEST(PrioritySched, AgedLowBeatsFreshHighPreventingStarvation) {
  serve::sched::PriorityScheduler sched(100.0);
  const auto t0 = Clock::now();
  const auto now = t0 + std::chrono::milliseconds(300);
  // The low-class request waited 3 aging quanta -> effective class 0; the
  // fresh high is also class 0, but the aged request's implied deadline
  // (submit + 1000 ms) is 300 ms earlier, so it wins the EDF tie-break.
  const std::vector<QueueItem> waiting{
      queue_item(7, serve::Priority::kHigh, now),
      queue_item(3, serve::Priority::kLow, t0),
  };
  EXPECT_EQ(sched.pick_next(waiting, now), 1u);
}

TEST(PrioritySched, PickVictimTakesStrictlyLowerClassYoungestFirst) {
  serve::sched::PriorityScheduler sched(0.0);
  const auto t0 = Clock::now();
  const std::vector<ActiveItem> active{
      active_item(0, serve::Priority::kHigh, t0, 4),
      active_item(1, serve::Priority::kLow, t0, 8),
      active_item(2, serve::Priority::kLow, t0 + std::chrono::seconds(1), 2),
      active_item(3, serve::Priority::kNormal, t0, 1),
  };
  const auto now = t0 + std::chrono::seconds(2);
  // Incoming high: worst class first (low), youngest submission within it.
  EXPECT_EQ(sched.pick_victim(
                active, queue_item(9, serve::Priority::kHigh, now), now),
            2u);
  // Incoming normal may only evict the lows — never a normal peer.
  EXPECT_EQ(sched.pick_victim(
                active, queue_item(9, serve::Priority::kNormal, now), now),
            2u);
  // Incoming low has no strictly-lower class to take from.
  EXPECT_EQ(sched.pick_victim(
                active, queue_item(9, serve::Priority::kLow, now), now),
            kNone);
}

TEST(FcfsSched, HeadOfLineNoVictimsNoBypass) {
  serve::sched::FcfsScheduler sched;
  const auto t0 = Clock::now();
  const std::vector<QueueItem> waiting{
      queue_item(5, serve::Priority::kLow, t0),
      queue_item(6, serve::Priority::kHigh, t0),
  };
  EXPECT_EQ(sched.pick_next(waiting, t0), 0u);  // arrival order, not class
  EXPECT_EQ(sched.pick_next({}, t0), kNone);
  const std::vector<ActiveItem> active{
      active_item(0, serve::Priority::kLow, t0, 1)};
  EXPECT_EQ(
      sched.pick_victim(active, queue_item(9, serve::Priority::kHigh, t0),
                        t0),
      kNone);
  EXPECT_FALSE(sched.allows_bypass());
}

// ---------------------------------------------------------------------------
// KvTierStore host tier (the former SwapArena budget semantics)
// ---------------------------------------------------------------------------

TEST(KvTierHostBudget, BudgetAccountingAndRefusal) {
  using serve::kv_tier::KvTierStore;
  using serve::kv_tier::Space;
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 100;  // no disk tier: over-budget stores refuse
  KvTierStore store(tc);

  KvTierStore::Entry big;
  big.data.assign(30, 1.0f);  // 120 bytes: over budget
  big.tokens = 3;
  EXPECT_FALSE(store.store(Space::kPreempt, 1, std::move(big)));
  EXPECT_EQ(store.stats().host_bytes_used, 0u);

  KvTierStore::Entry fits;
  fits.data.assign(20, 2.0f);  // 80 bytes
  fits.tokens = 2;
  ASSERT_TRUE(store.store(Space::kPreempt, 1, std::move(fits)));
  EXPECT_EQ(store.stats().host_bytes_used, 80u);
  EXPECT_TRUE(store.contains(Space::kPreempt, 1));

  KvTierStore::Entry second;
  second.data.assign(8, 3.0f);  // 32 bytes: 80 + 32 > 100
  second.tokens = 1;
  EXPECT_FALSE(store.store(Space::kPreempt, 2, std::move(second)));

  const auto entry = store.take(Space::kPreempt, 1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->tokens, 2);
  EXPECT_EQ(entry->data.size(), 20u);
  EXPECT_EQ(store.stats().host_bytes_used, 0u);
  EXPECT_EQ(store.stats().host_entries, 0u);
  EXPECT_EQ(store.stats().peak_host_bytes, 80u);
  EXPECT_EQ(store.stats().stores, 1u);
  EXPECT_FALSE(store.take(Space::kPreempt, 1).has_value());

  KvTierStore::Entry third;
  third.data.assign(4, 4.0f);
  third.tokens = 1;
  ASSERT_TRUE(store.store(Space::kPreempt, 3, std::move(third)));
  store.drop(Space::kPreempt, 3);
  EXPECT_FALSE(store.contains(Space::kPreempt, 3));
  EXPECT_EQ(store.stats().host_bytes_used, 0u);
}

// ---------------------------------------------------------------------------
// EngineConfig validation + try_submit
// ---------------------------------------------------------------------------

TEST(ServeSchedEngine, ValidateRejectsBadSchedulingKnobs) {
  nn::GptModel model(sched_config());
  {
    serve::EngineConfig ec;
    ec.prefill_chunk_tokens = -1;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.sched_aging_ms = -0.5;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
}

TEST(ServeSchedEngine, TrySubmitShedsLoadWhenQueueIsFull) {
  nn::GptModel model(sched_config());
  serve::EngineConfig ec;
  ec.max_batch = 2;
  ec.kv_slots = 2;
  ec.queue_capacity = 2;
  serve::InferenceEngine engine(model, ec);

  auto make = [](std::uint64_t id) {
    serve::Request req;
    req.id = id;
    req.prompt = {1, 2, 3};
    req.max_new_tokens = 4;
    return req;
  };
  auto f0 = engine.try_submit(make(0));
  auto f1 = engine.try_submit(make(1));
  ASSERT_TRUE(f0.has_value());
  ASSERT_TRUE(f1.has_value());
  auto f2 = engine.try_submit(make(2));
  EXPECT_FALSE(f2.has_value());  // queue full: shed, don't block

  engine.run_until_idle();
  EXPECT_EQ(f0->get().status, serve::RequestStatus::kOk);
  EXPECT_EQ(f1->get().status, serve::RequestStatus::kOk);

  auto f3 = engine.try_submit(make(3));  // space again after the drain
  ASSERT_TRUE(f3.has_value());
  engine.run_until_idle();
  EXPECT_EQ(f3->get().status, serve::RequestStatus::kOk);
}

// ---------------------------------------------------------------------------
// Preempt-resume byte-identity
// ---------------------------------------------------------------------------

enum class Flavor { kGreedy, kStochastic, kSpeculative };

serve::Request sched_request(std::uint64_t id, serve::Priority cls,
                             std::int64_t prompt_len,
                             std::int64_t max_new, Flavor flavor) {
  serve::Request req;
  req.id = id;
  req.priority = cls;
  for (std::int64_t t = 0; t < prompt_len; ++t) {
    req.prompt.push_back(static_cast<std::int32_t>((id * 7 + t * 3) % 50));
  }
  req.max_new_tokens = max_new;
  if (flavor == Flavor::kGreedy) {
    req.sampling.temperature = 0.0f;
  } else {
    req.sampling.temperature = 0.8f;
    req.sampling.top_k = 20;
    req.sampling.top_p = 0.9f;
  }
  req.sampling.seed = 0xabc0 + id;
  if (flavor == Flavor::kSpeculative) req.spec_k = 2;
  return req;
}

// Drive: admit two low-priority sequences, then submit two high-priority
// ones whose KV demand cannot fit without evicting the lows. Returns the
// results by request id.
std::map<std::uint64_t, serve::RequestResult> run_pressure_scenario(
    serve::InferenceEngine& engine, Flavor flavor, std::int64_t low_prompt) {
  // Keep each low's token budget at 40 (5 of the arena's 12 blocks) no
  // matter how the prompt/decode mix is split, so two lows always leave too
  // little room for a high-class arrival.
  const std::int64_t low_new = 40 - low_prompt;
  std::vector<std::future<serve::RequestResult>> futures;
  futures.push_back(engine.submit(
      sched_request(0, serve::Priority::kLow, low_prompt, low_new, flavor)));
  futures.push_back(engine.submit(
      sched_request(1, serve::Priority::kLow, low_prompt, low_new, flavor)));
  engine.step();  // lows are admitted and hold most of the arena
  futures.push_back(engine.submit(
      sched_request(2, serve::Priority::kHigh, 8, 24, flavor)));
  futures.push_back(engine.submit(
      sched_request(3, serve::Priority::kHigh, 8, 24, flavor)));
  engine.run_until_idle();
  std::map<std::uint64_t, serve::RequestResult> results;
  for (auto& f : futures) {
    serve::RequestResult r = f.get();
    results.emplace(r.id, std::move(r));
  }
  return results;
}

void check_preempt_resume_byte_identity(PreemptMode mode, Flavor flavor,
                                        std::int64_t prefill_chunk,
                                        std::int64_t low_prompt) {
  nn::GptModel model(sched_config());

  serve::EngineConfig tight;
  tight.max_batch = 4;
  tight.kv_slots = 2;  // 12-block arena: two lows almost fill it
  tight.kv_capacity_tokens = 48;
  tight.kv_block_tokens = 8;
  tight.queue_capacity = 16;
  tight.scheduler = SchedPolicy::kPriority;
  tight.preempt_mode = mode;
  tight.prefill_chunk_tokens = prefill_chunk;
  if (flavor == Flavor::kSpeculative) {
    tight.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 1);
  }
  serve::EngineConfig roomy = tight;
  roomy.kv_slots = 8;  // never under pressure -> never preempts
  roomy.prefill_chunk_tokens = 0;

  serve::InferenceEngine pressured(model, tight);
  serve::InferenceEngine reference(model, roomy);

  const auto got = run_pressure_scenario(pressured, flavor, low_prompt);
  const auto want = run_pressure_scenario(reference, flavor, low_prompt);

  // The scenario must actually preempt, or the test proves nothing.
  EXPECT_GE(pressured.stats().preemptions(), 1u)
      << serve::sched::preempt_mode_name(mode);
  EXPECT_EQ(reference.stats().preemptions(), 0u);
  std::int64_t low_preemptions = 0;
  for (const auto& [id, result] : got) {
    EXPECT_EQ(result.status, serve::RequestStatus::kOk) << "request " << id;
    if (result.priority == serve::Priority::kLow) {
      low_preemptions += result.preemptions;
    }
    ASSERT_TRUE(want.count(id));
    EXPECT_EQ(result.tokens, want.at(id).tokens)
        << "request " << id << " diverged after preempt-resume ("
        << serve::sched::preempt_mode_name(mode) << ")";
    EXPECT_EQ(result.generated_tokens, want.at(id).generated_tokens);
  }
  EXPECT_GE(low_preemptions, 1);
  if (mode == PreemptMode::kSwap) {
    EXPECT_GE(pressured.tier().stats().stores, 1u);
    EXPECT_EQ(pressured.tier().stats().host_entries, 0u);  // all taken back
    EXPECT_EQ(pressured.tier().stats().host_bytes_used, 0u);
  }
  EXPECT_TRUE(pressured.kv_pool().all_free());
}

TEST(ServeSchedEngine, PreemptRecomputeResumesByteIdentical) {
  check_preempt_resume_byte_identity(PreemptMode::kRecompute,
                                     Flavor::kGreedy, 0, 8);
  check_preempt_resume_byte_identity(PreemptMode::kRecompute,
                                     Flavor::kStochastic, 0, 8);
}

TEST(ServeSchedEngine, PreemptSwapResumesByteIdentical) {
  check_preempt_resume_byte_identity(PreemptMode::kSwap, Flavor::kGreedy, 0,
                                     8);
  check_preempt_resume_byte_identity(PreemptMode::kSwap,
                                     Flavor::kStochastic, 0, 8);
}

TEST(ServeSchedEngine, SpeculativeRequestsSurvivePreemptionByteIdentical) {
  check_preempt_resume_byte_identity(PreemptMode::kRecompute,
                                     Flavor::kSpeculative, 0, 8);
  check_preempt_resume_byte_identity(PreemptMode::kSwap,
                                     Flavor::kSpeculative, 0, 8);
}

TEST(ServeSchedEngine, PreemptDuringChunkedPrefillResumesByteIdentical) {
  // Long low-priority prompts with a small chunk are still mid-prefill when
  // the high-priority burst lands, so the victims carry zero emitted tokens
  // and partially-filled caches across the preemption.
  check_preempt_resume_byte_identity(PreemptMode::kRecompute,
                                     Flavor::kGreedy, 4, 24);
  check_preempt_resume_byte_identity(PreemptMode::kSwap, Flavor::kGreedy, 4,
                                     24);
}

TEST(ServeSchedEngine, SwapBudgetExhaustionFallsBackToRecompute) {
  nn::GptModel model(sched_config());
  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.kv_slots = 2;
  ec.kv_capacity_tokens = 48;
  ec.kv_block_tokens = 8;
  ec.scheduler = SchedPolicy::kPriority;
  ec.preempt_mode = PreemptMode::kSwap;
  ec.kv_tier.host_tier_bytes = 8;  // nothing fits: swaps degrade gracefully
  serve::InferenceEngine engine(model, ec);

  const auto got = run_pressure_scenario(engine, Flavor::kGreedy, 8);
  EXPECT_GE(engine.stats().preempt_recomputes(), 1u);
  EXPECT_EQ(engine.stats().preempt_swaps(), 0u);
  for (const auto& [id, result] : got) {
    EXPECT_EQ(result.status, serve::RequestStatus::kOk) << "request " << id;
  }
  EXPECT_TRUE(engine.kv_pool().all_free());
}

// ---------------------------------------------------------------------------
// EDF ordering and aging under load
// ---------------------------------------------------------------------------

TEST(ServeSchedEngine, EdfOrdersSameClassAdmissionsByDeadline) {
  nn::GptModel model(sched_config());
  serve::EngineConfig ec;
  ec.max_batch = 1;  // sequential admissions expose the ordering
  ec.kv_slots = 4;
  ec.scheduler = SchedPolicy::kPriority;
  ec.sched_aging_ms = 0.0;
  serve::InferenceEngine engine(model, ec);

  auto make = [](std::uint64_t id, double deadline_ms) {
    serve::Request req;
    req.id = id;
    req.prompt = {3, 1, 4, 1};
    req.max_new_tokens = 8;
    req.deadline_ms = deadline_ms;
    return req;
  };
  auto f0 = engine.submit(make(0, 30000.0));
  auto f1 = engine.submit(make(1, 10000.0));
  auto f2 = engine.submit(make(2, 20000.0));
  engine.run_until_idle();
  const auto r0 = f0.get(), r1 = f1.get(), r2 = f2.get();
  ASSERT_EQ(r0.status, serve::RequestStatus::kOk);
  // Queue delay measures when each request first reached the model: the
  // earliest deadline goes first regardless of submission order.
  EXPECT_LT(r1.queue_delay_s, r2.queue_delay_s);
  EXPECT_LT(r2.queue_delay_s, r0.queue_delay_s);
}

TEST(ServeSchedEngine, AgingRescuesLowPriorityFromHighClassFlood) {
  nn::GptModel model(sched_config());
  auto run = [&model](double aging_ms) {
    serve::EngineConfig ec;
    ec.max_batch = 1;
    ec.kv_slots = 4;
    ec.scheduler = SchedPolicy::kPriority;
    ec.sched_aging_ms = aging_ms;
    serve::InferenceEngine engine(model, ec);

    auto make = [](std::uint64_t id, serve::Priority cls) {
      serve::Request req;
      req.id = id;
      req.prompt = {2, 7, 1, 8};
      req.max_new_tokens = 24;
      req.priority = cls;
      req.sampling.seed = id;
      return req;
    };
    std::vector<std::future<serve::RequestResult>> highs;
    auto occupier = engine.submit(make(100, serve::Priority::kNormal));
    auto low = engine.submit(make(101, serve::Priority::kLow));
    for (std::uint64_t i = 0; i < 12; ++i) {
      highs.push_back(engine.submit(make(i, serve::Priority::kHigh)));
    }
    engine.run_until_idle();
    occupier.get();
    double worst_high = 0.0;
    for (auto& f : highs) {
      worst_high = std::max(worst_high, f.get().queue_delay_s);
    }
    return std::make_pair(low.get().queue_delay_s, worst_high);
  };

  // Without aging the low-class request starves behind every high: class
  // order is strict, so this holds no matter how fast the flood drains.
  const auto [starved_low, starved_worst_high] = run(0.0);
  EXPECT_GT(starved_low, starved_worst_high);
  // A 50 us aging quantum promotes it two classes while the occupier is
  // still decoding; once at the top class its implied deadline (it was
  // submitted before every high) wins the EDF tie-break, so it overtakes
  // most of the flood.
  const auto [aged_low, aged_worst_high] = run(0.05);
  EXPECT_LT(aged_low, aged_worst_high);
}

// ---------------------------------------------------------------------------
// Cancellation and deadline retirement
// ---------------------------------------------------------------------------

TEST(ServeSchedEngine, CancelRetiresQueuedAndActiveRequests) {
  nn::GptModel model(sched_config());
  serve::EngineConfig ec;
  ec.max_batch = 1;
  ec.kv_slots = 2;
  serve::InferenceEngine engine(model, ec);

  serve::Request running;
  running.id = 1;
  running.prompt = {4, 5, 6};
  running.max_new_tokens = 32;
  auto active = engine.submit(running);
  engine.step();  // request 1 is decoding
  ASSERT_EQ(engine.active_count(), 1u);

  serve::Request queued;
  queued.id = 2;
  queued.prompt = {7, 8};
  queued.max_new_tokens = 8;
  auto waiting = engine.submit(queued);

  engine.cancel(2);
  engine.cancel(1);
  engine.cancel(999);  // unknown ids are ignored
  engine.run_until_idle();

  const auto ra = active.get();
  EXPECT_EQ(ra.status, serve::RequestStatus::kCancelled);
  EXPECT_GE(ra.generated_tokens, 1);  // partial progress is returned
  EXPECT_LT(ra.generated_tokens, 32);
  EXPECT_EQ(ra.tokens.size(),
            running.prompt.size() +
                static_cast<std::size_t>(ra.generated_tokens));

  const auto rq = waiting.get();
  EXPECT_EQ(rq.status, serve::RequestStatus::kCancelled);
  EXPECT_EQ(rq.generated_tokens, 0);
  EXPECT_EQ(rq.tokens, queued.prompt);
  EXPECT_LT(rq.queue_delay_s, 0.0);  // never reached the model

  EXPECT_EQ(engine.stats().cancelled(), 2u);
  EXPECT_TRUE(engine.kv_pool().all_free());
}

TEST(ServeSchedEngine, DeadlineExpiryTimesOutQueuedAndActiveRequests) {
  nn::GptModel model(sched_config());
  serve::EngineConfig ec;
  ec.max_batch = 1;
  ec.kv_slots = 2;
  serve::InferenceEngine engine(model, ec);

  serve::Request runner;
  runner.id = 1;
  runner.prompt = {1, 2, 3, 4};
  runner.max_new_tokens = 40;
  runner.deadline_ms = 25.0;
  auto active = engine.submit(runner);
  engine.step();  // admitted; a step emits at most a couple of tokens

  serve::Request queued;
  queued.id = 2;
  queued.prompt = {5, 6};
  queued.max_new_tokens = 4;
  queued.deadline_ms = 1.0;
  auto waiting = engine.submit(queued);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  engine.run_until_idle();

  const auto ra = active.get();
  EXPECT_EQ(ra.status, serve::RequestStatus::kTimeout);
  EXPECT_GE(ra.generated_tokens, 1);
  EXPECT_LT(ra.generated_tokens, 40);

  const auto rq = waiting.get();
  EXPECT_EQ(rq.status, serve::RequestStatus::kTimeout);
  EXPECT_EQ(rq.generated_tokens, 0);

  EXPECT_EQ(engine.stats().timed_out(), 2u);
  EXPECT_TRUE(engine.kv_pool().all_free());
}

// ---------------------------------------------------------------------------
// Chunked prefill
// ---------------------------------------------------------------------------

TEST(ServeSchedEngine, ChunkedPrefillTokensMatchWholePrefill) {
  nn::GptModel model(sched_config());
  serve::TraceSpec spec;
  spec.n_requests = 12;
  spec.vocab_size = 50;
  spec.prompt_len_min = 3;
  spec.prompt_len_max = 8;
  spec.max_new_min = 2;
  spec.max_new_max = 8;
  spec.long_prompt_fraction = 0.5;  // chunked-prefill stressor
  spec.long_prompt_len = 40;

  serve::EngineConfig whole;
  whole.max_batch = 3;
  whole.kv_slots = 3;
  serve::EngineConfig chunked = whole;
  chunked.prefill_chunk_tokens = 7;  // deliberately not a block multiple

  serve::InferenceEngine a(model, whole), b(model, chunked);
  const auto ra = a.run_trace(serve::synth_trace(spec));
  const auto rb = b.run_trace(serve::synth_trace(spec));
  ASSERT_EQ(ra.size(), rb.size());
  bool saw_long = false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tokens, rb[i].tokens) << "request " << i;
    saw_long = saw_long ||
               ra[i].tokens.size() >= 40;  // trace really produced long ones
  }
  EXPECT_TRUE(saw_long);
  EXPECT_TRUE(b.kv_pool().all_free());
}

// ---------------------------------------------------------------------------
// Trace decoration compatibility
// ---------------------------------------------------------------------------

TEST(ServeSchedTrace, SchedulingKnobsZeroedReproducesBaseTrace) {
  serve::TraceSpec base;
  base.n_requests = 8;
  base.vocab_size = 50;
  serve::TraceSpec decorated = base;
  decorated.high_fraction = 0.3;
  decorated.low_fraction = 0.3;
  decorated.high_deadline_ms = 50.0;
  decorated.long_prompt_fraction = 0.25;
  decorated.long_prompt_len = 30;

  const auto plain = serve::synth_trace(base);
  const auto tagged = serve::synth_trace(decorated);
  ASSERT_EQ(plain.size(), tagged.size());
  bool classes = false, lengthened = false;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // The decoration streams never disturb the base draws: sampling seeds
    // and the original prompt prefix are bit-identical.
    EXPECT_EQ(plain[i].sampling.seed, tagged[i].sampling.seed);
    EXPECT_EQ(plain[i].max_new_tokens, tagged[i].max_new_tokens);
    ASSERT_GE(tagged[i].prompt.size(), plain[i].prompt.size());
    EXPECT_TRUE(std::equal(plain[i].prompt.begin(), plain[i].prompt.end(),
                           tagged[i].prompt.begin()));
    classes = classes || tagged[i].priority != serve::Priority::kNormal;
    lengthened = lengthened || tagged[i].prompt.size() > plain[i].prompt.size();
    if (tagged[i].priority == serve::Priority::kHigh) {
      EXPECT_EQ(tagged[i].deadline_ms, 50.0);
    }
  }
  EXPECT_TRUE(classes);
  EXPECT_TRUE(lengthened);
}

}  // namespace
}  // namespace matgpt
