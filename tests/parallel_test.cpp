// Unit tests for the thread pool and the in-process MPI-style communicator.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "parallel/comm.h"
#include "parallel/thread_pool.h"

namespace matgpt {
namespace {

TEST(ThreadPool, InlineModeExecutesSynchronously) {
  ThreadPool pool(0);
  int value = 0;
  pool.submit([&] { value = 7; }).get();
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw Error("boom");
                        }),
      Error);
}

TEST(Comm, WorldSizeAndRankAssignment) {
  std::vector<std::atomic<int>> seen(4);
  run_ranks(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    seen[static_cast<std::size_t>(comm.rank())].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Comm, AllreduceSum) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> data{static_cast<float>(comm.rank() + 1), 10.0f};
    comm.allreduce(data);
    EXPECT_FLOAT_EQ(data[0], 10.0f);  // 1+2+3+4
    EXPECT_FLOAT_EQ(data[1], 40.0f);
  });
}

TEST(Comm, AllreduceMaxMin) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> mx{static_cast<float>(comm.rank())};
    comm.allreduce(mx, ReduceOp::kMax);
    EXPECT_FLOAT_EQ(mx[0], 2.0f);
    std::vector<float> mn{static_cast<float>(comm.rank())};
    comm.allreduce(mn, ReduceOp::kMin);
    EXPECT_FLOAT_EQ(mn[0], 0.0f);
  });
}

TEST(Comm, AllreduceRepeatedUsesAreIndependent) {
  run_ranks(4, [](Communicator& comm) {
    for (int iter = 1; iter <= 5; ++iter) {
      std::vector<float> data{static_cast<float>(comm.rank() * iter)};
      comm.allreduce(data);
      EXPECT_FLOAT_EQ(data[0], static_cast<float>(6 * iter));
    }
  });
}

TEST(Comm, Allgather) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> send{static_cast<float>(comm.rank()),
                            static_cast<float>(comm.rank() * 10)};
    std::vector<float> recv(6);
    comm.allgather(send, recv);
    const std::vector<float> expect{0, 0, 1, 10, 2, 20};
    EXPECT_EQ(recv, expect);
  });
}

TEST(Comm, ReduceScatter) {
  run_ranks(2, [](Communicator& comm) {
    // Both ranks contribute [0,1,2,3]; reduction is [0,2,4,6].
    std::vector<float> send{0, 1, 2, 3};
    std::vector<float> recv(2);
    comm.reduce_scatter(send, recv);
    if (comm.rank() == 0) {
      EXPECT_FLOAT_EQ(recv[0], 0.0f);
      EXPECT_FLOAT_EQ(recv[1], 2.0f);
    } else {
      EXPECT_FLOAT_EQ(recv[0], 4.0f);
      EXPECT_FLOAT_EQ(recv[1], 6.0f);
    }
  });
}

TEST(Comm, Broadcast) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> data(3, comm.rank() == 2 ? 5.0f : 0.0f);
    comm.broadcast(data, /*root=*/2);
    for (float v : data) EXPECT_FLOAT_EQ(v, 5.0f);
  });
}

TEST(Comm, PointToPointRing) {
  run_ranks(4, [](Communicator& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<float> out{static_cast<float>(comm.rank())};
    std::vector<float> in(1);
    if (comm.rank() % 2 == 0) {
      comm.send(out, next);
      comm.recv(in, prev);
    } else {
      comm.recv(in, prev);
      comm.send(out, next);
    }
    EXPECT_FLOAT_EQ(in[0], static_cast<float>(prev));
  });
}

TEST(Comm, TaggedMessagesDoNotCross) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<float> a{1.0f}, b{2.0f};
      comm.send(a, 1, /*tag=*/7);
      comm.send(b, 1, /*tag=*/9);
    } else {
      std::vector<float> b(1), a(1);
      comm.recv(b, 0, /*tag=*/9);  // receive in reverse send order
      comm.recv(a, 0, /*tag=*/7);
      EXPECT_FLOAT_EQ(a[0], 1.0f);
      EXPECT_FLOAT_EQ(b[0], 2.0f);
    }
  });
}

TEST(Comm, SplitFormsSubgroupsWithReorderedRanks) {
  run_ranks(6, [](Communicator& comm) {
    // Even ranks form group 0, odd ranks group 1; key reverses order.
    Communicator sub = comm.split(comm.rank() % 2, -comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Highest parent rank gets child rank 0 because of the negated key.
    if (comm.rank() == 4) {
      EXPECT_EQ(sub.rank(), 0);
    }
    if (comm.rank() == 0) {
      EXPECT_EQ(sub.rank(), 2);
    }
    std::vector<float> data{1.0f};
    sub.allreduce(data);
    EXPECT_FLOAT_EQ(data[0], 3.0f);
  });
}

TEST(Comm, SplitGroupsAreIsolated) {
  run_ranks(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() / 2, comm.rank());
    std::vector<float> data{static_cast<float>(comm.rank())};
    sub.allreduce(data);
    const float expect = comm.rank() < 2 ? 1.0f : 5.0f;  // 0+1 or 2+3
    EXPECT_FLOAT_EQ(data[0], expect);
  });
}

TEST(Comm, TrafficCountersAdvance) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<float> data{1.0f, 2.0f};
    comm.allreduce(data);
    comm.barrier();
    EXPECT_GT(comm.bytes_reduced(), 0u);
  });
}

TEST(Comm, SingleRankCollectivesAreIdentity) {
  run_ranks(1, [](Communicator& comm) {
    std::vector<float> data{3.5f};
    comm.allreduce(data);
    EXPECT_FLOAT_EQ(data[0], 3.5f);
    comm.broadcast(data, 0);
    EXPECT_FLOAT_EQ(data[0], 3.5f);
    comm.barrier();
  });
}

TEST(Comm, AllreduceDetMatchesOrderedDoubleSum) {
  // The contract: element i becomes fl(sum_r double(x_r[i])) in ascending
  // rank order with ONE final rounding. Pin it against a serial reference.
  constexpr int kRanks = 4;
  constexpr std::size_t kElems = 7;
  auto contribution = [](int rank, std::size_t i) {
    return 0.1f * static_cast<float>(rank + 1) -
           0.37f * static_cast<float>(i) +
           static_cast<float>(rank * 7 + static_cast<int>(i) * 3) * 1e-3f;
  };
  std::vector<float> expected(kElems);
  for (std::size_t i = 0; i < kElems; ++i) {
    double acc = 0.0;
    for (int r = 0; r < kRanks; ++r) {
      acc += static_cast<double>(contribution(r, i));
    }
    expected[i] = static_cast<float>(acc);
  }
  run_ranks(kRanks, [&](Communicator& comm) {
    std::vector<float> data(kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      data[i] = contribution(comm.rank(), i);
    }
    comm.allreduce_det(data);
    for (std::size_t i = 0; i < kElems; ++i) {
      const std::uint32_t got = std::bit_cast<std::uint32_t>(data[i]);
      const std::uint32_t want = std::bit_cast<std::uint32_t>(expected[i]);
      EXPECT_EQ(got, want) << "elem " << i;
    }
  });
}

TEST(Comm, AllreduceDetIsArrivalOrderInvariant) {
  // Repeat the same reduction many times with rank-skewed arrival (each
  // rank burns a different amount of work first). allreduce() would
  // accumulate in whatever order threads take the lock; allreduce_det must
  // produce one bit pattern every time.
  constexpr int kRanks = 4;
  constexpr int kIters = 64;
  std::mutex mu;
  std::vector<std::vector<float>> results(kIters);
  run_ranks(kRanks, [&](Communicator& comm) {
    for (int it = 0; it < kIters; ++it) {
      volatile float sink = 0.0f;
      const int spin = ((comm.rank() + it) % kRanks) * 500;
      for (int i = 0; i < spin; ++i) sink = sink + 1.0f;
      std::vector<float> data{0.1f * static_cast<float>(comm.rank() + 1),
                              -2.7f, 3.14159f * comm.rank(), sink * 0.0f + 7e-3f};
      comm.allreduce_det(data);
      if (comm.rank() == 0) {
        std::lock_guard lock(mu);
        results[static_cast<std::size_t>(it)] = data;
      }
      comm.barrier();
    }
  });
  for (int it = 1; it < kIters; ++it) {
    ASSERT_EQ(results[0].size(), results[static_cast<std::size_t>(it)].size());
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(results[0][i]),
                std::bit_cast<std::uint32_t>(
                    results[static_cast<std::size_t>(it)][i]))
          << "iteration " << it << " elem " << i;
    }
  }
}

TEST(Comm, AllreduceDetIsRankCountInvariantOnExactSplits) {
  // Split a fixed vector across N ranks as base/N (exact for power-of-two
  // N: a float divided by 2^k only shifts its exponent, and the partial
  // double sums of <= 8 copies round nowhere). allreduce_det must then
  // reconstruct the SAME bit pattern for every N — the property that makes
  // TP=N the same model as TP=1.
  const std::vector<float> base{1.5f, -0.1f, 3.25f, 0.007812f, -42.0f};
  for (int n : {1, 2, 4, 8}) {
    std::mutex mu;
    std::vector<float> result;
    run_ranks(n, [&](Communicator& comm) {
      std::vector<float> data(base.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        data[i] = base[i] / static_cast<float>(n);
      }
      comm.allreduce_det(data);
      if (comm.rank() == 0) {
        std::lock_guard lock(mu);
        result = data;
      }
    });
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(result[i]),
                std::bit_cast<std::uint32_t>(base[i]))
          << "n=" << n << " elem " << i;
    }
  }
}

TEST(Comm, AllgatherColsInterleavesColumnSlices) {
  // Each rank sends a [2, 2] slice; rank r's columns must land at column
  // offset r*2 of the [2, 6] result on every rank.
  run_ranks(3, [](Communicator& comm) {
    constexpr std::size_t kRows = 2, kW = 2;
    std::vector<float> send(kRows * kW);
    for (std::size_t row = 0; row < kRows; ++row) {
      for (std::size_t col = 0; col < kW; ++col) {
        send[row * kW + col] =
            static_cast<float>(comm.rank() * 100 + row * 10 + col);
      }
    }
    std::vector<float> recv(kRows * kW * 3);
    comm.allgather_cols(send, recv, kRows);
    for (std::size_t row = 0; row < kRows; ++row) {
      for (int r = 0; r < 3; ++r) {
        for (std::size_t col = 0; col < kW; ++col) {
          EXPECT_FLOAT_EQ(recv[row * kW * 3 + r * kW + col],
                          static_cast<float>(r * 100 + row * 10 + col))
              << "row " << row << " rank " << r << " col " << col;
        }
      }
    }
  });
}

TEST(Comm, ConcurrentSplitGroupsKeepSeparateScratch) {
  // Two sub-groups cut from one parent stay live simultaneously and
  // interleave collectives. Each split's GroupState owns its own scratch
  // and det slots, so neither group can see the other's partial sums.
  run_ranks(4, [](Communicator& comm) {
    Communicator pair = comm.split(comm.rank() / 2, comm.rank());   // {0,1},{2,3}
    Communicator stripe = comm.split(comm.rank() % 2, comm.rank()); // {0,2},{1,3}
    for (int it = 0; it < 16; ++it) {
      std::vector<float> a{static_cast<float>(comm.rank() + 1)};
      std::vector<float> b{static_cast<float>((comm.rank() + 1) * 10)};
      pair.allreduce_det(a);
      stripe.allreduce_det(b);
      const float want_pair = comm.rank() < 2 ? 3.0f : 7.0f;    // 1+2 / 3+4
      const float want_stripe =
          comm.rank() % 2 == 0 ? 40.0f : 60.0f;                 // 10+30 / 20+40
      EXPECT_FLOAT_EQ(a[0], want_pair) << "iter " << it;
      EXPECT_FLOAT_EQ(b[0], want_stripe) << "iter " << it;
      std::vector<float> g(2);
      pair.allgather_cols(std::vector<float>{static_cast<float>(comm.rank())},
                          g, 1);
      EXPECT_FLOAT_EQ(g[0] + g[1], comm.rank() < 2 ? 1.0f : 5.0f);
    }
  });
}

TEST(Comm, RankExceptionPropagatesToLauncher) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           if (comm.rank() == 1) throw Error("rank failure");
                         }),
               Error);
}

}  // namespace
}  // namespace matgpt
