// Unit tests for the thread pool and the in-process MPI-style communicator.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "parallel/comm.h"
#include "parallel/thread_pool.h"

namespace matgpt {
namespace {

TEST(ThreadPool, InlineModeExecutesSynchronously) {
  ThreadPool pool(0);
  int value = 0;
  pool.submit([&] { value = 7; }).get();
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw Error("boom");
                        }),
      Error);
}

TEST(Comm, WorldSizeAndRankAssignment) {
  std::vector<std::atomic<int>> seen(4);
  run_ranks(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    seen[static_cast<std::size_t>(comm.rank())].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Comm, AllreduceSum) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> data{static_cast<float>(comm.rank() + 1), 10.0f};
    comm.allreduce(data);
    EXPECT_FLOAT_EQ(data[0], 10.0f);  // 1+2+3+4
    EXPECT_FLOAT_EQ(data[1], 40.0f);
  });
}

TEST(Comm, AllreduceMaxMin) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> mx{static_cast<float>(comm.rank())};
    comm.allreduce(mx, ReduceOp::kMax);
    EXPECT_FLOAT_EQ(mx[0], 2.0f);
    std::vector<float> mn{static_cast<float>(comm.rank())};
    comm.allreduce(mn, ReduceOp::kMin);
    EXPECT_FLOAT_EQ(mn[0], 0.0f);
  });
}

TEST(Comm, AllreduceRepeatedUsesAreIndependent) {
  run_ranks(4, [](Communicator& comm) {
    for (int iter = 1; iter <= 5; ++iter) {
      std::vector<float> data{static_cast<float>(comm.rank() * iter)};
      comm.allreduce(data);
      EXPECT_FLOAT_EQ(data[0], static_cast<float>(6 * iter));
    }
  });
}

TEST(Comm, Allgather) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> send{static_cast<float>(comm.rank()),
                            static_cast<float>(comm.rank() * 10)};
    std::vector<float> recv(6);
    comm.allgather(send, recv);
    const std::vector<float> expect{0, 0, 1, 10, 2, 20};
    EXPECT_EQ(recv, expect);
  });
}

TEST(Comm, ReduceScatter) {
  run_ranks(2, [](Communicator& comm) {
    // Both ranks contribute [0,1,2,3]; reduction is [0,2,4,6].
    std::vector<float> send{0, 1, 2, 3};
    std::vector<float> recv(2);
    comm.reduce_scatter(send, recv);
    if (comm.rank() == 0) {
      EXPECT_FLOAT_EQ(recv[0], 0.0f);
      EXPECT_FLOAT_EQ(recv[1], 2.0f);
    } else {
      EXPECT_FLOAT_EQ(recv[0], 4.0f);
      EXPECT_FLOAT_EQ(recv[1], 6.0f);
    }
  });
}

TEST(Comm, Broadcast) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> data(3, comm.rank() == 2 ? 5.0f : 0.0f);
    comm.broadcast(data, /*root=*/2);
    for (float v : data) EXPECT_FLOAT_EQ(v, 5.0f);
  });
}

TEST(Comm, PointToPointRing) {
  run_ranks(4, [](Communicator& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<float> out{static_cast<float>(comm.rank())};
    std::vector<float> in(1);
    if (comm.rank() % 2 == 0) {
      comm.send(out, next);
      comm.recv(in, prev);
    } else {
      comm.recv(in, prev);
      comm.send(out, next);
    }
    EXPECT_FLOAT_EQ(in[0], static_cast<float>(prev));
  });
}

TEST(Comm, TaggedMessagesDoNotCross) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<float> a{1.0f}, b{2.0f};
      comm.send(a, 1, /*tag=*/7);
      comm.send(b, 1, /*tag=*/9);
    } else {
      std::vector<float> b(1), a(1);
      comm.recv(b, 0, /*tag=*/9);  // receive in reverse send order
      comm.recv(a, 0, /*tag=*/7);
      EXPECT_FLOAT_EQ(a[0], 1.0f);
      EXPECT_FLOAT_EQ(b[0], 2.0f);
    }
  });
}

TEST(Comm, SplitFormsSubgroupsWithReorderedRanks) {
  run_ranks(6, [](Communicator& comm) {
    // Even ranks form group 0, odd ranks group 1; key reverses order.
    Communicator sub = comm.split(comm.rank() % 2, -comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Highest parent rank gets child rank 0 because of the negated key.
    if (comm.rank() == 4) {
      EXPECT_EQ(sub.rank(), 0);
    }
    if (comm.rank() == 0) {
      EXPECT_EQ(sub.rank(), 2);
    }
    std::vector<float> data{1.0f};
    sub.allreduce(data);
    EXPECT_FLOAT_EQ(data[0], 3.0f);
  });
}

TEST(Comm, SplitGroupsAreIsolated) {
  run_ranks(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() / 2, comm.rank());
    std::vector<float> data{static_cast<float>(comm.rank())};
    sub.allreduce(data);
    const float expect = comm.rank() < 2 ? 1.0f : 5.0f;  // 0+1 or 2+3
    EXPECT_FLOAT_EQ(data[0], expect);
  });
}

TEST(Comm, TrafficCountersAdvance) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<float> data{1.0f, 2.0f};
    comm.allreduce(data);
    comm.barrier();
    EXPECT_GT(comm.bytes_reduced(), 0u);
  });
}

TEST(Comm, SingleRankCollectivesAreIdentity) {
  run_ranks(1, [](Communicator& comm) {
    std::vector<float> data{3.5f};
    comm.allreduce(data);
    EXPECT_FLOAT_EQ(data[0], 3.5f);
    comm.broadcast(data, 0);
    EXPECT_FLOAT_EQ(data[0], 3.5f);
    comm.barrier();
  });
}

TEST(Comm, RankExceptionPropagatesToLauncher) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           if (comm.rank() == 1) throw Error("rank failure");
                         }),
               Error);
}

}  // namespace
}  // namespace matgpt
