// Tests for the core pipeline: trainer mechanics (loss descent, schedules,
// precision emulation, data-parallel lockstep), config tables, and the
// comparative-study driver.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/study.h"

namespace matgpt::core {
namespace {

data::TokenDataset tiny_dataset(const tok::BpeTokenizer& tk) {
  data::MaterialGenerator mgen(51);
  data::AbstractGenerator agen(52);
  std::vector<data::Document> docs;
  const auto mats = mgen.sample_unique(30);
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& m : mats) {
      docs.push_back({"X", agen.materials_abstract(m), false,
                      data::DocDomain::kMaterials});
    }
  }
  return data::TokenDataset(docs, tk, 0.1, 7);
}

tok::BpeTokenizer tiny_tokenizer() {
  data::MaterialGenerator mgen(51);
  data::AbstractGenerator agen(52);
  std::vector<std::string> texts;
  for (const auto& m : mgen.sample_unique(30)) {
    texts.push_back(agen.materials_abstract(m));
  }
  return tok::BpeTokenizer::train(texts, tok::TokenizerKind::kHuggingFace,
                                  380);
}

nn::GptConfig tiny_gpt(std::int32_t vocab) {
  nn::GptConfig c;
  c.vocab_size = vocab;
  c.hidden = 32;
  c.n_layers = 2;
  c.n_heads = 2;
  c.max_seq = 32;
  return c;
}

TEST(TrainConfig, Validation) {
  TrainConfig c;
  c.batch_seqs = 7;
  c.dp_ranks = 2;
  EXPECT_THROW(c.validate(), Error);  // 7 % 2 != 0
  c.batch_seqs = 8;
  EXPECT_NO_THROW(c.validate());
  c.steps = 0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Trainer, LossDecreasesOnSyntheticCorpus) {
  const auto tk = tiny_tokenizer();
  const auto ds = tiny_dataset(tk);
  nn::GptModel model(tiny_gpt(tk.vocab_size()));
  TrainConfig tc;
  tc.steps = 60;
  tc.batch_seqs = 4;
  tc.seq = 24;
  tc.eval_every = 20;
  const auto curve = train_gpt(model, ds, tc);
  ASSERT_GE(curve.points.size(), 3u);
  EXPECT_LT(curve.final_train_loss(), curve.points.front().train_loss * 0.8);
  EXPECT_LT(curve.final_val_loss(), curve.points.front().val_loss);
  EXPECT_GT(curve.tail_val_loss(2), 0.0);
}

TEST(Trainer, LambPathRuns) {
  const auto tk = tiny_tokenizer();
  const auto ds = tiny_dataset(tk);
  nn::GptModel model(tiny_gpt(tk.vocab_size()));
  TrainConfig tc;
  tc.steps = 30;
  tc.batch_seqs = 8;
  tc.seq = 24;
  tc.optimizer = OptimizerKind::kLamb;
  tc.lr = 6e-3;
  const auto curve = train_gpt(model, ds, tc);
  EXPECT_LT(curve.final_train_loss(), curve.points.front().train_loss);
}

TEST(Trainer, DataParallelMatchesSerialTraining) {
  // The lockstep property: DP across 2 ranks with the same global batch
  // produces (numerically near-)identical weights to serial training.
  const auto tk = tiny_tokenizer();
  const auto ds = tiny_dataset(tk);
  TrainConfig tc;
  tc.steps = 10;
  tc.batch_seqs = 4;
  tc.seq = 16;
  tc.eval_every = 5;

  nn::GptModel serial(tiny_gpt(tk.vocab_size()));
  tc.dp_ranks = 1;
  train_gpt(serial, ds, tc);

  nn::GptModel parallel(tiny_gpt(tk.vocab_size()));
  tc.dp_ranks = 2;
  train_gpt(parallel, ds, tc);

  const auto ps = serial.parameters();
  const auto pp = parallel.parameters();
  ASSERT_EQ(ps.size(), pp.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::int64_t j = 0; j < ps[i].var.value().numel(); ++j) {
      max_diff = std::max(
          max_diff, static_cast<double>(std::fabs(
                        ps[i].var.value()[j] - pp[i].var.value()[j])));
    }
  }
  EXPECT_LT(max_diff, 5e-3) << "replicas drifted from the serial reference";
}

TEST(Trainer, PrecisionEmulationQuantizesWeights) {
  const auto tk = tiny_tokenizer();
  const auto ds = tiny_dataset(tk);
  nn::GptModel model(tiny_gpt(tk.vocab_size()));
  TrainConfig tc;
  tc.steps = 5;
  tc.batch_seqs = 2;
  tc.seq = 16;
  tc.precision = DType::kBFloat16;
  train_gpt(model, ds, tc);
  // Every weight must sit exactly on the bf16 grid.
  for (const auto& p : model.parameters()) {
    for (std::int64_t j = 0; j < p.var.value().numel(); ++j) {
      const float v = p.var.value()[j];
      EXPECT_EQ(v, round_bf16(v)) << p.name;
    }
  }
}

TEST(Trainer, BertPathReducesMlmLoss) {
  const auto tk = tiny_tokenizer();
  const auto ds = tiny_dataset(tk);
  nn::BertConfig bc;
  bc.vocab_size = tk.vocab_size();
  bc.hidden = 32;
  bc.n_layers = 2;
  bc.n_heads = 2;
  bc.max_seq = 32;
  nn::BertEncoder bert(bc);
  TrainConfig tc;
  tc.steps = 40;
  tc.batch_seqs = 4;
  tc.seq = 24;
  const auto curve = train_bert(bert, ds, tc);
  EXPECT_LT(curve.final_train_loss(), curve.points.front().train_loss);
}

TEST(Configs, Table2MatchesThePaper) {
  const auto specs = table2_specs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].hidden, 2304);
  EXPECT_EQ(specs[0].head_dim, 96);
  EXPECT_EQ(specs[1].hidden, 4096);
  EXPECT_EQ(specs[1].head_dim, 128);
  for (const auto& s : specs) {
    EXPECT_EQ(s.hidden / s.n_heads, s.head_dim);
  }
}

TEST(Configs, Table3MatchesThePaper) {
  const auto rows = table3_rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_STREQ(rows[0].optimizer, "Adam");
  EXPECT_DOUBLE_EQ(rows[0].beta2, 0.95);
  EXPECT_STREQ(rows[1].optimizer, "LAMB");
  EXPECT_DOUBLE_EQ(rows[1].beta2, 0.999);
  EXPECT_DOUBLE_EQ(rows[1].lr, 0.01);
  EXPECT_STREQ(rows[2].batch_tokens, "4M");
}

TEST(Configs, Fig13GridCoversTheStudyDimensions) {
  const auto specs = fig13_experiments();
  ASSERT_GE(specs.size(), 8u);
  bool has_spm = false, has_small_vocab = false, has_adam = false,
       has_big = false, has_neox = false;
  for (const auto& s : specs) {
    has_spm |= s.tokenizer == tok::TokenizerKind::kSentencePiece;
    has_small_vocab |= s.vocab < 512;
    has_adam |= s.optimizer == OptimizerKind::kAdam;
    has_big |= s.big_model;
    has_neox |= s.arch == nn::ArchFamily::kNeoX;
  }
  EXPECT_TRUE(has_spm && has_small_vocab && has_adam && has_big && has_neox);
}

TEST(Configs, ScaledModelsKeepTheSizeOrdering) {
  ExperimentSpec small;
  ExperimentSpec big;
  big.big_model = true;
  const auto cs = scaled_model_config(small, 32);
  const auto cb = scaled_model_config(big, 32);
  nn::GptModel ms(cs), mb(cb);
  EXPECT_GT(mb.param_count(), 2 * ms.param_count());
}

TEST(Study, PipelinePreparesAndScreens) {
  StudyConfig sc;
  sc.corpus_scale = 4e-6;
  sc.n_materials = 60;
  sc.steps = 10;
  sc.seq = 24;
  ComparativeStudy study(sc);
  study.prepare_corpus();
  EXPECT_FALSE(study.screened_corpus().empty());
  EXPECT_EQ(study.materials().size(), 60u);
  EXPECT_GT(study.screen_quality().precision, 0.8);
  EXPECT_GT(study.screen_quality().recall, 0.8);
  // Screened corpus keeps mostly materials docs.
  std::size_t mat = 0;
  for (const auto& d : study.screened_corpus()) {
    mat += d.domain == data::DocDomain::kMaterials;
  }
  EXPECT_GT(static_cast<double>(mat) / study.screened_corpus().size(), 0.8);
}

TEST(Study, DiskCacheRoundTripsExperiments) {
  StudyConfig sc;
  sc.corpus_scale = 4e-6;
  sc.n_materials = 60;
  sc.steps = 8;
  sc.seq = 24;
  sc.cache_dir = "/tmp/matgpt_study_cache_test";
  std::filesystem::remove_all(sc.cache_dir);
  std::filesystem::create_directories(sc.cache_dir);
  ExperimentSpec spec{"cached", nn::ArchFamily::kLLaMA,
                      tok::TokenizerKind::kHuggingFace, 400,
                      OptimizerKind::kAdam, 4, false, DType::kFloat32};
  ComparativeStudy study(sc);
  const auto first = study.run_experiment(spec);

  // A fresh study instance must reload identical weights from disk.
  ComparativeStudy reloaded(sc);
  const auto second = reloaded.run_experiment(spec);
  const auto pa = first.model->parameters();
  const auto pb = second.model->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i].var.value().numel(); ++j) {
      ASSERT_EQ(pa[i].var.value()[j], pb[i].var.value()[j]) << pa[i].name;
    }
  }
  ASSERT_EQ(first.curve.points.size(), second.curve.points.size());
  EXPECT_EQ(first.curve.final_val_loss(), second.curve.final_val_loss());

  // A different spec must miss the cache (different key).
  ExperimentSpec other = spec;
  other.batch_seqs = 8;
  const auto third = reloaded.run_experiment(other);
  EXPECT_NE(third.curve.final_val_loss(), first.curve.final_val_loss());
}

TEST(Study, TokenizersAreCachedAndExperimentsRun) {
  StudyConfig sc;
  sc.corpus_scale = 4e-6;
  sc.n_materials = 60;
  sc.steps = 8;
  sc.seq = 24;
  ComparativeStudy study(sc);
  ExperimentSpec a{"a", nn::ArchFamily::kLLaMA,
                   tok::TokenizerKind::kHuggingFace, 400,
                   OptimizerKind::kAdam, 4, false, DType::kFloat32};
  ExperimentSpec b = a;
  b.label = "b";
  b.arch = nn::ArchFamily::kNeoX;
  const auto ra = study.run_experiment(a);
  const auto rb = study.run_experiment(b);
  // Same (kind, vocab) => the identical tokenizer object (controlled study).
  EXPECT_EQ(ra.tokenizer.get(), rb.tokenizer.get());
  EXPECT_FALSE(ra.curve.points.empty());
  EXPECT_EQ(ra.model->config().arch, nn::ArchFamily::kLLaMA);
  EXPECT_EQ(rb.model->config().arch, nn::ArchFamily::kNeoX);
}

}  // namespace
}  // namespace matgpt::core
