// Tests for src/serve/workloads: the JSON-subset grammar compiler (char DFA
// + token-level lift over a BPE vocab), masked sampling byte-identity, the
// engine's constrained-decode and prefill-only embedding request classes,
// and the mixed-workload trace knobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "nn/bert.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/trace.h"
#include "serve/workloads/embed.h"
#include "serve/workloads/grammar.h"
#include "tokenizer/bpe.h"

namespace matgpt {
namespace {

using serve::workloads::CharDfa;
using serve::workloads::GrammarRoot;
using serve::workloads::GrammarSpec;
using serve::workloads::TokenDfa;

// ---------------------------------------------------------------------------
// Char-level DFA
// ---------------------------------------------------------------------------

bool accepts(const CharDfa& dfa, const std::string& text) {
  const std::int32_t s = dfa.walk(dfa.start, text);
  return s >= 0 && dfa.accept[static_cast<std::size_t>(s)] != 0;
}

bool legal_prefix(const CharDfa& dfa, const std::string& text) {
  return dfa.walk(dfa.start, text) >= 0;
}

TEST(CharDfaTest, AcceptsCompleteObjectsRejectsPrefixes) {
  GrammarSpec spec;  // root = kObject
  const CharDfa dfa = CharDfa::compile(spec);
  EXPECT_TRUE(accepts(dfa, "{}"));
  EXPECT_TRUE(accepts(dfa, "{\"a\": 1}"));
  EXPECT_TRUE(accepts(dfa, "{\"a\": [1, 2], \"b\": {\"c\": null}}"));
  EXPECT_TRUE(accepts(dfa, " { \"k\" : true } "));
  // Legal-but-incomplete prefixes: reachable, not accepting.
  EXPECT_TRUE(legal_prefix(dfa, "{\"a\":"));
  EXPECT_FALSE(accepts(dfa, "{\"a\":"));
  EXPECT_TRUE(legal_prefix(dfa, "{\"a\": [1,"));
  // Root constraint: a bare array or scalar never starts.
  EXPECT_FALSE(legal_prefix(dfa, "["));
  EXPECT_FALSE(legal_prefix(dfa, "1"));
  EXPECT_FALSE(legal_prefix(dfa, "\""));
  // Structurally illegal continuations die immediately.
  EXPECT_FALSE(legal_prefix(dfa, "{,"));
  EXPECT_FALSE(legal_prefix(dfa, "{\"a\" 1"));
  EXPECT_FALSE(legal_prefix(dfa, "{\"a\": 1,}"));
  EXPECT_FALSE(legal_prefix(dfa, "{}x"));
}

TEST(CharDfaTest, ValueRootAcceptsScalars) {
  GrammarSpec spec;
  spec.root = GrammarRoot::kValue;
  const CharDfa dfa = CharDfa::compile(spec);
  EXPECT_TRUE(accepts(dfa, "true"));
  EXPECT_TRUE(accepts(dfa, "false"));
  EXPECT_TRUE(accepts(dfa, "null"));
  EXPECT_TRUE(accepts(dfa, "\"hi\""));
  EXPECT_TRUE(accepts(dfa, "-1.5e3"));
  EXPECT_TRUE(accepts(dfa, "0"));
  EXPECT_TRUE(accepts(dfa, "[\"a\", {\"b\": 2}]"));
  EXPECT_FALSE(legal_prefix(dfa, "tru3"));
  EXPECT_FALSE(accepts(dfa, "truefalse"));
}

TEST(CharDfaTest, NumberGrammarEdges) {
  GrammarSpec spec;
  spec.root = GrammarRoot::kValue;
  const CharDfa dfa = CharDfa::compile(spec);
  EXPECT_TRUE(accepts(dfa, "10"));
  EXPECT_TRUE(accepts(dfa, "1.25"));
  EXPECT_TRUE(accepts(dfa, "1e9"));
  EXPECT_TRUE(accepts(dfa, "1.5E+10"));
  EXPECT_TRUE(accepts(dfa, "-0.5"));
  // JSON forbids leading zeros, bare '.', trailing '.', '+' signs.
  EXPECT_FALSE(legal_prefix(dfa, "01"));
  EXPECT_FALSE(legal_prefix(dfa, "+1"));
  EXPECT_FALSE(legal_prefix(dfa, ".5"));
  EXPECT_FALSE(accepts(dfa, "1."));
  EXPECT_FALSE(accepts(dfa, "1e"));
  EXPECT_FALSE(accepts(dfa, "1e+"));
  EXPECT_FALSE(accepts(dfa, "-"));
}

TEST(CharDfaTest, StringEscapes) {
  GrammarSpec spec;
  spec.root = GrammarRoot::kValue;
  const CharDfa dfa = CharDfa::compile(spec);
  EXPECT_TRUE(accepts(dfa, "\"a\\\"b\""));
  EXPECT_TRUE(accepts(dfa, "\"\\n\\t\\\\\""));
  EXPECT_FALSE(legal_prefix(dfa, "\"\\x"));
  // Control bytes below 0x20 are illegal inside strings.
  EXPECT_FALSE(legal_prefix(dfa, std::string("\"a\x01", 3)));
}

TEST(CharDfaTest, DepthBoundMakesTheLanguageRegular) {
  GrammarSpec spec;
  spec.root = GrammarRoot::kArray;
  spec.max_depth = 2;
  const CharDfa dfa = CharDfa::compile(spec);
  EXPECT_TRUE(accepts(dfa, "[[1]]"));
  EXPECT_TRUE(accepts(dfa, "[[], [2, 3]]"));
  EXPECT_TRUE(legal_prefix(dfa, "[["));
  EXPECT_FALSE(legal_prefix(dfa, "[[["));  // third level exceeds the bound

  GrammarSpec deeper = spec;
  deeper.max_depth = 3;
  const CharDfa dfa3 = CharDfa::compile(deeper);
  EXPECT_TRUE(accepts(dfa3, "[[[1]]]"));
  EXPECT_GT(dfa3.n_states(), dfa.n_states());
}

TEST(CharDfaTest, SpecValidation) {
  GrammarSpec bad;
  bad.max_depth = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad.max_depth = 9;
  EXPECT_THROW(bad.validate(), Error);
}

// ---------------------------------------------------------------------------
// Token-level DFA
// ---------------------------------------------------------------------------

// Synthetic 50-entry vocab sized to the test GptModel below: JSON fragments
// including multi-char tokens that cross several grammar states in one step.
// Ids 0-4 mirror tok::SpecialTokens (empty byte strings, never legal);
// id 3 is EOS.
std::vector<std::string> json_vocab() {
  std::vector<std::string> v(50);
  // 0..4 stay empty (specials).
  v[5] = "{";
  v[6] = "}";
  v[7] = "[";
  v[8] = "]";
  v[9] = ":";
  v[10] = ",";
  v[11] = "\"";
  for (int d = 0; d < 10; ++d) v[12 + d] = std::string(1, '0' + d);
  v[22] = "a";
  v[23] = "b";
  v[24] = "c";
  v[25] = "d";
  v[26] = "e";
  v[27] = "{\"";       // spans start -> object -> key string
  v[28] = "\":";       // closes a key and lands on the ':' separator
  v[29] = ",\"";       // next-member separator + key start
  v[30] = "\"}";       // closes a string value and the object
  v[31] = "true";
  v[32] = "false";
  v[33] = "null";
  v[34] = " ";
  v[35] = "1}";        // number then object close
  v[36] = "\"a\":";    // a whole key-colon unit
  v[37] = "[]";
  v[38] = "{}";
  v[39] = "e+";        // exponent marker + sign
  v[40] = "-";
  v[41] = ".";
  v[42] = "\\";
  v[43] = "\\n";
  v[44] = "f";
  v[45] = "g";
  v[46] = "h";
  v[47] = "x";
  v[48] = "y";
  v[49] = "z";
  return v;
}

constexpr std::int32_t kEos = 3;

TEST(TokenDfaTest, MultiCharTokensSpanGrammarStates) {
  const std::vector<std::string> vocab = json_vocab();
  const TokenDfa dfa = TokenDfa::compile(GrammarSpec{}, vocab, kEos);
  const std::int32_t s0 = dfa.start();
  // `{"` crosses start -> object-first -> in-key in one token.
  EXPECT_GE(dfa.next(s0, 27), 0);
  // `{}` is a complete object in one token: successor accepts EOS.
  const std::int32_t done = dfa.next(s0, 38);
  ASSERT_GE(done, 0);
  EXPECT_TRUE(dfa.eos_legal(done));
  // `"}` is illegal at the very start (root object required).
  EXPECT_LT(dfa.next(s0, 30), 0);
  // Walk {"a": 1} out of multi-char pieces:
  // {" a ": <sp> 1} — every hop must stay legal.
  std::int32_t s = s0;
  for (const std::int32_t t : {27, 22, 28, 34, 35}) {
    s = dfa.next(s, t);
    ASSERT_GE(s, 0) << "token " << t << " should be legal";
  }
  EXPECT_TRUE(dfa.eos_legal(s));
}

TEST(TokenDfaTest, EosOnlyLegalAtAcceptingStates) {
  const std::vector<std::string> vocab = json_vocab();
  const TokenDfa dfa = TokenDfa::compile(GrammarSpec{}, vocab, kEos);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(dfa.vocab_size()));
  // Start state: nothing emitted yet, EOS illegal.
  EXPECT_FALSE(dfa.eos_legal(dfa.start()));
  dfa.legal_mask(dfa.start(), mask);
  EXPECT_EQ(mask[kEos], 0);
  // Mid-object: still illegal.
  const std::int32_t mid = dfa.next(dfa.start(), 27);  // after `{"`
  ASSERT_GE(mid, 0);
  EXPECT_FALSE(dfa.eos_legal(mid));
  // Complete object: EOS becomes legal and shows up in the mask.
  const std::int32_t done = dfa.next(dfa.start(), 38);  // after `{}`
  ASSERT_GE(done, 0);
  EXPECT_TRUE(dfa.eos_legal(done));
  dfa.legal_mask(done, mask);
  EXPECT_EQ(mask[kEos], 1);
  // EOS never has a successor edge of its own: next() is only consulted for
  // non-EOS tokens, and specials' empty byte strings are never legal.
  EXPECT_LT(dfa.next(dfa.start(), kEos), 0);
  EXPECT_LT(dfa.next(dfa.start(), 0), 0);  // pad
}

TEST(TokenDfaTest, DeadStateYieldsEmptyMask) {
  // A vocab that can open an object but never continue it: after `{` no
  // token (and not EOS) is legal.
  std::vector<std::string> vocab(50);
  vocab[5] = "{";
  const TokenDfa dfa = TokenDfa::compile(GrammarSpec{}, vocab, kEos);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(dfa.vocab_size()));
  EXPECT_EQ(dfa.legal_mask(dfa.start(), mask), 1);  // only `{`
  const std::int32_t s1 = dfa.next(dfa.start(), 5);
  ASSERT_GE(s1, 0);
  EXPECT_EQ(dfa.legal_mask(s1, mask), 0);  // dead: no continuation exists
  EXPECT_TRUE(std::all_of(mask.begin(), mask.end(),
                          [](std::uint8_t m) { return m == 0; }));
}

TEST(TokenDfaTest, PassThroughAllowsEverythingAndNeverHalts) {
  const TokenDfa dfa = TokenDfa::pass_through(50, kEos);
  EXPECT_EQ(dfa.n_states(), 1);
  EXPECT_FALSE(dfa.halt_on_eos());
  EXPECT_TRUE(dfa.eos_legal(dfa.start()));
  std::vector<std::uint8_t> mask(50);
  EXPECT_EQ(dfa.legal_mask(dfa.start(), mask), 50);
  for (std::int32_t t = 0; t < 50; ++t) {
    EXPECT_EQ(dfa.next(dfa.start(), t), dfa.start());
  }
}

TEST(TokenDfaTest, CompilesOverTrainedBpeVocab) {
  // A real trained tokenizer: multi-byte merged tokens over JSON text must
  // lift correctly, with specials (empty byte strings) never legal.
  std::vector<std::string> corpus;
  for (int i = 0; i < 32; ++i) {
    corpus.push_back("{\"key\": " + std::to_string(i) + ", \"val\": true}");
  }
  const tok::BpeTokenizer tokenizer =
      tok::BpeTokenizer::train(corpus, tok::TokenizerKind::kHuggingFace, 300);
  const TokenDfa dfa = TokenDfa::compile(GrammarSpec{}, tokenizer);
  EXPECT_EQ(dfa.vocab_size(), tokenizer.vocab_size());
  EXPECT_EQ(dfa.eos(), tok::SpecialTokens::kEos);
  // Encode a conforming document and replay it through the token DFA.
  const std::vector<std::int32_t> ids =
      tokenizer.encode("{\"key\": 7, \"val\": true}");
  std::int32_t s = dfa.start();
  for (const std::int32_t id : ids) {
    s = dfa.next(s, id);
    ASSERT_GE(s, 0) << "token \"" << tokenizer.token_bytes(id)
                    << "\" must be legal mid-document";
  }
  EXPECT_TRUE(dfa.eos_legal(s));
  // Specials are never legal anywhere.
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(dfa.vocab_size()));
  dfa.legal_mask(dfa.start(), mask);
  for (std::int32_t sp = 0; sp < tok::SpecialTokens::kCount; ++sp) {
    EXPECT_EQ(mask[sp], 0);
  }
}

// ---------------------------------------------------------------------------
// Engine integration: constrained decode
// ---------------------------------------------------------------------------

nn::GptConfig wl_config() {
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = 1;
  c.max_seq = 64;
  return c;
}

serve::Request wl_request(std::uint64_t id, std::int64_t max_new,
                          float temperature) {
  serve::Request req;
  req.id = id;
  for (std::int64_t t = 0; t < 6; ++t) {
    req.prompt.push_back(static_cast<std::int32_t>((id * 11 + t * 5) % 50));
  }
  req.max_new_tokens = max_new;
  req.sampling.temperature = temperature;
  if (temperature > 0.0f) {
    req.sampling.top_k = 20;
    req.sampling.top_p = 0.9f;
  }
  req.sampling.seed = 0x51ed + id * 7919;
  return req;
}

// Generated suffix of a result (tokens = prompt + generated).
std::vector<std::int32_t> generated(const serve::RequestResult& r) {
  const std::size_t gen = static_cast<std::size_t>(r.generated_tokens);
  return {r.tokens.end() - static_cast<std::ptrdiff_t>(gen),
          r.tokens.end()};
}

TEST(EngineGrammarTest, EverySampledTokenIsDfaLegal) {
  nn::GptModel model(wl_config());
  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.workloads.grammar = true;
  serve::InferenceEngine engine(model, ec);

  const auto dfa = std::make_shared<const TokenDfa>(
      TokenDfa::compile(GrammarSpec{}, json_vocab(), kEos));
  std::vector<std::future<serve::RequestResult>> futures;
  for (std::uint64_t id = 0; id < 12; ++id) {
    serve::Request req = wl_request(id, 24, id % 3 == 0 ? 0.0f : 1.0f);
    req.grammar = dfa;
    futures.push_back(engine.submit(std::move(req)));
  }
  engine.run_until_idle();

  int eos_finished = 0;
  for (auto& f : futures) {
    const serve::RequestResult r = f.get();
    ASSERT_TRUE(r.status == serve::RequestStatus::kOk ||
                r.status == serve::RequestStatus::kGrammarDead)
        << status_name(r.status);
    EXPECT_TRUE(r.constrained);
    // Replay the generated tokens through the DFA: every hop legal, EOS
    // only as a legal final token.
    std::int32_t s = dfa->start();
    const std::vector<std::int32_t> gen = generated(r);
    for (std::size_t i = 0; i < gen.size(); ++i) {
      if (gen[i] == kEos) {
        EXPECT_TRUE(dfa->eos_legal(s));
        EXPECT_EQ(i + 1, gen.size()) << "EOS must be the final token";
        ++eos_finished;
        break;
      }
      s = dfa->next(s, gen[i]);
      ASSERT_GE(s, 0) << "sampled token " << gen[i]
                      << " illegal at position " << i;
    }
  }
  EXPECT_GT(eos_finished, 0) << "no request ever completed a document";
  EXPECT_EQ(engine.stats().grammar_requests(), 12u);
  EXPECT_GT(engine.stats().grammar_masked_tokens(), 0u);
}

TEST(EngineGrammarTest, AllOnesMaskIsByteIdenticalToUnconstrained) {
  nn::GptModel model(wl_config());
  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.workloads.grammar = true;

  std::map<std::uint64_t, std::vector<std::int32_t>> plain;
  {
    serve::InferenceEngine engine(model, ec);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 8; ++id) {
      futures.push_back(
          engine.submit(wl_request(id, 16, id % 2 == 0 ? 0.0f : 0.8f)));
    }
    engine.run_until_idle();
    for (auto& f : futures) {
      serve::RequestResult r = f.get();
      plain.emplace(r.id, std::move(r.tokens));
    }
  }
  {
    const auto pass = std::make_shared<const TokenDfa>(
        TokenDfa::pass_through(50, kEos));
    serve::InferenceEngine engine(model, ec);
    std::vector<std::future<serve::RequestResult>> futures;
    for (std::uint64_t id = 0; id < 8; ++id) {
      serve::Request req = wl_request(id, 16, id % 2 == 0 ? 0.0f : 0.8f);
      req.grammar = pass;
      futures.push_back(engine.submit(std::move(req)));
    }
    engine.run_until_idle();
    for (auto& f : futures) {
      const serve::RequestResult r = f.get();
      EXPECT_EQ(r.status, serve::RequestStatus::kOk);
      EXPECT_EQ(r.tokens, plain.at(r.id))
          << "all-ones mask diverged for request " << r.id;
    }
  }
}

TEST(EngineGrammarTest, DeadStateFailsDeterministicallyNotHangs) {
  nn::GptModel model(wl_config());
  serve::EngineConfig ec;
  ec.workloads.grammar = true;
  serve::InferenceEngine engine(model, ec);

  std::vector<std::string> vocab(50);
  vocab[5] = "{";  // only legal opener, then nothing can follow
  const auto dfa = std::make_shared<const TokenDfa>(
      TokenDfa::compile(GrammarSpec{}, vocab, kEos));
  serve::Request req = wl_request(1, 16, 0.8f);
  req.grammar = dfa;
  auto future = engine.submit(std::move(req));
  engine.run_until_idle();  // must terminate
  const serve::RequestResult r = future.get();
  EXPECT_EQ(r.status, serve::RequestStatus::kGrammarDead);
  EXPECT_EQ(r.generated_tokens, 1);  // the forced `{`
  EXPECT_EQ(generated(r), std::vector<std::int32_t>{5});
  EXPECT_EQ(engine.stats().grammar_dead(), 1u);
}

TEST(EngineGrammarTest, ValidationAndAdmissionRejections) {
  nn::GptModel model(wl_config());
  {
    // map_classes needs the priority scheduler to mean anything.
    serve::EngineConfig ec;
    ec.workloads.map_classes = true;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
    ec.scheduler = serve::sched::Policy::kPriority;
    serve::InferenceEngine ok(model, ec);
  }
  {
    serve::EngineConfig ec;
    ec.workloads.max_embed_batch = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.workloads.grammar_max_states = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  const auto dfa = std::make_shared<const TokenDfa>(
      TokenDfa::compile(GrammarSpec{}, json_vocab(), kEos));
  {
    // Grammar class off: constrained requests are rejected loudly.
    serve::EngineConfig ec;
    serve::InferenceEngine engine(model, ec);
    serve::Request req = wl_request(1, 8, 0.0f);
    req.grammar = dfa;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  {
    serve::EngineConfig ec;
    ec.workloads.grammar = true;
    serve::InferenceEngine engine(model, ec);
    // Vocab mismatch: DFA compiled for 50, engine model also 50 — build a
    // mismatched one to prove the check fires.
    const auto wrong = std::make_shared<const TokenDfa>(
        TokenDfa::pass_through(49, kEos));
    serve::Request req = wl_request(2, 8, 0.0f);
    req.grammar = wrong;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
    // State-count cap.
    serve::EngineConfig tight = ec;
    tight.workloads.grammar_max_states = 2;
    serve::InferenceEngine capped(model, tight);
    serve::Request big = wl_request(3, 8, 0.0f);
    big.grammar = dfa;  // JSON grammar has far more than 2 states
    EXPECT_THROW(capped.submit(std::move(big)), Error);
    // Grammar + speculation cannot coexist per-request either.
    serve::Request spec = wl_request(4, 8, 0.0f);
    spec.grammar = dfa;
    spec.spec_k = 2;
    EXPECT_THROW(engine.submit(std::move(spec)), Error);
  }
}

// ---------------------------------------------------------------------------
// Embeddings: pooling runner + engine request class
// ---------------------------------------------------------------------------

nn::BertConfig bert_config() {
  nn::BertConfig c;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.max_seq = 32;
  return c;
}

std::vector<std::int32_t> embed_tokens(std::uint64_t id, std::int64_t len) {
  std::vector<std::int32_t> t;
  for (std::int64_t i = 0; i < len; ++i) {
    t.push_back(static_cast<std::int32_t>((id * 13 + i * 7) % 50));
  }
  return t;
}

TEST(EmbedRunnerTest, BatchedMeanMatchesBertEmbedBitExactly) {
  const auto encoder = std::make_shared<nn::BertEncoder>(bert_config());
  std::vector<std::vector<std::int32_t>> batch;
  for (std::uint64_t id = 0; id < 3; ++id) {
    batch.push_back(embed_tokens(id, 12));
  }
  const std::vector<std::vector<float>> pooled = serve::workloads::embed_batch(
      *encoder, batch, serve::EmbedReduce::kMean);
  ASSERT_EQ(pooled.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::vector<float> solo = encoder->embed(batch[i]);
    ASSERT_EQ(pooled[i].size(), solo.size());
    for (std::size_t c = 0; c < solo.size(); ++c) {
      EXPECT_EQ(pooled[i][c], solo[c])
          << "row " << i << " dim " << c << " not bit-identical";
    }
  }
}

TEST(EmbedRunnerTest, ClsReduceTakesRowZero) {
  const auto encoder = std::make_shared<nn::BertEncoder>(bert_config());
  const std::vector<std::vector<std::int32_t>> batch{embed_tokens(1, 8)};
  const auto cls = serve::workloads::embed_batch(*encoder, batch,
                                                 serve::EmbedReduce::kCls);
  const auto mean = serve::workloads::embed_batch(*encoder, batch,
                                                  serve::EmbedReduce::kMean);
  ASSERT_EQ(cls[0].size(), mean[0].size());
  EXPECT_NE(cls[0], mean[0]);  // different pooling, different vector
  EXPECT_EQ(cls[0], serve::workloads::embed_one(*encoder, batch[0],
                                                serve::EmbedReduce::kCls));
}

TEST(EngineEmbedTest, PrefillOnlyRequestsReturnExactEmbeddings) {
  nn::GptModel model(wl_config());
  const auto encoder = std::make_shared<const nn::BertEncoder>(bert_config());
  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.workloads.embedder = encoder;
  ec.workloads.max_embed_batch = 4;
  serve::InferenceEngine engine(model, ec);

  // Mixed lengths: same-length requests batch into one forward, and the
  // pooled vectors stay bit-identical to solo BertEncoder::embed runs.
  std::vector<std::future<serve::RequestResult>> futures;
  std::vector<std::vector<std::int32_t>> prompts;
  for (std::uint64_t id = 0; id < 6; ++id) {
    serve::Request req;
    req.id = id;
    req.prompt = embed_tokens(id, id < 4 ? 10 : 14);
    req.embed = true;
    prompts.push_back(req.prompt);
    futures.push_back(engine.submit(std::move(req)));
  }
  engine.run_until_idle();
  for (auto& f : futures) {
    const serve::RequestResult r = f.get();
    EXPECT_EQ(r.status, serve::RequestStatus::kOk);
    EXPECT_TRUE(r.embed);
    EXPECT_EQ(r.generated_tokens, 0);
    const std::vector<float> solo = encoder->embed(prompts[r.id]);
    EXPECT_EQ(r.embedding, solo)
        << "engine embedding diverged from solo encode for " << r.id;
  }
  EXPECT_EQ(engine.stats().embed_requests(), 6u);
  // 6 sequences in at most 3 forwards (4+2 same-length groups): batching
  // actually happened.
  EXPECT_LE(engine.stats().embed_forwards(), 3u);
  EXPECT_EQ(engine.stats().embed_batched_seqs(), 6u);
}

TEST(EngineEmbedTest, MixedGenerationAndEmbeddingShareOneEngine) {
  nn::GptModel model(wl_config());
  const auto encoder = std::make_shared<const nn::BertEncoder>(bert_config());
  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.workloads.embedder = encoder;
  ec.workloads.grammar = true;
  serve::InferenceEngine engine(model, ec);
  const auto dfa = std::make_shared<const TokenDfa>(
      TokenDfa::compile(GrammarSpec{}, json_vocab(), kEos));

  std::vector<std::future<serve::RequestResult>> futures;
  for (std::uint64_t id = 0; id < 9; ++id) {
    serve::Request req = wl_request(id, 12, 0.7f);
    if (id % 3 == 0) {
      req.embed = true;
      req.prompt = embed_tokens(id, 9);
    } else if (id % 3 == 1) {
      req.grammar = dfa;
    }
    futures.push_back(engine.submit(std::move(req)));
  }
  engine.run_until_idle();
  for (auto& f : futures) {
    const serve::RequestResult r = f.get();
    ASSERT_TRUE(r.status == serve::RequestStatus::kOk ||
                r.status == serve::RequestStatus::kGrammarDead);
    if (r.embed) {
      EXPECT_EQ(r.embedding.size(), 16u);
      EXPECT_EQ(r.generated_tokens, 0);
    } else {
      EXPECT_GT(r.generated_tokens, 0);
      EXPECT_TRUE(r.embedding.empty());
    }
  }
  EXPECT_EQ(engine.stats().embed_requests(), 3u);
  EXPECT_EQ(engine.stats().grammar_requests(), 3u);
}

TEST(EngineEmbedTest, AdmissionRejections) {
  nn::GptModel model(wl_config());
  {
    // No embedder configured.
    serve::EngineConfig ec;
    serve::InferenceEngine engine(model, ec);
    serve::Request req;
    req.id = 1;
    req.prompt = embed_tokens(1, 8);
    req.embed = true;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  const auto encoder = std::make_shared<const nn::BertEncoder>(bert_config());
  serve::EngineConfig ec;
  ec.workloads.embedder = encoder;
  serve::InferenceEngine engine(model, ec);
  {
    // Prompt longer than the encoder's max_seq (32).
    serve::Request req;
    req.id = 2;
    req.prompt = embed_tokens(2, 40);
    req.embed = true;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  {
    // Token outside the encoder vocab.
    serve::Request req;
    req.id = 3;
    req.prompt = {1, 2, 99};
    req.embed = true;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
  {
    // Empty prompt.
    serve::Request req;
    req.id = 4;
    req.embed = true;
    EXPECT_THROW(engine.submit(std::move(req)), Error);
  }
}

// ---------------------------------------------------------------------------
// Mixed-workload traces
// ---------------------------------------------------------------------------

TEST(WorkloadTraceTest, ZeroKnobsReproduceBaselineBitForBit) {
  serve::TraceSpec base;
  base.n_requests = 24;
  base.vocab_size = 50;
  const std::vector<serve::Request> a = serve::synth_trace(base);
  const std::vector<serve::Request> b = serve::synth_trace(base);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prompt, b[i].prompt);
    EXPECT_EQ(a[i].sampling.seed, b[i].sampling.seed);
    EXPECT_FALSE(a[i].embed);
    EXPECT_EQ(a[i].grammar, nullptr);
  }
}

TEST(WorkloadTraceTest, MixDecoratesWithoutDisturbingTheMainStream) {
  serve::TraceSpec base;
  base.n_requests = 48;
  base.vocab_size = 50;
  const std::vector<serve::Request> plain = serve::synth_trace(base);

  serve::TraceSpec mixed = base;
  mixed.embed_fraction = 0.25;
  mixed.constrained_fraction = 0.25;
  mixed.constrained_grammar = std::make_shared<const TokenDfa>(
      TokenDfa::compile(GrammarSpec{}, json_vocab(), kEos));
  mixed.embed_vocab_size = 50;
  mixed.embed_len_max = 16;
  const std::vector<serve::Request> mix = serve::synth_trace(mixed);

  ASSERT_EQ(mix.size(), plain.size());
  std::size_t embeds = 0;
  std::size_t constrained = 0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (mix[i].embed) {
      ++embeds;
      EXPECT_LE(static_cast<std::int64_t>(mix[i].prompt.size()), 16);
      continue;
    }
    if (mix[i].grammar != nullptr) {
      ++constrained;
      EXPECT_EQ(mix[i].grammar, mixed.constrained_grammar);
    }
    // Generation requests (constrained included) keep the exact prompt and
    // sampling draws of the undecorated trace.
    EXPECT_EQ(mix[i].prompt, plain[i].prompt);
    EXPECT_EQ(mix[i].sampling.seed, plain[i].sampling.seed);
    EXPECT_EQ(mix[i].max_new_tokens, plain[i].max_new_tokens);
  }
  EXPECT_GT(embeds, 0u);
  EXPECT_GT(constrained, 0u);

  // Deterministic: the same mixed spec reproduces itself.
  const std::vector<serve::Request> again = serve::synth_trace(mixed);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    EXPECT_EQ(mix[i].prompt, again[i].prompt);
    EXPECT_EQ(mix[i].embed, again[i].embed);
    EXPECT_EQ(mix[i].grammar, again[i].grammar);
  }
}

TEST(WorkloadTraceTest, SpecValidation) {
  serve::TraceSpec spec;
  spec.embed_fraction = 0.7;
  spec.constrained_fraction = 0.7;  // sum > 1
  EXPECT_THROW(serve::synth_trace(spec), Error);
  spec.embed_fraction = 0.0;
  spec.constrained_fraction = 0.5;  // no grammar attached
  EXPECT_THROW(serve::synth_trace(spec), Error);
  spec.constrained_fraction = 0.0;
  spec.embed_vocab_size = -1;
  EXPECT_THROW(serve::synth_trace(spec), Error);
}

}  // namespace
}  // namespace matgpt
