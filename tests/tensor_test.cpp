// Unit tests for Tensor storage/views, dtype emulation, raw GEMM kernels,
// and the memory tracker.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/dtype.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace matgpt {
namespace {

TEST(Tensor, ZerosShapeAndValues) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(-1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromDataValidatesCount) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f, 2.0f}), Error);
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor v = t.reshape({3, 2});
  v.at(0, 0) = 99.0f;
  EXPECT_FLOAT_EQ(t.at(0, 0), 99.0f);
}

TEST(Tensor, ReshapeInfersDimension) {
  Tensor t({4, 6});
  EXPECT_EQ(t.reshape({-1, 8}).dim(0), 3);
  EXPECT_EQ(t.reshape({2, -1}).dim(1), 12);
  EXPECT_THROW(t.reshape({-1, -1}), Error);
  EXPECT_THROW(t.reshape({5, 5}), Error);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::from_data({2}, {1, 2});
  Tensor c = t.clone();
  c[0] = 50.0f;
  EXPECT_FLOAT_EQ(t[0], 1.0f);
}

TEST(Tensor, PrefixViewSharesLeadingStorage) {
  Tensor t = Tensor::from_data({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor v = t.prefix_view({2, 2});
  EXPECT_EQ(v.numel(), 4);
  EXPECT_EQ(v.data(), t.data());  // zero-copy over the leading prefix
  EXPECT_FLOAT_EQ(v.at(1, 1), 4.0f);
  v.at(0, 0) = 99.0f;
  EXPECT_FLOAT_EQ(t.at(0, 0), 99.0f);
  EXPECT_THROW(t.prefix_view({5, 2}), Error);
}

TEST(Tensor, PrefixViewReductionsIgnoreBackingTail) {
  Tensor t = Tensor::from_data({4}, {1, 2, 3, 1000});
  Tensor v = t.prefix_view({3});
  EXPECT_DOUBLE_EQ(v.sum(), 6.0);
  EXPECT_FLOAT_EQ(v.max_abs(), 3.0f);
  Tensor c = v.clone();
  EXPECT_EQ(c.numel(), 3);  // clone copies the view, not the slab
  EXPECT_DOUBLE_EQ(c.sum(), 6.0);
}

TEST(Tensor, Transposed2d) {
  Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.transposed_2d();
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_EQ(tt.dim(1), 2);
  EXPECT_FLOAT_EQ(tt.at(2, 1), 6.0f);
  EXPECT_FLOAT_EQ(tt.at(0, 1), 4.0f);
}

TEST(Tensor, InplaceArithmetic) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {10, 20, 30});
  a.add_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  a.scale_(2.0f);
  EXPECT_FLOAT_EQ(a[2], 36.0f);
  a.fill_(7.0f);
  EXPECT_FLOAT_EQ(a[1], 7.0f);
}

TEST(Tensor, NormsAndReductions) {
  Tensor t = Tensor::from_data({2, 2}, {3, 4, 0, 0});
  EXPECT_DOUBLE_EQ(t.l2_norm(), 5.0);
  EXPECT_DOUBLE_EQ(t.sum(), 7.0);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
  Tensor n = Tensor::from_data({1}, {-9.0f});
  EXPECT_FLOAT_EQ(n.max_abs(), 9.0f);
}

TEST(Tensor, DotProduct) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {4, 5, 6});
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Tensor, UndefinedAccessThrows) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), Error);
}

TEST(Tensor, RandnMoments) {
  Rng rng(1);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 0.5f);
  double mean = t.sum() / static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 1.0, 0.03);
}

TEST(MemoryTracker, TracksAllocAndPeak) {
  auto& tracker = MemoryTracker::instance();
  const std::size_t base = tracker.current_bytes();
  tracker.reset_peak();
  {
    Tensor big({1024});
    EXPECT_EQ(tracker.current_bytes(), base + 4096);
    EXPECT_GE(tracker.peak_bytes(), base + 4096);
  }
  EXPECT_EQ(tracker.current_bytes(), base);
}

TEST(MemoryTracker, ViewsDoNotDoubleCount) {
  auto& tracker = MemoryTracker::instance();
  const std::size_t base = tracker.current_bytes();
  Tensor t({256});
  Tensor v = t.reshape({16, 16});
  EXPECT_EQ(tracker.current_bytes(), base + 1024);
}

TEST(DType, BFloat16RoundTripPreservesCoarseValues) {
  // Values representable in bf16 survive exactly.
  EXPECT_EQ(round_bf16(1.0f), 1.0f);
  EXPECT_EQ(round_bf16(-2.5f), -2.5f);
  // Fine values move to the nearest bf16 (relative error < 2^-8).
  const float x = 1.2345678f;
  const float r = round_bf16(x);
  EXPECT_NEAR(r, x, x / 128.0f);
  // Idempotence: rounding twice changes nothing.
  EXPECT_EQ(round_bf16(r), r);
}

TEST(DType, Float16Behaviour) {
  EXPECT_EQ(round_fp16(1.0f), 1.0f);
  EXPECT_EQ(round_fp16(0.5f), 0.5f);
  // Max finite fp16.
  EXPECT_EQ(round_fp16(65504.0f), 65504.0f);
  // Overflow saturates to infinity (the fp16 hazard bf16 avoids).
  EXPECT_TRUE(std::isinf(round_fp16(70000.0f)));
  EXPECT_TRUE(std::isinf(round_fp16(-70000.0f)));
  // Subnormal quantization.
  const float tiny = 3e-8f;
  const float r = round_fp16(tiny);
  EXPECT_NEAR(r, tiny, 0x1.0p-24f);
  // Idempotence.
  EXPECT_EQ(round_fp16(r), r);
}

TEST(DType, BF16HasWiderRangeThanFP16) {
  // The paper trains in bfloat16 for numerical stability: large magnitudes
  // overflow fp16 but not bf16.
  const float big = 1e20f;
  EXPECT_TRUE(std::isfinite(round_bf16(big)));
  EXPECT_TRUE(std::isinf(round_fp16(big)));
}

TEST(DType, QuantizeTensorInPlace) {
  Tensor t = Tensor::from_data({2}, {1.2345678f, 70000.0f});
  Tensor b = t.clone();
  b.quantize_(DType::kBFloat16);
  EXPECT_NE(b[0], t[0]);
  EXPECT_TRUE(std::isfinite(b[1]));
  Tensor h = t.clone();
  h.quantize_(DType::kFloat16);
  EXPECT_TRUE(std::isinf(h[1]));
}

// ---- GEMM kernels against a naive reference --------------------------------

void naive_gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += static_cast<double>(a.at(i, l)) * b.at(l, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GemmShapes, AllVariantsMatchReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + n * 100 + k));
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor expect({m, n});
  naive_gemm(a, b, expect);

  Tensor c_nn({m, n});
  kernels::gemm_nn(a.data(), b.data(), c_nn.data(), m, n, k, false);
  Tensor at = a.transposed_2d();
  Tensor c_tn({m, n});
  kernels::gemm_tn(at.data(), b.data(), c_tn.data(), m, n, k, false);
  Tensor bt = b.transposed_2d();
  Tensor c_nt({m, n});
  kernels::gemm_nt(a.data(), bt.data(), c_nt.data(), m, n, k, false);

  for (std::int64_t i = 0; i < expect.numel(); ++i) {
    EXPECT_NEAR(c_nn[i], expect[i], 1e-3) << "gemm_nn element " << i;
    EXPECT_NEAR(c_tn[i], expect[i], 1e-3) << "gemm_tn element " << i;
    EXPECT_NEAR(c_nt[i], expect[i], 1e-3) << "gemm_nt element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(8, 8, 8), std::make_tuple(16, 2, 32),
                      std::make_tuple(33, 17, 9), std::make_tuple(64, 64, 64),
                      std::make_tuple(1, 128, 1), std::make_tuple(100, 1, 50)));

TEST(Gemm, AccumulateAddsOntoExisting) {
  Tensor a = Tensor::from_data({1, 2}, {1, 2});
  Tensor b = Tensor::from_data({2, 1}, {3, 4});
  Tensor c = Tensor::from_data({1, 1}, {100});
  kernels::gemm_nn(a.data(), b.data(), c.data(), 1, 1, 2, true);
  EXPECT_FLOAT_EQ(c[0], 111.0f);
  kernels::gemm_nn(a.data(), b.data(), c.data(), 1, 1, 2, false);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
}

TEST(Kernels, SoftmaxRowNormalizesAndIsStable) {
  std::vector<float> row{1000.0f, 1001.0f, 1002.0f};  // would overflow naively
  kernels::softmax_row(row.data(), 3);
  double sum = 0.0;
  for (float v : row) {
    EXPECT_TRUE(std::isfinite(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(row[2], row[1]);
  EXPECT_GT(row[1], row[0]);
}

TEST(Kernels, LogSumExpMatchesDirectComputation) {
  std::vector<float> row{0.1f, -0.5f, 2.0f};
  double direct = std::log(std::exp(0.1) + std::exp(-0.5) + std::exp(2.0));
  EXPECT_NEAR(kernels::logsumexp_row(row.data(), 3), direct, 1e-6);
  // Stability at large magnitudes.
  std::vector<float> big{500.0f, 500.0f};
  EXPECT_NEAR(kernels::logsumexp_row(big.data(), 2), 500.0 + std::log(2.0),
              1e-4);
}

}  // namespace
}  // namespace matgpt
