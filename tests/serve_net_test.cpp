// Tests for src/net: JSON round trips, the incremental HTTP parser
// (fragmented reads, pipelining, limit -> status mapping), config
// validation, deterministic Poisson schedules, engine lifecycle
// (start/drain/destruction mid-decode), and loopback end-to-end HTTP
// serving — including byte-identity between tokens streamed over a real
// socket and an in-process run_trace with the same seeds.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "net/event_queue.h"
#include "net/http.h"
#include "net/json.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "nn/gpt.h"
#include "nn/bert.h"
#include "serve/engine.h"
#include "serve/workloads/grammar.h"
#include "serve/trace.h"

namespace matgpt {
namespace {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(NetJson, ParsesScalarsAndNesting) {
  const net::Json v = net::Json::parse(
      R"({"a": 1, "b": [true, null, -2.5], "c": {"d": "x"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_int(), 1);
  const net::Json& b = *v.find("b");
  ASSERT_TRUE(b.is_array());
  EXPECT_TRUE(b.items()[0].as_bool());
  EXPECT_TRUE(b.items()[1].is_null());
  EXPECT_DOUBLE_EQ(b.items()[2].as_number(), -2.5);
  EXPECT_EQ(v.find("c")->find("d")->as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(NetJson, IntegerRoundTripIsExact) {
  // Request ids are uint64-ish; they must survive dump -> parse exactly.
  const std::int64_t big = 9007199254740993LL;  // 2^53 + 1
  net::Json obj = net::Json::object();
  obj.set("id", net::Json::number(big));
  const net::Json back = net::Json::parse(obj.dump());
  EXPECT_EQ(back.find("id")->as_int(), big);
}

TEST(NetJson, StringEscapes) {
  const net::Json v = net::Json::parse(R"("a\"b\\c\nAé")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nA\xc3\xa9");
  // Control characters are escaped on dump and survive the round trip.
  net::Json s = net::Json::string(std::string("x\n\t\x01y"));
  EXPECT_EQ(net::Json::parse(s.dump()).as_string(), "x\n\t\x01y");
}

TEST(NetJson, Uint64SeedsSurviveAsInt64BitPattern) {
  // Integers in (INT64_MAX, UINT64_MAX] — uint64 sampling seeds — parse
  // to the int64 bit pattern, so a cast recovers them exactly.
  const net::Json v = net::Json::parse(R"({"seed": 18446744073709551615})");
  EXPECT_EQ(static_cast<std::uint64_t>(v.find("seed")->as_int()),
            18446744073709551615ull);
  // One past UINT64_MAX overflows to the double path and as_int rejects
  // it as out of range; so does a far-negative integer. (Negatives just
  // below INT64_MIN that ROUND to -2^63 are accepted as INT64_MIN — the
  // double path cannot tell them apart.)
  EXPECT_THROW(net::Json::parse("18446744073709551616").as_int(), Error);
  EXPECT_THROW(net::Json::parse("-18446744073709551615").as_int(), Error);
}

TEST(NetJson, RejectsMalformed) {
  EXPECT_THROW(net::Json::parse("{"), Error);
  EXPECT_THROW(net::Json::parse("[1,]"), Error);
  EXPECT_THROW(net::Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(net::Json::parse(""), Error);
  EXPECT_THROW(net::Json::parse("nul"), Error);
  // as_int on a non-integral number throws instead of truncating.
  EXPECT_THROW(net::Json::parse("1.5").as_int(), Error);
}

// ---------------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------------

constexpr std::string_view kPost =
    "POST /v1/generate HTTP/1.1\r\n"
    "Host: x\r\n"
    "Content-Length: 5\r\n"
    "\r\n"
    "hello";

TEST(NetHttpParser, ParsesWholeRequest) {
  net::HttpParser p;
  p.feed(kPost);
  net::HttpRequest req;
  ASSERT_EQ(p.next(req), net::HttpParser::Status::kRequest);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/v1/generate");
  EXPECT_EQ(req.body, "hello");
  EXPECT_TRUE(req.keep_alive);
  ASSERT_NE(req.header("content-length"), nullptr);  // case-insensitive
  EXPECT_EQ(*req.header("CONTENT-LENGTH"), "5");
  EXPECT_EQ(p.next(req), net::HttpParser::Status::kNeedMore);
}

TEST(NetHttpParser, ByteAtATimeFragmentation) {
  // The parser must accept ANY framing recv() produces; a byte at a time
  // is the adversarial case.
  net::HttpParser p;
  net::HttpRequest req;
  for (std::size_t i = 0; i < kPost.size(); ++i) {
    p.feed(kPost.substr(i, 1));
    const auto status = p.next(req);
    if (i + 1 < kPost.size()) {
      ASSERT_EQ(status, net::HttpParser::Status::kNeedMore) << "byte " << i;
    } else {
      ASSERT_EQ(status, net::HttpParser::Status::kRequest);
    }
  }
  EXPECT_EQ(req.body, "hello");
}

TEST(NetHttpParser, PipelinedRequests) {
  net::HttpParser p;
  std::string wire;
  for (int i = 0; i < 3; ++i) wire += std::string(kPost);
  // Feed all three requests in one buffer plus half of a fourth.
  wire += "POST /v1/gen";
  p.feed(wire);
  net::HttpRequest req;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(p.next(req), net::HttpParser::Status::kRequest) << i;
    EXPECT_EQ(req.body, "hello");
  }
  EXPECT_EQ(p.next(req), net::HttpParser::Status::kNeedMore);
  p.feed("erate HTTP/1.1\r\nContent-Length: 2\r\n\r\nok");
  ASSERT_EQ(p.next(req), net::HttpParser::Status::kRequest);
  EXPECT_EQ(req.body, "ok");
}

TEST(NetHttpParser, OversizedHeadersYield431) {
  net::HttpParser p(net::HttpParser::Limits{.max_header_bytes = 64,
                                            .max_body_bytes = 1024});
  // An unterminated header block larger than the limit must error even
  // though no complete request ever arrives.
  p.feed("GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'a'));
  net::HttpRequest req;
  ASSERT_EQ(p.next(req), net::HttpParser::Status::kError);
  EXPECT_EQ(p.error_status(), 431);
  // The parser stays in error.
  p.feed("\r\n\r\n");
  EXPECT_EQ(p.next(req), net::HttpParser::Status::kError);
}

TEST(NetHttpParser, OversizedBodyYields413) {
  net::HttpParser p(net::HttpParser::Limits{.max_header_bytes = 1024,
                                            .max_body_bytes = 8});
  p.feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
  net::HttpRequest req;
  ASSERT_EQ(p.next(req), net::HttpParser::Status::kError);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(NetHttpParser, BufferedPipelinedBytesAreCapped) {
  net::HttpParser p(net::HttpParser::Limits{.max_header_bytes = 64,
                                            .max_body_bytes = 32});
  // Simulate a connection whose response channel is owned by an in-flight
  // stream: bytes keep arriving but next() is never called. The buffer
  // must stay bounded and the parser must latch an error.
  for (int i = 0; i < 64; ++i) p.feed(std::string(16, 'x'));
  EXPECT_LE(p.buffered_bytes(), 2 * (64u + 32u));
  net::HttpRequest req;
  ASSERT_EQ(p.next(req), net::HttpParser::Status::kError);
  EXPECT_EQ(p.error_status(), 413);
  EXPECT_EQ(p.buffered_bytes(), 0u);  // memory released when latched
}

TEST(NetHttpParser, MalformedYields400) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",
      "GET  HTTP/1.1\r\n\r\n",                          // empty target
      "GET /x HTTP/1.1 extra\r\n\r\n",                  // junk after version
      "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",         // malformed field
      "GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",         // space in name
      "POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n"  // bad length
  };
  for (const char* wire : bad) {
    net::HttpParser p;
    p.feed(wire);
    net::HttpRequest req;
    ASSERT_EQ(p.next(req), net::HttpParser::Status::kError) << wire;
    EXPECT_EQ(p.error_status(), 400) << wire;
  }
}

TEST(NetHttpParser, VersionAndFramingLimits) {
  {
    net::HttpParser p;
    p.feed("GET / HTTP/2.0\r\n\r\n");
    net::HttpRequest req;
    ASSERT_EQ(p.next(req), net::HttpParser::Status::kError);
    EXPECT_EQ(p.error_status(), 505);
  }
  {
    net::HttpParser p;
    p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    net::HttpRequest req;
    ASSERT_EQ(p.next(req), net::HttpParser::Status::kError);
    EXPECT_EQ(p.error_status(), 501);
  }
}

TEST(NetHttpParser, ConnectionSemantics) {
  net::HttpParser p;
  p.feed("GET / HTTP/1.0\r\n\r\n");
  net::HttpRequest req;
  ASSERT_EQ(p.next(req), net::HttpParser::Status::kRequest);
  EXPECT_FALSE(req.keep_alive);  // 1.0 defaults to close
  p.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_EQ(p.next(req), net::HttpParser::Status::kRequest);
  EXPECT_FALSE(req.keep_alive);
}

TEST(NetHttpResponseParser, ChunkedChunksSurfacedIndividually) {
  net::HttpResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_TRUE(p.headers_complete());
  p.feed("3\r\nabc\r\n");
  p.feed("2\r\nde");  // split mid-chunk
  EXPECT_EQ(p.status(), net::HttpResponseParser::Status::kNeedMore);
  p.feed("\r\n0\r\n\r\n");
  ASSERT_EQ(p.status(), net::HttpResponseParser::Status::kDone);
  ASSERT_EQ(p.chunks().size(), 2u);
  EXPECT_EQ(p.chunks()[0], "abc");
  EXPECT_EQ(p.chunks()[1], "de");
}

// ---------------------------------------------------------------------------
// Config validation + EventQueue
// ---------------------------------------------------------------------------

TEST(NetConfig, HttpServerConfigValidate) {
  net::HttpServerConfig ok;
  EXPECT_NO_THROW(ok.validate());
  auto expect_throws = [](auto mutate) {
    net::HttpServerConfig c;
    mutate(c);
    EXPECT_THROW(c.validate(), Error);
  };
  expect_throws([](auto& c) { c.port = -1; });
  expect_throws([](auto& c) { c.port = 65536; });
  expect_throws([](auto& c) { c.backlog = 0; });
  expect_throws([](auto& c) { c.max_connections = 0; });
  expect_throws([](auto& c) { c.max_header_bytes = 0; });
  expect_throws([](auto& c) { c.max_body_bytes = 0; });
  expect_throws([](auto& c) { c.completion_queue_capacity = 0; });
}

TEST(NetConfig, LoadGenConfigValidate) {
  net::LoadGenConfig c;
  c.port = 1234;
  EXPECT_NO_THROW(c.validate());
  c.port = 0;
  EXPECT_THROW(c.validate(), Error);
  c.port = 1234;
  c.concurrency = 0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(NetEventQueue, PushDrainAndZeroCapacityThrows) {
  EXPECT_THROW(net::EventQueue(0), Error);
  net::EventQueue q(8);
  net::EngineEvent ev;
  ev.kind = net::EngineEvent::Kind::kToken;
  ev.request_id = 7;
  ev.token = 42;
  q.push(ev);
  ev.token = 43;
  q.push(ev);
  const auto out = q.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].token, 42);
  EXPECT_EQ(out[1].token, 43);
  EXPECT_TRUE(q.drain().empty());
}

// ---------------------------------------------------------------------------
// Poisson schedule determinism
// ---------------------------------------------------------------------------

TEST(NetPoisson, SameSeedBitIdentical) {
  const auto a = net::poisson_schedule(256, 50.0, 1234);
  const auto b = net::poisson_schedule(256, 50.0, 1234);
  ASSERT_EQ(a.size(), b.size());
  // Bit-identical, not approximately equal.
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  const auto c = net::poisson_schedule(256, 50.0, 1235);
  EXPECT_NE(std::memcmp(a.data(), c.data(), a.size() * sizeof(double)), 0);
}

TEST(NetPoisson, MonotoneWithPlausibleMeanRate) {
  const double rate = 200.0;
  const auto at = net::poisson_schedule(4096, rate, 99);
  for (std::size_t i = 1; i < at.size(); ++i) {
    ASSERT_GE(at[i], at[i - 1]) << i;
  }
  // Mean arrival rate over 4096 draws should be within 10% of nominal.
  const double observed = static_cast<double>(at.size()) / at.back();
  EXPECT_NEAR(observed, rate, rate * 0.10);
  EXPECT_THROW(net::poisson_schedule(4, 0.0, 1), Error);
}

// ---------------------------------------------------------------------------
// Engine lifecycle: start / drain / destruction mid-decode
// ---------------------------------------------------------------------------

nn::GptConfig tiny_gpt_config() {
  nn::GptConfig c;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.max_seq = 64;
  return c;
}

serve::TraceSpec tiny_trace_spec(std::size_t n) {
  serve::TraceSpec spec;
  spec.n_requests = n;
  spec.vocab_size = 50;
  spec.prompt_len_min = 2;
  spec.prompt_len_max = 6;
  spec.max_new_min = 2;
  spec.max_new_max = 8;
  return spec;
}

TEST(EngineLifecycle, StartServesAndDrainStopsAdmission) {
  const nn::GptModel model(tiny_gpt_config());
  serve::InferenceEngine engine(model);
  engine.start();
  EXPECT_TRUE(engine.running());

  auto trace = serve::synth_trace(tiny_trace_spec(6));
  std::vector<std::future<serve::RequestResult>> futures;
  for (auto& req : trace) futures.push_back(engine.submit(std::move(req)));
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_EQ(r.status, serve::RequestStatus::kOk);
    EXPECT_GT(r.generated_tokens, 0);
  }

  engine.drain();
  EXPECT_FALSE(engine.running());
  serve::Request late;
  late.prompt = {1, 2};
  EXPECT_THROW(engine.submit(late), Error);
  serve::Request late2;
  late2.prompt = {1, 2};
  EXPECT_FALSE(engine.try_submit(std::move(late2)).has_value());
  engine.drain();  // idempotent
}

TEST(EngineLifecycle, DrainFinishesQueuedWork) {
  // Requests still waiting in the admission queue when drain() is called
  // must run to retirement, not be dropped.
  const nn::GptModel model(tiny_gpt_config());
  serve::EngineConfig config;
  config.max_batch = 2;
  serve::InferenceEngine engine(model, config);
  auto trace = serve::synth_trace(tiny_trace_spec(8));
  std::vector<std::future<serve::RequestResult>> futures;
  for (auto& req : trace) futures.push_back(engine.submit(std::move(req)));
  engine.start();
  engine.drain();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  }
}

TEST(EngineLifecycle, DestructionDuringActiveDecodeIsSafe) {
  const nn::GptModel model(tiny_gpt_config());
  std::vector<std::future<serve::RequestResult>> futures;
  {
    serve::InferenceEngine engine(model);
    engine.start();
    auto trace = serve::synth_trace(tiny_trace_spec(8));
    for (auto& req : trace) futures.push_back(engine.submit(std::move(req)));
    // Destroy while the worker is (very likely) mid-decode: the destructor
    // drains, so every future below must still resolve.
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  }
}

// ---------------------------------------------------------------------------
// Loopback end-to-end
// ---------------------------------------------------------------------------

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  timeval tv{};
  tv.tv_sec = 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

void send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    off += static_cast<std::size_t>(w);
  }
}

/// Read until the response parser completes (or EOF/timeout).
void read_response(int fd, net::HttpResponseParser& parser) {
  char buf[4096];
  while (parser.status() == net::HttpResponseParser::Status::kNeedMore) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) break;
    parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
  }
}

std::string request_text(std::string_view method, std::string_view target,
                         std::string_view body, bool close = true) {
  std::string out = std::string(method) + " " + std::string(target) +
                    " HTTP/1.1\r\nHost: t\r\n";
  if (!body.empty()) {
    out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  if (close) out += "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

/// One blocking request/response exchange on a fresh connection.
net::HttpResponseParser exchange(std::uint16_t port, std::string_view raw) {
  const int fd = connect_loopback(port);
  send_all(fd, raw);
  net::HttpResponseParser parser;
  read_response(fd, parser);
  ::close(fd);
  return parser;
}

struct Harness {
  nn::GptModel model;
  serve::InferenceEngine engine;
  net::HttpServer server;

  explicit Harness(serve::EngineConfig engine_config = {},
                   net::HttpServerConfig server_config = {},
                   bool start_engine = true)
      : model(tiny_gpt_config()),
        engine(model, std::move(engine_config)),
        server(engine, std::move(server_config)) {
    if (start_engine) engine.start();
    server.start();
  }
  ~Harness() { server.stop(); }

  std::uint16_t port() const { return server.port(); }
};

TEST(HttpServerE2E, StreamedTokensByteIdenticalToRunTrace) {
  // Reference: the same trace run in-process on a separate engine with the
  // same config. Tokens over HTTP must match bit for bit — the transport
  // must not perturb the engine's determinism contract.
  const nn::GptModel ref_model(tiny_gpt_config());
  serve::InferenceEngine reference(ref_model);
  auto trace = serve::synth_trace(tiny_trace_spec(8));
  const auto expected = reference.run_trace(trace);

  Harness h;
  net::LoadGenConfig lg;
  lg.port = h.port();
  lg.concurrency = 3;
  const auto report = net::LoadGen(lg).run_closed(trace);

  ASSERT_EQ(report.records.size(), trace.size());
  EXPECT_EQ(report.completed_ok, trace.size());
  std::map<std::uint64_t, const net::LoadRecord*> by_id;
  for (const auto& rec : report.records) by_id[rec.id] = &rec;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& result = expected[i];
    ASSERT_TRUE(by_id.count(result.id)) << result.id;
    const net::LoadRecord& rec = *by_id[result.id];
    EXPECT_EQ(rec.http_status, 200);
    EXPECT_EQ(rec.engine_status, "ok");
    const std::vector<std::int32_t> generated(
        result.tokens.begin() +
            static_cast<std::ptrdiff_t>(result.tokens.size()) -
            result.generated_tokens,
        result.tokens.end());
    EXPECT_EQ(rec.tokens, generated) << "request " << result.id;
    EXPECT_GE(rec.ttft_s, 0.0);
  }
}

TEST(HttpServerE2E, NonStreamedResponseMatchesStreamed) {
  Harness h;
  auto trace = serve::synth_trace(tiny_trace_spec(2));
  const std::string streamed_body = net::generate_body(trace[0], true);
  const auto streamed = exchange(
      h.port(), request_text("POST", "/v1/generate", streamed_body));
  ASSERT_EQ(streamed.status_code(), 200);
  std::vector<std::int32_t> stream_tokens;
  for (const auto& chunk : streamed.chunks()) {
    const net::Json line = net::Json::parse(chunk);
    if (const net::Json* tok = line.find("token")) {
      stream_tokens.push_back(static_cast<std::int32_t>(tok->as_int()));
    }
  }

  trace[0].id = 100;  // fresh id, same seed/prompt
  const std::string plain_body = net::generate_body(trace[0], false);
  const auto plain =
      exchange(h.port(), request_text("POST", "/v1/generate", plain_body));
  ASSERT_EQ(plain.status_code(), 200);
  const net::Json body = net::Json::parse(plain.body());
  EXPECT_EQ(body.find("status")->as_string(), "ok");
  std::vector<std::int32_t> plain_tokens;
  for (const net::Json& t : body.find("tokens")->items()) {
    plain_tokens.push_back(static_cast<std::int32_t>(t.as_int()));
  }
  EXPECT_EQ(plain_tokens, stream_tokens);
}

TEST(HttpServerE2E, ErrorRoutesAndMalformedBodies) {
  Harness h;
  EXPECT_EQ(exchange(h.port(), request_text("GET", "/nope", "")).status_code(),
            404);
  EXPECT_EQ(
      exchange(h.port(), request_text("GET", "/v1/generate", "")).status_code(),
      405);
  // Malformed JSON body -> 400.
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", "/v1/generate", "{not json"))
                .status_code(),
            400);
  // Valid JSON, missing prompt -> 400.
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", "/v1/generate", R"({"id": 1})"))
                .status_code(),
            400);
  // Bad cancel id -> 400.
  EXPECT_EQ(exchange(h.port(),
                     request_text("DELETE", "/v1/requests/abc", ""))
                .status_code(),
            400);
  const auto counters = h.server.counters();
  EXPECT_EQ(counters.bad_request_400, 3u);
}

TEST(HttpServerE2E, OversizedHeadersOverSocketYield431) {
  net::HttpServerConfig sc;
  sc.max_header_bytes = 256;
  Harness h({}, sc);
  const std::string big = "GET /v1/stats HTTP/1.1\r\nX-Pad: " +
                          std::string(1024, 'p') + "\r\n\r\n";
  EXPECT_EQ(exchange(h.port(), big).status_code(), 431);
  EXPECT_EQ(h.server.counters().protocol_errors, 1u);
}

TEST(HttpServerE2E, StatsEndpointReportsEngineAndHttp) {
  Harness h;
  auto trace = serve::synth_trace(tiny_trace_spec(2));
  exchange(h.port(), request_text("POST", "/v1/generate",
                                  net::generate_body(trace[0], true)));
  const auto resp =
      exchange(h.port(), request_text("GET", "/v1/stats", ""));
  ASSERT_EQ(resp.status_code(), 200);
  const net::Json stats = net::Json::parse(resp.body());
  ASSERT_NE(stats.find("engine"), nullptr);
  ASSERT_NE(stats.find("http"), nullptr);
  EXPECT_GE(stats.find("engine")->find("requests_completed")->as_int(), 1);
  EXPECT_GE(stats.find("http")->find("streams_completed")->as_int(), 1);
}

TEST(HttpServerE2E, SessionsTwoTurnsByteIdenticalToFullHistory) {
  Harness h;
  const auto created =
      exchange(h.port(), request_text("POST", "/v1/sessions", ""));
  ASSERT_EQ(created.status_code(), 201);
  const std::uint64_t sid = static_cast<std::uint64_t>(
      net::Json::parse(created.body()).find("session_id")->as_int());
  const std::string gen_target =
      "/v1/sessions/" + std::to_string(sid) + "/generate";

  auto turn = [&](const std::string& prompt_json, std::uint64_t id)
      -> std::vector<std::int32_t> {
    const std::string body = "{\"id\":" + std::to_string(id) +
                             ",\"prompt\":" + prompt_json +
                             ",\"max_new_tokens\":6,\"temperature\":0," +
                             "\"stream\":false}";
    const auto resp =
        exchange(h.port(), request_text("POST", gen_target, body));
    EXPECT_EQ(resp.status_code(), 200);
    const net::Json parsed = net::Json::parse(resp.body());
    std::vector<std::int32_t> tokens;
    for (const net::Json& t : parsed.find("tokens")->items()) {
      tokens.push_back(static_cast<std::int32_t>(t.as_int()));
    }
    return tokens;
  };
  const std::vector<std::int32_t> t1 = turn("[3,1,4,1,5]", 1);
  ASSERT_EQ(t1.size(), 6u);
  const std::vector<std::int32_t> t2 = turn("[9,2,6]", 2);
  ASSERT_EQ(t2.size(), 6u);

  // Session status reflects both turns, with the parked KV host-resident.
  const auto info = exchange(
      h.port(), request_text("GET", "/v1/sessions/" + std::to_string(sid),
                             ""));
  ASSERT_EQ(info.status_code(), 200);
  const net::Json info_body = net::Json::parse(info.body());
  EXPECT_EQ(info_body.find("turns")->as_int(), 2);
  EXPECT_EQ(info_body.find("tokens")->as_int(), 5 + 6 + 3 + 6);
  EXPECT_FALSE(info_body.find("busy")->as_bool());
  EXPECT_EQ(info_body.find("kv_residency")->as_string(), "host");

  // A fresh sessionless request whose prompt spells out the whole
  // conversation must produce turn 2's tokens exactly (greedy).
  std::string full = "[3,1,4,1,5";
  for (const std::int32_t t : t1) full += "," + std::to_string(t);
  full += ",9,2,6]";
  const std::string body = "{\"id\":77,\"prompt\":" + full +
                           ",\"max_new_tokens\":6,\"temperature\":0," +
                           "\"stream\":false}";
  const auto fresh =
      exchange(h.port(), request_text("POST", "/v1/generate", body));
  ASSERT_EQ(fresh.status_code(), 200);
  const net::Json fresh_parsed = net::Json::parse(fresh.body());
  std::vector<std::int32_t> fresh_tokens;
  for (const net::Json& t : fresh_parsed.find("tokens")->items()) {
    fresh_tokens.push_back(static_cast<std::int32_t>(t.as_int()));
  }
  EXPECT_EQ(fresh_tokens, t2)
      << "session resume over HTTP diverged from full-history prefill";

  // /v1/stats carries the tier + session counters.
  const auto stats =
      exchange(h.port(), request_text("GET", "/v1/stats", ""));
  ASSERT_EQ(stats.status_code(), 200);
  const net::Json stats_parsed = net::Json::parse(stats.body());
  const net::Json* engine_stats = stats_parsed.find("engine");
  ASSERT_NE(engine_stats, nullptr);
  EXPECT_GE(engine_stats->find("session_parks")->as_int(), 2);
  EXPECT_GE(engine_stats->find("session_resumes")->as_int(), 1);
  EXPECT_GE(engine_stats->find("kv_tier_stores")->as_int(), 1);

  // Drop the session; the second delete 404s.
  EXPECT_EQ(exchange(h.port(),
                     request_text("DELETE",
                                  "/v1/sessions/" + std::to_string(sid),
                                  ""))
                .status_code(),
            200);
  EXPECT_EQ(exchange(h.port(),
                     request_text("DELETE",
                                  "/v1/sessions/" + std::to_string(sid),
                                  ""))
                .status_code(),
            404);
}

TEST(HttpServerE2E, SessionRouteErrors) {
  Harness h;
  // Unknown session: generate / info / delete all 404.
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", "/v1/sessions/999/generate",
                                  R"({"prompt":[1],"max_new_tokens":2})"))
                .status_code(),
            404);
  EXPECT_EQ(
      exchange(h.port(), request_text("GET", "/v1/sessions/999", ""))
          .status_code(),
      404);
  EXPECT_EQ(
      exchange(h.port(), request_text("DELETE", "/v1/sessions/999", ""))
          .status_code(),
      404);
  // Malformed session id -> 400; wrong method on the collection -> 405.
  EXPECT_EQ(
      exchange(h.port(), request_text("GET", "/v1/sessions/abc", ""))
          .status_code(),
      400);
  EXPECT_EQ(exchange(h.port(), request_text("GET", "/v1/sessions", ""))
                .status_code(),
            405);
  // First turn on a fresh session still requires a prompt (engine-level
  // check surfaces as 400).
  const auto created =
      exchange(h.port(), request_text("POST", "/v1/sessions", ""));
  ASSERT_EQ(created.status_code(), 201);
  const std::string sid = std::to_string(
      net::Json::parse(created.body()).find("session_id")->as_int());
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", "/v1/sessions/" + sid +
                                              "/generate",
                                  R"({"max_new_tokens":2})"))
                .status_code(),
            400);
}

TEST(HttpServerE2E, SessionBusy409AndRequestProgress) {
  // Engine worker NOT started: the first turn parks in the admission
  // queue, deterministically holding the session busy and its stream at
  // zero tokens.
  Harness h({}, {}, /*start_engine=*/false);
  const auto created =
      exchange(h.port(), request_text("POST", "/v1/sessions", ""));
  ASSERT_EQ(created.status_code(), 201);
  const std::string sid = std::to_string(
      net::Json::parse(created.body()).find("session_id")->as_int());
  const std::string gen_target = "/v1/sessions/" + sid + "/generate";

  const int fd = connect_loopback(h.port());
  send_all(fd, request_text(
                   "POST", gen_target,
                   R"({"id":7,"prompt":[1,2,3],"max_new_tokens":3,)"
                   R"("temperature":0,"stream":false})"));
  while (h.server.counters().streams_started < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Second request on the same session sheds with 409.
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", gen_target,
                                  R"({"prompt":[4],"max_new_tokens":2})"))
                .status_code(),
            409);

  // Progress endpoint: queued request exists with nothing streamed yet.
  const auto progress =
      exchange(h.port(), request_text("GET", "/v1/requests/7", ""));
  ASSERT_EQ(progress.status_code(), 200);
  const net::Json progress_body = net::Json::parse(progress.body());
  EXPECT_EQ(progress_body.find("state")->as_string(), "pending");
  EXPECT_EQ(progress_body.find("tokens_streamed")->as_int(), 0);

  // Let the engine run; the stream completes and the progress route 404s
  // (terminal state arrives on the stream itself).
  h.engine.start();
  net::HttpResponseParser parser;
  read_response(fd, parser);
  ::close(fd);
  EXPECT_EQ(parser.status_code(), 200);
  EXPECT_EQ(
      exchange(h.port(), request_text("GET", "/v1/requests/7", ""))
          .status_code(),
      404);
}

TEST(HttpServerE2E, ShedMapsTo429Deterministically) {
  // Engine worker NOT started + queue_capacity 1: the first request parks
  // in the admission queue, the second must shed. No timing involved.
  serve::EngineConfig ec;
  ec.queue_capacity = 1;
  Harness h(ec, {}, /*start_engine=*/false);

  auto trace = serve::synth_trace(tiny_trace_spec(2));
  const int first_fd = connect_loopback(h.port());
  send_all(first_fd, request_text("POST", "/v1/generate",
                                  net::generate_body(trace[0], true)));
  // Wait until the first request occupies the queue.
  while (h.server.counters().streams_started < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  trace[1].id = 55;
  const auto shed = exchange(h.port(),
                             request_text("POST", "/v1/generate",
                                          net::generate_body(trace[1], true)));
  EXPECT_EQ(shed.status_code(), 429);
  EXPECT_EQ(h.server.counters().shed_429, 1u);

  // Start the worker; the parked request completes and streams.
  h.engine.start();
  net::HttpResponseParser first;
  read_response(first_fd, first);
  ::close(first_fd);
  EXPECT_EQ(first.status_code(), 200);
}

TEST(HttpServerE2E, CancelBeforeFirstTokenReturnsCancelledBody) {
  // Engine worker not started: the request cannot produce a token until
  // start(), so DELETE-before-start deterministically cancels it first.
  Harness h({}, {}, /*start_engine=*/false);
  auto trace = serve::synth_trace(tiny_trace_spec(1));
  trace[0].id = 77;

  const int fd = connect_loopback(h.port());
  send_all(fd, request_text("POST", "/v1/generate",
                            net::generate_body(trace[0], true)));
  while (h.server.counters().streams_started < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto cancel =
      exchange(h.port(), request_text("DELETE", "/v1/requests/77", ""));
  EXPECT_EQ(cancel.status_code(), 202);
  EXPECT_EQ(h.server.counters().cancels_requested, 1u);

  h.engine.start();
  net::HttpResponseParser resp;
  read_response(fd, resp);
  ::close(fd);
  // No token was ever produced, so the stream never opened: the response
  // is one plain JSON document with the cancelled status.
  ASSERT_EQ(resp.status_code(), 200);
  const net::Json body = net::Json::parse(resp.body());
  EXPECT_EQ(body.find("status")->as_string(), "cancelled");
  EXPECT_EQ(body.find("tokens")->items().size(), 0u);
}

TEST(HttpServerE2E, DeadlineBeforeFirstTokenMapsTo504) {
  Harness h({}, {}, /*start_engine=*/false);
  auto trace = serve::synth_trace(tiny_trace_spec(1));
  trace[0].id = 88;
  trace[0].deadline_ms = 1.0;

  const int fd = connect_loopback(h.port());
  send_all(fd, request_text("POST", "/v1/generate",
                            net::generate_body(trace[0], true)));
  while (h.server.counters().streams_started < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the 1 ms deadline expire while the worker is still parked, then
  // start it: the first step retires the request as timed out.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  h.engine.start();
  net::HttpResponseParser resp;
  read_response(fd, resp);
  ::close(fd);
  EXPECT_EQ(resp.status_code(), 504);
  EXPECT_EQ(h.server.counters().timeout_504, 1u);
}

TEST(HttpServerE2E, PipelinedRequestsOnOneConnection) {
  Harness h;
  auto trace = serve::synth_trace(tiny_trace_spec(2));
  trace[0].id = 201;
  trace[1].id = 202;
  const std::string b0 = net::generate_body(trace[0], true);
  const std::string b1 = net::generate_body(trace[1], true);
  const int fd = connect_loopback(h.port());
  // Both requests in one write; the second is parked behind the first
  // stream and served on the same connection afterwards.
  send_all(fd, request_text("POST", "/v1/generate", b0, /*close=*/false) +
                   request_text("POST", "/v1/generate", b1, /*close=*/true));
  std::string wire;
  char buf[4096];
  while (true) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) break;
    wire.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  // Two complete chunked responses back to back.
  net::HttpResponseParser p0;
  ASSERT_EQ(p0.feed(wire), net::HttpResponseParser::Status::kDone);
  EXPECT_EQ(p0.status_code(), 200);
  EXPECT_GE(p0.chunks().size(), 2u);
  EXPECT_EQ(h.server.counters().streams_completed, 2u);
}

TEST(HttpServerE2E, ServerStopMidStreamIsCleanAndCancels) {
  // Smoke for graceful shutdown: stop() while a stream is in flight must
  // cancel it, flush a terminal response, and join without hanging — the
  // sanitizer jobs make this a data-race/lifetime test as much as a
  // functional one.
  Harness h;
  auto trace = serve::synth_trace(tiny_trace_spec(1));
  trace[0].id = 300;
  trace[0].max_new_tokens = 50;  // as long as max_seq allows
  const int fd = connect_loopback(h.port());
  send_all(fd, request_text("POST", "/v1/generate",
                            net::generate_body(trace[0], true)));
  while (h.server.counters().streams_started < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.server.stop();
  EXPECT_FALSE(h.server.running());
  // The client's connection was closed by the server after a terminal
  // response (either the stream ran to completion before stop() landed or
  // it was cancelled); the socket must reach EOF, not hang.
  net::HttpResponseParser resp;
  read_response(fd, resp);
  ::close(fd);
  EXPECT_EQ(h.server.counters().streams_completed +
                h.server.counters().client_aborts,
            1u);
}

TEST(HttpServerE2E, Uint64SeedOverHttpIsAccepted) {
  Harness h;
  const std::string body =
      R"({"id": 600, "prompt": [1, 2, 3], "max_new_tokens": 2,)"
      R"( "seed": 18446744073709551615, "stream": false})";
  const auto resp =
      exchange(h.port(), request_text("POST", "/v1/generate", body));
  ASSERT_EQ(resp.status_code(), 200);
  const net::Json parsed = net::Json::parse(resp.body());
  EXPECT_EQ(parsed.find("status")->as_string(), "ok");
}

TEST(HttpServerE2E, StatsUnderTokenBurstsWithTinyQueueDoesNotDeadlock) {
  // Regression: the engine used to hold its stats mutex across the whole
  // step while the token callbacks block on a full completion queue; a
  // concurrent GET /v1/stats then wedged the epoll thread on that mutex
  // and the pair deadlocked permanently. Capacity 1 makes every token a
  // potential full-queue push.
  net::HttpServerConfig sc;
  sc.completion_queue_capacity = 1;
  Harness h({}, sc);
  auto trace = serve::synth_trace(tiny_trace_spec(1));
  trace[0].id = 400;
  trace[0].max_new_tokens = 50;
  const int fd = connect_loopback(h.port());
  send_all(fd, request_text("POST", "/v1/generate",
                            net::generate_body(trace[0], true)));
  while (h.server.counters().streams_completed < 1) {
    const auto stats =
        exchange(h.port(), request_text("GET", "/v1/stats", ""));
    ASSERT_EQ(stats.status_code(), 200);
  }
  net::HttpResponseParser resp;
  read_response(fd, resp);
  ::close(fd);
  EXPECT_EQ(resp.status_code(), 200);
}

TEST(HttpServerE2E, ClientRstMidStreamIsSurvived) {
  // Abort with RST (not FIN): the server's next send into the dead socket
  // fails hard inside the engine-event handler, which must destroy the
  // connection without touching it afterwards (ASan covers the lifetime).
  Harness h;
  auto trace = serve::synth_trace(tiny_trace_spec(1));
  trace[0].id = 500;
  trace[0].max_new_tokens = 50;
  const int fd = connect_loopback(h.port());
  send_all(fd, request_text("POST", "/v1/generate",
                            net::generate_body(trace[0], true)));
  while (h.server.counters().streams_started < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  ::close(fd);
  // The stream terminates (client abort, or completion when the RST lost
  // the race) and the server stays serviceable.
  while (h.server.counters().client_aborts +
             h.server.counters().streams_completed <
         1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto resp =
      exchange(h.port(), request_text("GET", "/v1/healthz", ""));
  EXPECT_EQ(resp.status_code(), 200);
}

// ---------------------------------------------------------------------------
// /v1/embeddings + constrained decoding over the socket
// ---------------------------------------------------------------------------

nn::BertConfig tiny_bert_config() {
  nn::BertConfig c;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.max_seq = 32;
  return c;
}

// JSON-fragment vocab over the tiny 50-token model: enough structure for a
// compiled grammar to make progress (see serve_workloads_test for the full
// DFA-level coverage).
std::shared_ptr<const serve::workloads::TokenDfa> tiny_json_grammar() {
  std::vector<std::string> v(50);
  v[5] = "{";
  v[6] = "}";
  v[7] = "[";
  v[8] = "]";
  v[9] = ":";
  v[10] = ",";
  v[11] = "\"";
  for (int d = 0; d < 10; ++d) v[12 + d] = std::string(1, '0' + d);
  v[22] = "a";
  v[23] = "b";
  v[24] = "c";
  v[27] = "{\"";
  v[28] = "\":";
  v[29] = ",\"";
  v[30] = "\"}";
  v[31] = "true";
  v[32] = "false";
  v[33] = "null";
  v[34] = " ";
  v[38] = "{}";
  return std::make_shared<const serve::workloads::TokenDfa>(
      serve::workloads::TokenDfa::compile(serve::workloads::GrammarSpec{}, v,
                                          3));
}

TEST(HttpServerE2E, EmbeddingsHappyPathMatchesEncoder) {
  const auto encoder =
      std::make_shared<const nn::BertEncoder>(tiny_bert_config());
  serve::EngineConfig ec;
  ec.workloads.embedder = encoder;
  Harness h(ec);

  const std::string body =
      "{\"inputs\": [[1, 2, 3, 4], [5, 6, 7, 8], [9, 10]],"
      " \"reduce\": \"mean\", \"gnn\": true}";
  const auto resp =
      exchange(h.port(), request_text("POST", "/v1/embeddings", body));
  ASSERT_EQ(resp.status_code(), 200);
  const net::Json j = net::Json::parse(resp.body());
  EXPECT_EQ(j.find("dim")->as_int(), 16);
  const net::Json* rows = j.find("embeddings");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 3u);
  // Row 0 must match the encoder's own pooled embedding to JSON-float
  // precision.
  const std::vector<std::int32_t> first{1, 2, 3, 4};
  const std::vector<float> expected = encoder->embed(first);
  const auto& row0 = rows->items()[0].items();
  ASSERT_EQ(row0.size(), expected.size());
  for (std::size_t c = 0; c < expected.size(); ++c) {
    EXPECT_NEAR(row0[c].as_number(), static_cast<double>(expected[c]), 1e-6);
  }
  // GNN-ready block: flat row-major features, inputs as nodes.
  const net::Json* gnn = j.find("gnn");
  ASSERT_NE(gnn, nullptr);
  EXPECT_EQ(gnn->find("num_nodes")->as_int(), 3);
  EXPECT_EQ(gnn->find("feature_dim")->as_int(), 16);
  EXPECT_EQ(gnn->find("features")->items().size(), 48u);
  EXPECT_NEAR(gnn->find("features")->items()[0].as_number(),
              static_cast<double>(expected[0]), 1e-6);
}

TEST(HttpServerE2E, EmbeddingsMalformedBodiesYield400) {
  const auto encoder =
      std::make_shared<const nn::BertEncoder>(tiny_bert_config());
  serve::EngineConfig ec;
  ec.workloads.embedder = encoder;
  Harness h(ec);

  // Not JSON at all.
  EXPECT_EQ(exchange(h.port(), request_text("POST", "/v1/embeddings",
                                            "not json"))
                .status_code(),
            400);
  // Missing inputs.
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", "/v1/embeddings", "{}"))
                .status_code(),
            400);
  // Empty inputs array.
  EXPECT_EQ(exchange(h.port(), request_text("POST", "/v1/embeddings",
                                            "{\"inputs\": []}"))
                .status_code(),
            400);
  // Non-array element and empty element.
  EXPECT_EQ(exchange(h.port(), request_text("POST", "/v1/embeddings",
                                            "{\"inputs\": [5]}"))
                .status_code(),
            400);
  EXPECT_EQ(exchange(h.port(), request_text("POST", "/v1/embeddings",
                                            "{\"inputs\": [[]]}"))
                .status_code(),
            400);
  // Bad reduce name.
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", "/v1/embeddings",
                                  "{\"inputs\": [[1]], \"reduce\": \"max\"}"))
                .status_code(),
            400);
  // Token outside the encoder vocab: rejected by engine admission, and the
  // already-submitted first input is cancelled (response still one 400).
  EXPECT_EQ(exchange(h.port(),
                     request_text("POST", "/v1/embeddings",
                                  "{\"inputs\": [[1, 2], [999]]}"))
                .status_code(),
            400);
  // GET is not allowed.
  EXPECT_EQ(
      exchange(h.port(), request_text("GET", "/v1/embeddings", ""))
          .status_code(),
      405);
  // The happy path still works after all those errors.
  EXPECT_EQ(exchange(h.port(), request_text("POST", "/v1/embeddings",
                                            "{\"inputs\": [[1, 2, 3]]}"))
                .status_code(),
            200);
}

TEST(HttpServerE2E, EmbeddingsWithoutEmbedderYield501) {
  Harness h;
  EXPECT_EQ(exchange(h.port(), request_text("POST", "/v1/embeddings",
                                            "{\"inputs\": [[1]]}"))
                .status_code(),
            501);
}

TEST(HttpServerE2E, ConstrainedStreamByteStableAcrossBatchCompositions) {
  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.workloads.grammar = true;
  net::HttpServerConfig sc;
  sc.grammars["json"] = tiny_json_grammar();

  serve::Request probe;
  probe.id = 1;
  probe.prompt = {5, 22, 9, 34};
  probe.max_new_tokens = 12;
  probe.sampling.temperature = 0.9f;
  probe.sampling.top_k = 30;
  probe.sampling.seed = 0xfeed;

  auto constrained_body = [&](const serve::Request& req) {
    std::string body = net::generate_body(req, false);
    // Splice the grammar selector into the generated JSON body.
    body.insert(body.size() - 1, ", \"grammar\": \"json\"");
    return body;
  };
  auto tokens_of = [](const net::HttpResponseParser& resp) {
    std::vector<std::int32_t> tokens;
    const net::Json body = net::Json::parse(resp.body());
    for (const net::Json& t : body.find("tokens")->items()) {
      tokens.push_back(static_cast<std::int32_t>(t.as_int()));
    }
    return tokens;
  };

  // Solo: the probe runs alone.
  std::vector<std::int32_t> solo;
  {
    Harness h(ec, sc);
    const auto resp = exchange(
        h.port(), request_text("POST", "/v1/generate",
                               constrained_body(probe)));
    ASSERT_EQ(resp.status_code(), 200);
    solo = tokens_of(resp);
    ASSERT_FALSE(solo.empty());
  }
  // Busy: the same probe races a batch of free-form and constrained
  // traffic on the same engine. Its tokens must not move by a byte.
  {
    Harness h(ec, sc);
    auto trace = serve::synth_trace(tiny_trace_spec(6));
    std::thread background([&] {
      net::LoadGenConfig lg;
      lg.port = h.port();
      lg.concurrency = 3;
      net::LoadGen(lg).run_closed(trace);
    });
    std::vector<std::int32_t> busy;
    serve::Request again = probe;
    again.id = 500;  // distinct id, same seed/prompt
    const auto resp = exchange(
        h.port(), request_text("POST", "/v1/generate",
                               constrained_body(again)));
    EXPECT_EQ(resp.status_code(), 200);
    busy = tokens_of(resp);
    background.join();
    EXPECT_EQ(busy, solo)
        << "constrained stream changed under a different batch composition";
  }
  // Unknown grammar name is a 400, not silent free-form decoding.
  {
    Harness h(ec, sc);
    std::string body = net::generate_body(probe, false);
    body.insert(body.size() - 1, ", \"grammar\": \"nope\"");
    EXPECT_EQ(
        exchange(h.port(), request_text("POST", "/v1/generate", body))
            .status_code(),
        400);
  }
}

TEST(HttpServerE2E, StatsReportEmbedCounters) {
  const auto encoder =
      std::make_shared<const nn::BertEncoder>(tiny_bert_config());
  serve::EngineConfig ec;
  ec.workloads.embedder = encoder;
  Harness h(ec);
  ASSERT_EQ(exchange(h.port(), request_text("POST", "/v1/embeddings",
                                            "{\"inputs\": [[1, 2], [3, 4]]}"))
                .status_code(),
            200);
  const auto resp =
      exchange(h.port(), request_text("GET", "/v1/stats", ""));
  ASSERT_EQ(resp.status_code(), 200);
  const net::Json j = net::Json::parse(resp.body());
  EXPECT_EQ(j.find("engine")->find("embed_requests")->as_int(), 2);
  EXPECT_GE(j.find("engine")->find("embed_forwards")->as_int(), 1);
  EXPECT_EQ(j.find("http")->find("embed_jobs")->as_int(), 1);
  EXPECT_EQ(j.find("http")->find("embed_inputs")->as_int(), 2);
}

TEST(HttpServerE2E, OpenLoopPoissonRunCompletes) {
  Harness h;
  auto trace = serve::synth_trace(tiny_trace_spec(6));
  const auto schedule = net::poisson_schedule(trace.size(), 200.0, 7);
  net::LoadGenConfig lg;
  lg.port = h.port();
  const auto report = net::LoadGen(lg).run_open(trace, schedule);
  EXPECT_EQ(report.launched, trace.size());
  EXPECT_EQ(report.completed_ok + report.shed_429 + report.timeout_504,
            trace.size());
  EXPECT_GT(report.completed_ok, 0u);
  // The report serializes.
  const net::Json j = net::Json::parse(report.to_json(250.0));
  EXPECT_EQ(j.find("launched")->as_int(),
            static_cast<std::int64_t>(trace.size()));
}

}  // namespace
}  // namespace matgpt
