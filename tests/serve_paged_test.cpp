// Unit tests for the block-paged KV allocator (src/nn/paged_kv): arena
// alloc/free/reuse and refcounts, the reservation admission discipline,
// PagedKvSeq append/truncate/gather, copy-on-write fork semantics on shared
// blocks, out-of-blocks failure, fragmentation churn, and nn-level
// bit-identity of a paged forward pass against the contiguous slab path.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "nn/paged_kv.h"
#include "serve/kv_pool.h"

namespace matgpt {
namespace {

nn::PagedKvLayout tiny_layout() {
  nn::PagedKvLayout l;
  l.block_tokens = 4;
  l.n_layers = 1;
  l.kv_heads = 1;
  l.head_dim = 4;
  return l;
}

// One row (kv_heads * head_dim floats) per token, value = salt + 10*t + j.
std::vector<float> rows_for(const nn::PagedKvLayout& l, std::int64_t n,
                            float salt) {
  std::vector<float> out(static_cast<std::size_t>(n * l.row()));
  for (std::int64_t t = 0; t < n; ++t) {
    for (std::int64_t j = 0; j < l.row(); ++j) {
      out[static_cast<std::size_t>(t * l.row() + j)] =
          salt + 10.0f * static_cast<float>(t) + static_cast<float>(j);
    }
  }
  return out;
}

TEST(PagedKvArena, AllocateFreeReuseAndRefcounts) {
  const nn::PagedKvLayout l = tiny_layout();
  nn::PagedKvArena arena(l, 4);
  EXPECT_EQ(arena.free_blocks(), 4);
  EXPECT_EQ(arena.used_blocks(), 0);

  // Drain the arena through the slack path (no reservation held).
  std::vector<std::int32_t> ids;
  for (int i = 0; i < 4; ++i) {
    const std::int32_t id = arena.allocate(nullptr);
    ASSERT_GE(id, 0);
    EXPECT_EQ(arena.ref_count(id), 1);
    ids.push_back(id);
  }
  EXPECT_EQ(arena.free_blocks(), 0);
  EXPECT_EQ(arena.allocate(nullptr), -1) << "exhausted arena must refuse";

  // A second reference keeps the block alive through one release.
  arena.add_ref(ids[0]);
  EXPECT_EQ(arena.ref_count(ids[0]), 2);
  EXPECT_EQ(arena.shared_blocks(), 1);
  arena.release(ids[0]);
  EXPECT_EQ(arena.ref_count(ids[0]), 1);
  EXPECT_EQ(arena.shared_blocks(), 0);
  EXPECT_EQ(arena.free_blocks(), 0) << "block freed while still referenced";

  // Final releases recycle every block; fresh allocations reuse them.
  for (const std::int32_t id : ids) arena.release(id);
  EXPECT_EQ(arena.free_blocks(), 4);
  const std::int32_t again = arena.allocate(nullptr);
  EXPECT_GE(again, 0);
  arena.release(again);
}

TEST(PagedKvArena, ReservationsGateAdmissionAndFundAllocation) {
  const nn::PagedKvLayout l = tiny_layout();
  nn::PagedKvArena arena(l, 4);
  EXPECT_TRUE(arena.try_reserve(3));
  EXPECT_EQ(arena.reserved_blocks(), 3);
  EXPECT_EQ(arena.unreserved_free_blocks(), 1);
  // A reservation that would oversubscribe the arena fails without effect.
  EXPECT_FALSE(arena.try_reserve(2));
  EXPECT_EQ(arena.reserved_blocks(), 3);

  // Allocation draws the caller's reservation down first...
  std::int64_t mine = 3;
  const std::int32_t a = arena.allocate(&mine);
  ASSERT_GE(a, 0);
  EXPECT_EQ(mine, 2);
  EXPECT_EQ(arena.reserved_blocks(), 2);
  // ...and an unrelated caller can only take the unreserved slack.
  const std::int32_t slack = arena.allocate(nullptr);
  ASSERT_GE(slack, 0);
  EXPECT_EQ(arena.allocate(nullptr), -1)
      << "slack allocation must not raid an outstanding reservation";
  // The reservation holder still gets its guaranteed blocks.
  const std::int32_t b = arena.allocate(&mine);
  const std::int32_t d = arena.allocate(&mine);
  EXPECT_GE(b, 0);
  EXPECT_GE(d, 0);
  EXPECT_EQ(mine, 0);

  // Truncate-style release with reclaim returns the unit to the caller.
  arena.release(b, &mine);
  EXPECT_EQ(mine, 1);
  EXPECT_EQ(arena.reserved_blocks(), 1);
  arena.unreserve(mine);
  arena.release(a);
  arena.release(d);
  arena.release(slack);
  EXPECT_EQ(arena.free_blocks(), 4);
  EXPECT_EQ(arena.reserved_blocks(), 0);
}

TEST(PagedKvSeq, AppendTruncateAndGatherAcrossBlocks) {
  const nn::PagedKvLayout l = tiny_layout();
  nn::PagedKvArena arena(l, 8);
  nn::PagedKvSeq seq(&arena);
  const auto k = rows_for(l, 10, 0.0f);
  const auto v = rows_for(l, 10, 0.5f);
  seq.append(0, k.data(), v.data(), 10);  // 4 + 4 + 2 -> 3 blocks
  EXPECT_EQ(seq.length(0), 10);
  EXPECT_EQ(seq.block_count(), 3);
  EXPECT_EQ(arena.used_blocks(), 3);

  // Gather straddling block boundaries returns the exact rows.
  std::vector<float> gk(static_cast<std::size_t>(7 * l.row()));
  std::vector<float> gv(gk.size());
  seq.copy_rows(0, 2, 7, gk.data(), gv.data());
  for (std::int64_t t = 0; t < 7; ++t) {
    for (std::int64_t j = 0; j < l.row(); ++j) {
      const auto i = static_cast<std::size_t>(t * l.row() + j);
      EXPECT_EQ(gk[i], k[static_cast<std::size_t>((t + 2) * l.row() + j)]);
      EXPECT_EQ(gv[i], v[static_cast<std::size_t>((t + 2) * l.row() + j)]);
    }
  }

  // Truncating to 5 rows drops the 3rd block; the freed unit returns to the
  // sequence's reservation, so regrowth cannot fail.
  seq.truncate_layer(0, 5);
  EXPECT_EQ(seq.length(0), 5);
  EXPECT_EQ(seq.block_count(), 2);
  EXPECT_EQ(arena.used_blocks(), 2);
  EXPECT_EQ(seq.reserved_blocks(), 1);
  seq.append(0, k.data(), v.data(), 3);
  EXPECT_EQ(seq.length(0), 8);

  seq.reset();
  EXPECT_EQ(arena.used_blocks(), 0);
  EXPECT_EQ(arena.reserved_blocks(), 0);
  EXPECT_EQ(seq.max_length(), 0);
}

TEST(PagedKvSeq, TokenCapacityIsEnforced) {
  const nn::PagedKvLayout l = tiny_layout();
  nn::PagedKvArena arena(l, 8);
  nn::PagedKvSeq seq(&arena, /*token_capacity=*/6);
  const auto k = rows_for(l, 7, 0.0f);
  const auto v = rows_for(l, 7, 0.5f);
  seq.append(0, k.data(), v.data(), 6);
  EXPECT_THROW(seq.append(0, k.data(), v.data(), 1), Error);
}

TEST(PagedKvSeq, CopyOnWriteForksOnlyTheSharedPartialBlock) {
  const nn::PagedKvLayout l = tiny_layout();
  nn::PagedKvArena arena(l, 8);
  nn::PagedKvSeq owner(&arena);
  const auto k = rows_for(l, 6, 0.0f);
  const auto v = rows_for(l, 6, 0.5f);
  owner.append(0, k.data(), v.data(), 6);  // blocks: [full, 2-row partial]

  // A second sequence aliases the 6-token prefix: zero copies, shared refs.
  nn::PagedKvSeq borrower(&arena);
  borrower.alias_blocks(owner.block_ids(), 6);
  EXPECT_EQ(borrower.length(0), 6);
  EXPECT_EQ(arena.used_blocks(), 2) << "alias must not allocate";
  EXPECT_EQ(arena.shared_blocks(), 2);
  EXPECT_EQ(arena.cow_forks(), 0u);

  // First append past the shared prefix forks ONLY the partial block: the
  // 2 already-written rows are copied once, the full block stays shared.
  const auto nk = rows_for(l, 1, 100.0f);
  const auto nv = rows_for(l, 1, 100.5f);
  borrower.append(0, nk.data(), nv.data(), 1);
  EXPECT_EQ(arena.cow_forks(), 1u);
  EXPECT_EQ(arena.cow_rows(), 2u);
  EXPECT_EQ(arena.used_blocks(), 3);
  EXPECT_EQ(arena.shared_blocks(), 1) << "full block still shared";
  EXPECT_EQ(borrower.block_ids()[0], owner.block_ids()[0]);
  EXPECT_NE(borrower.block_ids()[1], owner.block_ids()[1]);

  // The owner's rows are untouched; the borrower sees prefix + its append.
  std::vector<float> ok(static_cast<std::size_t>(6 * l.row()));
  std::vector<float> ov(ok.size());
  owner.copy_rows(0, 0, 6, ok.data(), ov.data());
  for (std::size_t i = 0; i < ok.size(); ++i) {
    ASSERT_EQ(ok[i], k[i]);
    ASSERT_EQ(ov[i], v[i]);
  }
  std::vector<float> bk(static_cast<std::size_t>(7 * l.row()));
  std::vector<float> bv(bk.size());
  borrower.copy_rows(0, 0, 7, bk.data(), bv.data());
  for (std::size_t i = 0; i < static_cast<std::size_t>(6 * l.row()); ++i) {
    ASSERT_EQ(bk[i], k[i]);
    ASSERT_EQ(bv[i], v[i]);
  }
  for (std::int64_t j = 0; j < l.row(); ++j) {
    EXPECT_EQ(bk[static_cast<std::size_t>(6 * l.row() + j)],
              nk[static_cast<std::size_t>(j)]);
    EXPECT_EQ(bv[static_cast<std::size_t>(6 * l.row() + j)],
              nv[static_cast<std::size_t>(j)]);
  }

  // Writes into a block-aligned shared boundary need no fork: a third
  // sequence aliasing exactly one full block appends into a NEW block.
  nn::PagedKvSeq aligned(&arena);
  aligned.alias_blocks(owner.block_ids().subspan(0, 1), 4);
  aligned.append(0, nk.data(), nv.data(), 1);
  EXPECT_EQ(arena.cow_forks(), 1u) << "aligned append must not fork";
  aligned.reset();

  borrower.reset();
  owner.reset();
  EXPECT_EQ(arena.used_blocks(), 0);
}

TEST(PagedKvSeq, OutOfBlocksAppendThrows) {
  const nn::PagedKvLayout l = tiny_layout();
  nn::PagedKvArena arena(l, 2);
  nn::PagedKvSeq seq(&arena);
  const auto k = rows_for(l, 9, 0.0f);
  const auto v = rows_for(l, 9, 0.5f);
  seq.append(0, k.data(), v.data(), 8);  // fills both blocks
  EXPECT_THROW(seq.append(0, k.data(), v.data(), 1), Error);
  // The failed append must not corrupt the sequence.
  EXPECT_EQ(seq.length(0), 8);
  EXPECT_EQ(seq.block_count(), 2);
}

TEST(ServePagedPool, ChurnOfMixedLengthLeasesNeverFragments) {
  // Blocks are unit-sized, so the pager cannot fragment: any mix of lease
  // sizes that fits in free blocks must admit. Churn short/long leases and
  // assert admission succeeds whenever the block arithmetic says it should.
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = 1;
  c.max_seq = 64;
  serve::KvPoolConfig pcfg;
  pcfg.slots = 4;  // arena = 4 * 16 = 64 blocks of 4 tokens
  pcfg.block_tokens = 4;
  serve::KvCachePool pool(c, pcfg);
  ASSERT_EQ(pool.total_blocks(), 64);

  std::vector<serve::KvLease> held;
  std::uint32_t rng = 12345;
  auto next = [&rng]() {
    rng = rng * 1664525u + 1013904223u;
    return rng >> 16;
  };
  for (int round = 0; round < 300; ++round) {
    const std::int64_t want = 1 + static_cast<std::int64_t>(next() % 64);
    const std::int64_t needed = pool.blocks_needed(want, 0);
    if (static_cast<std::int64_t>(pool.available()) >= needed) {
      serve::KvLease lease = pool.try_lease(want);
      ASSERT_TRUE(lease) << "round " << round << ": " << needed
                         << " blocks needed, " << pool.available() << " free";
      held.push_back(std::move(lease));
    } else {
      ASSERT_FALSE(held.empty());
      // Release a pseudo-random victim mid-vector: maximal churn.
      const std::size_t at = next() % held.size();
      held[at].release();
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(at));
    }
  }
  held.clear();
  EXPECT_TRUE(pool.all_free());
  EXPECT_EQ(pool.used_blocks(), 0);
}

TEST(ServePagedPool, PagedForwardBitIdenticalToSlab) {
  // The whole paged design rests on this: reading K/V through a block table
  // must produce byte-identical logits to the contiguous slab path, for
  // both RoPE/GQA (LLaMA) and learned-position (NeoX) attention.
  for (auto arch : {nn::ArchFamily::kLLaMA, nn::ArchFamily::kNeoX}) {
    nn::GptConfig c;
    c.arch = arch;
    c.vocab_size = 60;
    c.hidden = 16;
    c.n_layers = 2;
    c.n_heads = 2;
    c.n_kv_heads = arch == nn::ArchFamily::kLLaMA ? 1 : 0;
    c.max_seq = 48;
    nn::GptModel model(c);

    nn::KvCache slab;
    slab.reserve(c);
    nn::PagedKvLayout l;
    l.block_tokens = 4;  // prompt below straddles several blocks
    l.n_layers = c.n_layers;
    l.kv_heads = c.kv_heads();
    l.head_dim = c.head_dim();
    nn::PagedKvArena arena(l, 16);
    nn::PagedKvSeq seq(&arena, c.max_seq);
    nn::KvCache paged;
    paged.attach_paged(&seq);

    const std::vector<std::int32_t> prompt{7, 3, 11, 19, 2, 5, 23, 41, 8, 13};
    Tape ts, tp;
    Var ls = model.forward_incremental(ts, prompt, slab);
    Var lp = model.forward_incremental(tp, prompt, paged);
    for (std::int64_t vcb = 0; vcb < c.vocab_size; ++vcb) {
      ASSERT_EQ(ls.value().at(0, vcb), lp.value().at(0, vcb))
          << "prefill logits diverge at vocab " << vcb;
    }
    // A few decode steps, still bit-identical.
    for (std::int32_t tok : {17, 29, 31}) {
      const std::vector<std::int32_t> one{tok};
      Tape t1, t2;
      Var a = model.forward_incremental(t1, one, slab);
      Var b = model.forward_incremental(t2, one, paged);
      for (std::int64_t vcb = 0; vcb < c.vocab_size; ++vcb) {
        ASSERT_EQ(a.value().at(0, vcb), b.value().at(0, vcb))
            << "decode logits diverge at vocab " << vcb;
      }
    }
  }
}

}  // namespace
}  // namespace matgpt
