// Tests for the GNN stack: crystal-graph construction invariants, variant
// configuration, gradient flow, and the Table V regression properties
// (learning beats the mean predictor; informative embeddings help).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gnn/bandgap.h"

namespace matgpt::gnn {
namespace {

CrystalDataset small_dataset(std::size_t n = 60, std::uint64_t seed = 3) {
  return build_dataset(n, seed);
}

TEST(Crystal, GraphInvariants) {
  Rng rng(1);
  data::MaterialGenerator gen(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto m = gen.sample();
    const auto g = build_crystal(m, rng);
    EXPECT_GE(g.n_atoms(), 6);  // min_cell_atoms
    EXPECT_EQ(g.positions.size(), g.atom_element.size());
    EXPECT_EQ(g.edge_src.size(), g.edge_dst.size());
    EXPECT_EQ(g.edge_distance.size(), g.edge_src.size());
    EXPECT_EQ(g.edge_angle_mean.size(), g.edge_src.size());
    EXPECT_DOUBLE_EQ(g.band_gap_ev, m.band_gap_ev);
    for (std::size_t e = 0; e < g.edge_src.size(); ++e) {
      EXPECT_NE(g.edge_src[e], g.edge_dst[e]) << "self loop";
      EXPECT_GT(g.edge_distance[e], 0.0);
      EXPECT_GE(g.edge_angle_mean[e], -1.0 - 1e-9);
      EXPECT_LE(g.edge_angle_mean[e], 1.0 + 1e-9);
      EXPECT_LT(g.edge_src[e], g.n_atoms());
      EXPECT_LT(g.edge_dst[e], g.n_atoms());
    }
  }
}

TEST(Crystal, CompositionStoichiometryIsPreserved) {
  Rng rng(1);
  const auto li = *data::element_index("Li");
  const auto o = *data::element_index("O");
  const auto m = data::MaterialGenerator::from_composition({{li, 2}, {o, 1}});
  const auto g = build_crystal(m, rng);
  std::size_t n_li = 0, n_o = 0;
  for (std::size_t e : g.atom_element) {
    n_li += e == li;
    n_o += e == o;
  }
  EXPECT_EQ(n_li, 2 * n_o);  // 2:1 ratio preserved under replication
}

TEST(Crystal, DatasetIsUniqueAndLabeled) {
  const auto ds = small_dataset(40);
  EXPECT_EQ(ds.graphs.size(), 40u);
  std::set<std::string> formulas;
  for (const auto& g : ds.graphs) {
    EXPECT_TRUE(formulas.insert(g.formula).second);
    EXPECT_GE(g.band_gap_ev, 0.0);
  }
}

TEST(GnnConfig, VariantFeatureLadder) {
  // The Table V premise: variants form a feature-richness ladder.
  GnnConfig cgcnn{GnnVariant::kCgcnn};
  GnnConfig megnet{GnnVariant::kMegnet};
  GnnConfig alignn{GnnVariant::kAlignn};
  GnnConfig mf{GnnVariant::kMfCgnn};
  EXPECT_EQ(cgcnn.gaussian_basis(), 0);
  EXPECT_LT(megnet.gaussian_basis(), alignn.gaussian_basis());
  EXPECT_FALSE(cgcnn.global_state());
  EXPECT_TRUE(megnet.global_state());
  EXPECT_TRUE(alignn.angle_features());
  EXPECT_FALSE(megnet.angle_features());
  EXPECT_TRUE(mf.learned_embedding());
  EXPECT_FALSE(alignn.learned_embedding());
  EXPECT_LT(cgcnn.conv_layers(), alignn.conv_layers());
}

TEST(GnnModel, ForwardProducesScalarForEveryVariant) {
  Rng rng(5);
  data::MaterialGenerator gen(6);
  const auto g = build_crystal(gen.sample(), rng);
  for (auto v : {GnnVariant::kCgcnn, GnnVariant::kMegnet, GnnVariant::kAlignn,
                 GnnVariant::kMfCgnn}) {
    GnnModel model(GnnConfig{v, 16, 0, 7});
    Tape tape;
    Var pred = model.forward(tape, g);
    EXPECT_EQ(pred.value().numel(), 1) << gnn_variant_name(v);
    EXPECT_TRUE(std::isfinite(pred.value()[0]));
  }
}

TEST(GnnModel, TextDimMustMatchProvidedEmbedding) {
  Rng rng(5);
  data::MaterialGenerator gen(6);
  const auto g = build_crystal(gen.sample(), rng);
  GnnModel model(GnnConfig{GnnVariant::kMfCgnn, 16, 8, 7});
  Tape tape;
  const std::vector<float> good(8, 0.1f);
  EXPECT_NO_THROW(model.forward(tape, g, good));
  const std::vector<float> bad(4, 0.1f);
  EXPECT_THROW(model.forward(tape, g, bad), Error);
}

TEST(GnnModel, GradientsReachAllParameters) {
  Rng rng(5);
  data::MaterialGenerator gen(8);
  const auto g = build_crystal(gen.sample(), rng);
  GnnModel model(GnnConfig{GnnVariant::kMfCgnn, 12, 0, 9});
  Tape tape;
  Var pred = model.forward(tape, g);
  const std::vector<float> target{1.0f};
  Var loss = ops::mse_loss(tape, pred, target);
  tape.backward(loss);
  std::size_t with_grad = 0, total = 0;
  for (const auto& p : model.parameters()) {
    ++total;
    with_grad += p.var.grad().defined();
  }
  // Everything except possibly unused element-embedding rows gets gradients;
  // parameter tensors themselves must all be touched.
  EXPECT_EQ(with_grad, total);
}

TEST(GnnModel, MessagePassingUsesStructure) {
  // Perturbing one atom's position (=> edge distances) must change the
  // prediction for basis-featured variants.
  Rng rng(5);
  data::MaterialGenerator gen(10);
  const auto m = gen.sample();
  auto g1 = build_crystal(m, rng);
  auto g2 = g1;
  for (auto& d : g2.edge_distance) d *= 1.3;
  GnnModel model(GnnConfig{GnnVariant::kMfCgnn, 16, 0, 11});
  Tape t1, t2;
  const float p1 = model.forward(t1, g1).value()[0];
  const float p2 = model.forward(t2, g2).value()[0];
  EXPECT_NE(p1, p2);
}

TEST(Regression, LearnsBetterThanMeanPredictor) {
  const auto ds = small_dataset(60);
  GnnModel model(GnnConfig{GnnVariant::kMfCgnn, 24, 0, 13});
  RegressionConfig rc;
  rc.epochs = 20;
  const auto result = train_bandgap(model, ds, rc);
  // Mean-predictor MAE over the dataset:
  double mean_gap = 0.0;
  for (const auto& g : ds.graphs) mean_gap += g.band_gap_ev;
  mean_gap /= static_cast<double>(ds.graphs.size());
  double mean_mae = 0.0;
  for (const auto& g : ds.graphs) {
    mean_mae += std::fabs(g.band_gap_ev - mean_gap);
  }
  mean_mae /= static_cast<double>(ds.graphs.size());
  EXPECT_LT(result.test_mae_ev, mean_mae)
      << "GNN must beat the constant predictor";
  EXPECT_LT(result.train_mae_ev, result.test_mae_ev + 0.5);
  EXPECT_EQ(result.n_train + result.n_test, ds.graphs.size());
}

TEST(Regression, OracleEmbeddingsBoostAccuracy) {
  // Upper-bound sanity for the Fig. 3 mechanism: an embedding that encodes
  // the target (like a perfectly memorized literature embedding) must
  // reduce MAE versus structure-only.
  const auto ds = small_dataset(60);
  RegressionConfig rc;
  rc.epochs = 20;
  GnnModel plain(GnnConfig{GnnVariant::kMfCgnn, 24, 0, 13});
  const auto base = train_bandgap(plain, ds, rc);
  GnnModel augmented(GnnConfig{GnnVariant::kMfCgnn, 24, 4, 13});
  const auto oracle = [&](std::size_t i) {
    const double g = ds.graphs[i].band_gap_ev;
    return std::vector<float>{static_cast<float>(g / 6.0),
                              static_cast<float>(g * g / 36.0),
                              static_cast<float>(std::sqrt(g / 6.0)),
                              1.0f};
  };
  const auto boosted = train_bandgap(augmented, ds, rc, oracle);
  EXPECT_LT(boosted.test_mae_ev, base.test_mae_ev);
}

TEST(Regression, ValidatesProviderContract) {
  const auto ds = small_dataset(20);
  GnnModel with_text(GnnConfig{GnnVariant::kMfCgnn, 12, 4, 13});
  RegressionConfig rc;
  rc.epochs = 1;
  EXPECT_THROW(train_bandgap(with_text, ds, rc), Error)
      << "text_dim > 0 requires a provider";
  GnnModel plain(GnnConfig{GnnVariant::kMfCgnn, 12, 0, 13});
  EXPECT_THROW(
      train_bandgap(plain, ds, rc,
                    [](std::size_t) { return std::vector<float>{1.0f}; }),
      Error)
      << "provider without text_dim must be rejected";
}

}  // namespace
}  // namespace matgpt::gnn
