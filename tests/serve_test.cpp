// Unit tests for src/serve: pooled KV allocator, continuous-batching engine
// (token-identical to batch-1 generate_cached), admission backpressure, and
// serving metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/kv_pool.h"
#include "serve/metrics.h"
#include "serve/trace.h"

namespace matgpt {
namespace {

nn::GptConfig serve_config(nn::ArchFamily arch, std::int64_t n_kv_heads) {
  nn::GptConfig c;
  c.arch = arch;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = n_kv_heads;
  c.max_seq = 64;
  return c;
}

serve::TraceSpec tiny_trace_spec() {
  serve::TraceSpec spec;
  spec.n_requests = 10;
  spec.vocab_size = 50;
  spec.prompt_len_min = 2;
  spec.prompt_len_max = 6;
  spec.max_new_min = 1;
  spec.max_new_max = 8;
  return spec;
}

TEST(ServeDecodeBatch, MatchesSequentialForwardBitExact) {
  for (auto arch : {nn::ArchFamily::kNeoX, nn::ArchFamily::kLLaMA}) {
    const std::int64_t gqa = arch == nn::ArchFamily::kLLaMA ? 1 : 0;
    const nn::GptConfig c = serve_config(arch, gqa);
    nn::GptModel model(c);
    const std::vector<std::vector<std::int32_t>> prompts{
        {1, 2, 3}, {7}, {9, 8, 7, 6, 5}};

    // Two identical cache sets: one consumed by the ragged batch, one by the
    // batch-1 reference path.
    std::vector<nn::KvCache> batched(prompts.size()), reference(prompts.size());
    std::vector<std::int32_t> feed;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
      batched[i].reserve(c);
      reference[i].reserve(c);
      Tape t1, t2;
      model.forward_incremental(t1, prompts[i], batched[i]);
      model.forward_incremental(t2, prompts[i], reference[i]);
      feed.push_back(static_cast<std::int32_t>((prompts[i].back() + 1) %
                                               c.vocab_size));
    }

    std::vector<nn::KvCache*> cache_ptrs;
    for (auto& cache : batched) cache_ptrs.push_back(&cache);
    Tape tape;
    Var logits = model.decode_batch(tape, feed, cache_ptrs);
    ASSERT_EQ(logits.value().dim(0), static_cast<std::int64_t>(prompts.size()));
    ASSERT_EQ(logits.value().dim(1), c.vocab_size);

    for (std::size_t i = 0; i < prompts.size(); ++i) {
      Tape t;
      std::span<const std::int32_t> one(&feed[i], 1);
      Var ref = model.forward_incremental(t, one, reference[i]);
      for (std::int64_t v = 0; v < c.vocab_size; ++v) {
        EXPECT_EQ(logits.value().at(static_cast<std::int64_t>(i), v),
                  ref.value().at(0, v))
            << "arch " << static_cast<int>(arch) << " seq " << i << " vocab "
            << v;
      }
      EXPECT_EQ(batched[i].length, reference[i].length);
    }
  }
}

TEST(ServeEngine, TokenIdenticalToGenerateCached) {
  for (auto arch : {nn::ArchFamily::kNeoX, nn::ArchFamily::kLLaMA}) {
    const std::int64_t gqa = arch == nn::ArchFamily::kLLaMA ? 1 : 0;
    nn::GptModel model(serve_config(arch, gqa));

    serve::EngineConfig ec;
    ec.max_batch = 3;
    ec.kv_slots = 3;  // fewer slots than requests: forces recycling
    ec.queue_capacity = 4;
    serve::InferenceEngine engine(model, ec);

    auto trace = serve::synth_trace(tiny_trace_spec());
    const auto reference_trace = trace;  // run_trace consumes its argument
    const auto results = engine.run_trace(std::move(trace));
    ASSERT_EQ(results.size(), reference_trace.size());

    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& req = reference_trace[i];
      EXPECT_EQ(results[i].id, req.id);
      EXPECT_EQ(results[i].generated_tokens, req.max_new_tokens);
      Rng rng(req.sampling.seed);
      const auto expected =
          model.generate_cached(req.prompt, req.max_new_tokens, req.sampling,
                                rng);
      EXPECT_EQ(results[i].tokens, expected) << "request " << i;
    }

    // Every slot returned to the pool; stats saw every request.
    EXPECT_TRUE(engine.kv_pool().all_free());
    EXPECT_EQ(engine.active_count(), 0u);
    EXPECT_EQ(engine.queue_depth(), 0u);
    EXPECT_EQ(engine.stats().requests_completed(), reference_trace.size());
  }
}

TEST(ServeEngine, SequentialFallbackMatchesBatchedTokens) {
  nn::GptModel model(serve_config(nn::ArchFamily::kLLaMA, 1));
  auto spec = tiny_trace_spec();
  spec.n_requests = 6;

  serve::EngineConfig batched;
  batched.max_batch = 3;
  batched.kv_slots = 3;
  serve::EngineConfig sequential = batched;
  sequential.batched_decode = false;

  serve::InferenceEngine a(model, batched), b(model, sequential);
  const auto ra = a.run_trace(serve::synth_trace(spec));
  const auto rb = b.run_trace(serve::synth_trace(spec));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tokens, rb[i].tokens) << "request " << i;
  }
}

TEST(ServeEngine, SubmitAndStepFromCallerThread) {
  nn::GptModel model(serve_config(nn::ArchFamily::kNeoX, 0));
  serve::InferenceEngine engine(model);
  serve::Request req;
  req.id = 42;
  req.prompt = {3, 1, 4};
  req.max_new_tokens = 5;
  req.sampling.temperature = 0.0f;
  req.sampling.seed = 99;
  auto future = engine.submit(req);
  engine.run_until_idle();
  const auto result = future.get();
  EXPECT_EQ(result.id, 42u);
  Rng rng(99);
  EXPECT_EQ(result.tokens,
            model.generate_cached(req.prompt, 5, req.sampling, rng));
  EXPECT_GE(result.ttft_s, 0.0);
  EXPECT_GE(result.total_s, result.ttft_s);
}

TEST(ServeKvPool, LeaseBlocksUntilReleaseAndRecyclesSlot) {
  for (const bool paged : {true, false}) {
    const nn::GptConfig c = serve_config(nn::ArchFamily::kLLaMA, 1);
    serve::KvPoolConfig pc;
    pc.slots = 1;
    pc.paged = paged;
    serve::KvCachePool pool(c, pc);
    EXPECT_EQ(pool.slot_count(), 1u);
    EXPECT_EQ(pool.capacity_tokens(), c.max_seq);
    EXPECT_GT(pool.reserved_bytes(), 0.0);
    EXPECT_EQ(pool.paged(), paged);

    serve::KvLease slot = pool.lease();
    ASSERT_TRUE(slot);
    EXPECT_EQ(pool.available(), 0u);
    EXPECT_FALSE(pool.try_lease());
    EXPECT_FALSE(pool.all_free());

    // Dirty the slot so we can observe release() resetting it.
    nn::GptModel model(c);
    Tape tape;
    const std::vector<std::int32_t> prompt{1, 2, 3};
    model.forward_incremental(tape, prompt, *slot);
    EXPECT_EQ(slot->length, 3);

    nn::KvCache* raw = slot.get();
    std::atomic<bool> acquired{false};
    std::thread waiter([&] {
      serve::KvLease again = pool.lease();  // blocks until release below
      acquired.store(true);
      EXPECT_EQ(again.get(), raw);    // same storage recycled
      EXPECT_EQ(again->length, 0);    // history cleared
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(acquired.load());
    slot.release();
    waiter.join();
    EXPECT_TRUE(acquired.load());
    EXPECT_TRUE(pool.all_free());
  }
}

TEST(ServeKvPool, EmptyLeaseIsCheckedAndReleaseIdempotent) {
  const nn::GptConfig c = serve_config(nn::ArchFamily::kNeoX, 0);
  serve::KvCachePool pool(c, 2);
  serve::KvLease lease = pool.lease();
  lease.release();
  lease.release();  // idempotent, not a double free
  EXPECT_TRUE(pool.all_free());
  EXPECT_THROW((void)*lease, Error);
  EXPECT_THROW((void)lease->length, Error);
  serve::KvLease moved = pool.lease();
  serve::KvLease stolen = std::move(moved);
  EXPECT_FALSE(moved);  // NOLINT(bugprone-use-after-move): checked empty
  EXPECT_TRUE(stolen);
}

TEST(ServeKvPool, TryLeaseEmptyWhenExhausted) {
  for (const bool paged : {true, false}) {
    const nn::GptConfig c = serve_config(nn::ArchFamily::kNeoX, 0);
    serve::KvPoolConfig pc;
    pc.slots = 2;
    pc.paged = paged;
    serve::KvCachePool pool(c, pc);
    serve::KvLease a = pool.lease();
    serve::KvLease b = pool.try_lease();
    ASSERT_TRUE(b);
    EXPECT_FALSE(pool.try_lease());
    EXPECT_EQ(pool.available(), 0u);
    a.release();
    EXPECT_TRUE(pool.try_lease());  // reacquires the freed capacity
  }
}

TEST(ServeKvPool, LeaseTruncateRollsBack) {
  for (const bool paged : {true, false}) {
    const nn::GptConfig c = serve_config(nn::ArchFamily::kLLaMA, 1);
    serve::KvPoolConfig pc;
    pc.slots = 2;
    pc.paged = paged;
    serve::KvCachePool pool(c, pc);
    nn::GptModel model(c);
    serve::KvLease slot = pool.lease();
    const std::vector<std::int32_t> prompt{1, 2, 3, 4, 5};
    Tape tape;
    model.forward_incremental(tape, prompt, *slot);
    ASSERT_EQ(slot->length, 5);

    slot.truncate(3);
    EXPECT_EQ(slot->length, 3);
    for (const auto& layer : slot->layers) EXPECT_EQ(layer.length(), 3);
    EXPECT_THROW(slot.truncate(4), Error);  // can't grow by truncating

    serve::KvLease empty;
    EXPECT_THROW(empty.truncate(0), Error);
  }
}

TEST(ServeKvPool, SlotCapacityIsEnforced) {
  for (const bool paged : {true, false}) {
    const nn::GptConfig c = serve_config(nn::ArchFamily::kLLaMA, 1);
    serve::KvPoolConfig pc;
    pc.slots = 1;
    pc.capacity_tokens = 4;
    pc.paged = paged;
    serve::KvCachePool pool(c, pc);
    nn::GptModel model(c);
    serve::KvLease slot = pool.lease();
    const std::vector<std::int32_t> too_long{1, 2, 3, 4, 5};
    Tape tape;
    EXPECT_THROW(model.forward_incremental(tape, too_long, *slot), Error);

    // The engine refuses such a request up front instead of corrupting KV.
    serve::EngineConfig ec;
    ec.kv_slots = 1;
    ec.kv_capacity_tokens = 4;
    ec.paged_kv = paged;
    serve::InferenceEngine engine(model, ec);
    serve::Request req;
    req.prompt = {1, 2, 3};
    req.max_new_tokens = 8;  // 3 + 8 > 4
    EXPECT_THROW(engine.submit(req), Error);
  }
}

TEST(ServeEngine, SubmitBlocksWhenQueueSaturated) {
  nn::GptModel model(serve_config(nn::ArchFamily::kNeoX, 0));
  serve::EngineConfig ec;
  ec.queue_capacity = 1;
  serve::InferenceEngine engine(model, ec);

  serve::Request req;
  req.prompt = {5, 6};
  req.max_new_tokens = 2;
  req.sampling.temperature = 0.0f;

  auto first = engine.submit(req);  // fills the queue
  std::atomic<bool> second_submitted{false};
  std::future<serve::RequestResult> second;
  std::thread submitter([&] {
    second = engine.submit(req);  // must block, not throw
    second_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_submitted.load());

  engine.step();  // admits the first request, freeing queue space
  submitter.join();
  EXPECT_TRUE(second_submitted.load());
  engine.run_until_idle();
  EXPECT_EQ(first.get().generated_tokens, 2);
  EXPECT_EQ(second.get().generated_tokens, 2);
}

TEST(ServeStats, QuantilesAndReport) {
  serve::ServerStats stats{serve::StatsConfig{}};
  for (int ms = 1; ms <= 100; ++ms) stats.record_ttft(ms * 1e-3);
  stats.record_inter_token(5e-3);
  serve::RequestResult r;
  r.generated_tokens = 10;
  r.total_s = 2.0;
  r.tokens_per_s = 5.0;
  stats.record_request(r);

  EXPECT_NEAR(stats.ttft_ms(0.50), 50.0, 5.0);
  EXPECT_NEAR(stats.ttft_ms(0.95), 95.0, 5.0);
  EXPECT_NEAR(stats.ttft_ms(0.99), 99.0, 5.0);
  EXPECT_LE(stats.ttft_ms(0.50), stats.ttft_ms(0.95));
  EXPECT_LE(stats.ttft_ms(0.95), stats.ttft_ms(0.99));
  EXPECT_EQ(stats.requests_completed(), 1u);
  EXPECT_EQ(stats.tokens_generated(), 10u);
  EXPECT_DOUBLE_EQ(stats.mean_request_tokens_per_s(), 5.0);

  const std::string report = stats.report(2.0);
  EXPECT_NE(report.find("ttft"), std::string::npos);
  EXPECT_NE(report.find("aggregate tokens/s"), std::string::npos);
}

}  // namespace
}  // namespace matgpt
