// Unit tests for src/serve/tp: shard/unshard round-trips, byte-identity of
// TP=N forwards to TP=1 (prefill, batched decode, speculative verify, paged
// and reserved caches, GQA), deterministic row-allreduce layout, rank
// failure at construction, and engine-level trace identity under TP —
// including seeded-stochastic sampling, speculative decoding, and
// mid-preemption resume.

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "nn/paged_kv.h"
#include "serve/engine.h"
#include "serve/spec/proposer.h"
#include "serve/tp/tp_model.h"
#include "serve/trace.h"

namespace matgpt {
namespace {

// TP-friendly geometry: 4 heads (and 4 kv heads under LLaMA) so head and
// inner dims split evenly across 2 and 4 ranks; vocab 50 is deliberately
// NOT divisible by either, exercising the uneven lm_head split.
nn::GptConfig tp_config(nn::ArchFamily arch, std::int64_t kv_heads = 4) {
  nn::GptConfig c;
  c.arch = arch;
  c.vocab_size = 50;
  c.hidden = 64;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = arch == nn::ArchFamily::kLLaMA ? kv_heads : 0;
  c.max_seq = 64;
  return c;
}

void expect_logits_bytes_equal(const Var& tp, const Var& ref,
                               const char* what) {
  ASSERT_EQ(tp.value().numel(), ref.value().numel()) << what;
  EXPECT_EQ(std::memcmp(tp.value().data(), ref.value().data(),
                        static_cast<std::size_t>(tp.value().numel()) *
                            sizeof(float)),
            0)
      << what << ": TP logits differ from TP=1 bytes";
}

void expect_cache_equal(const nn::KvCache& a, const nn::KvCache& b) {
  ASSERT_EQ(a.length, b.length);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    ASSERT_EQ(a.layers[l].length(), b.layers[l].length());
    const auto n = a.layers[l].keys.numel();
    ASSERT_EQ(n, b.layers[l].keys.numel());
    EXPECT_EQ(std::memcmp(a.layers[l].keys.data(), b.layers[l].keys.data(),
                          static_cast<std::size_t>(n) * sizeof(float)),
              0)
        << "layer " << l << " keys";
    EXPECT_EQ(std::memcmp(a.layers[l].values.data(),
                          b.layers[l].values.data(),
                          static_cast<std::size_t>(n) * sizeof(float)),
              0)
        << "layer " << l << " values";
  }
}

// ---------------------------------------------------------------------------
// Shard/unshard round-trip
// ---------------------------------------------------------------------------

TEST(TpSlices, ShardUnshardRoundTrip) {
  nn::GptModel model(tp_config(nn::ArchFamily::kNeoX));
  const auto params = model.parameters();
  const Tensor* w = nullptr;
  const Tensor* b = nullptr;
  for (const auto& p : params) {
    if (p.name == "blocks.0.attn.q.weight") w = &p.var.value();
    if (p.name == "blocks.0.attn.q.bias") b = &p.var.value();
  }
  ASSERT_NE(w, nullptr);
  ASSERT_NE(b, nullptr);

  // Column shards reassemble to the source weight, byte for byte.
  for (int n : {2, 4}) {
    const std::int64_t cols = w->dim(1);
    ASSERT_EQ(cols % n, 0);
    const std::int64_t w_loc = cols / n;
    Tensor rebuilt({w->dim(0), cols});
    for (int r = 0; r < n; ++r) {
      const Tensor shard =
          serve::tp::column_slice(*w, r * w_loc, (r + 1) * w_loc);
      ASSERT_EQ(shard.dim(0), w->dim(0));
      ASSERT_EQ(shard.dim(1), w_loc);
      for (std::int64_t i = 0; i < shard.dim(0); ++i) {
        std::memcpy(rebuilt.data() + i * cols + r * w_loc,
                    shard.data() + i * w_loc,
                    static_cast<std::size_t>(w_loc) * sizeof(float));
      }
    }
    EXPECT_EQ(std::memcmp(rebuilt.data(), w->data(),
                          static_cast<std::size_t>(w->numel()) *
                              sizeof(float)),
              0)
        << "column round-trip at n=" << n;
  }

  // Row shards reassemble likewise (the kRowAllreduce o/down layout).
  {
    const std::int64_t rows = w->dim(0);
    Tensor rebuilt({rows, w->dim(1)});
    const std::int64_t r_loc = rows / 2;
    for (int r = 0; r < 2; ++r) {
      const Tensor shard = serve::tp::row_slice(*w, r * r_loc, (r + 1) * r_loc);
      std::memcpy(rebuilt.data() + r * r_loc * w->dim(1), shard.data(),
                  static_cast<std::size_t>(shard.numel()) * sizeof(float));
    }
    EXPECT_EQ(std::memcmp(rebuilt.data(), w->data(),
                          static_cast<std::size_t>(w->numel()) *
                              sizeof(float)),
              0);
  }

  // 1-D bias shards.
  {
    Tensor rebuilt({b->dim(0)});
    const std::int64_t n_loc = b->dim(0) / 4;
    for (int r = 0; r < 4; ++r) {
      const Tensor shard =
          serve::tp::slice_1d(*b, r * n_loc, (r + 1) * n_loc);
      std::memcpy(rebuilt.data() + r * n_loc, shard.data(),
                  static_cast<std::size_t>(n_loc) * sizeof(float));
    }
    EXPECT_EQ(std::memcmp(rebuilt.data(), b->data(),
                          static_cast<std::size_t>(b->numel()) *
                              sizeof(float)),
              0);
  }
}

// ---------------------------------------------------------------------------
// Forward byte-identity: prefill, batched decode, speculative verify
// ---------------------------------------------------------------------------

TEST(TpForward, ColumnGatherByteIdenticalToTp1) {
  for (auto arch : {nn::ArchFamily::kNeoX, nn::ArchFamily::kLLaMA}) {
    const nn::GptConfig c = tp_config(arch);
    nn::GptModel model(c);
    for (int tp : {2, 4}) {
      serve::tp::TpConfig tc;
      tc.ranks = tp;
      serve::tp::TpModel sharded(model, tc);

      const std::vector<std::int32_t> prompt0{3, 14, 15, 9, 2, 6, 5};
      const std::vector<std::int32_t> prompt1{35, 8, 41};
      nn::KvCache ref0, ref1, tp0, tp1;
      for (nn::KvCache* cache : {&ref0, &ref1, &tp0, &tp1}) {
        cache->reserve(c);
      }

      // Prefill (multi-token kSequence job, last row only).
      {
        Tape t1, t2, t3, t4;
        Var r0 = model.forward_incremental(t1, prompt0, ref0);
        Var s0 = sharded.forward_incremental(t2, prompt0, tp0);
        expect_logits_bytes_equal(s0, r0, "prefill seq0");
        Var r1 = model.forward_incremental(t3, prompt1, ref1);
        Var s1 = sharded.forward_incremental(t4, prompt1, tp1);
        expect_logits_bytes_equal(s1, r1, "prefill seq1");
      }

      // Batched decode over both sequences for a few steps.
      std::vector<std::int32_t> fed{7, 21};
      for (int step = 0; step < 4; ++step) {
        std::vector<nn::KvCache*> ref_caches{&ref0, &ref1};
        std::vector<nn::KvCache*> tp_caches{&tp0, &tp1};
        Tape t1, t2;
        Var r = model.decode_batch(t1, fed, ref_caches);
        Var s = sharded.decode_batch(t2, fed, tp_caches);
        expect_logits_bytes_equal(s, r, "decode step");
        fed[0] = static_cast<std::int32_t>((fed[0] * 7 + step) % c.vocab_size);
        fed[1] = static_cast<std::int32_t>((fed[1] * 5 + step) % c.vocab_size);
      }

      // Speculative verify (multi-token, all rows).
      const std::vector<std::int32_t> draft{6, 5, 35, 8};
      {
        Tape t1, t2;
        Var r = model.verify_append(t1, draft, ref0);
        Var s = sharded.verify_append(t2, draft, tp0);
        expect_logits_bytes_equal(s, r, "verify_append");
      }

      // The shared KV the ranks wrote head-by-head must be byte-identical
      // to the TP=1 append — the property prefix caching and preemption
      // swap rest on.
      expect_cache_equal(tp0, ref0);
      expect_cache_equal(tp1, ref1);

      const serve::tp::TpStats stats = sharded.stats();
      EXPECT_GT(stats.jobs, 0u);
      EXPECT_GT(stats.bytes_gathered, 0u);
      EXPECT_EQ(stats.bytes_reduced, 0u);  // column-gather never reduces
    }
  }
}

// Grouped-query attention: 4 query heads over 2 kv heads, TP=2 gives each
// rank 2 query heads and 1 kv head.
TEST(TpForward, GqaColumnGatherByteIdentical) {
  const nn::GptConfig c = tp_config(nn::ArchFamily::kLLaMA, /*kv_heads=*/2);
  nn::GptModel model(c);
  serve::tp::TpConfig tc;
  tc.ranks = 2;
  serve::tp::TpModel sharded(model, tc);

  const std::vector<std::int32_t> prompt{11, 4, 30, 2, 19};
  nn::KvCache ref, tpc;
  ref.reserve(c);
  tpc.reserve(c);
  {
    Tape t1, t2;
    Var r = model.forward_incremental(t1, prompt, ref);
    Var s = sharded.forward_incremental(t2, prompt, tpc);
    expect_logits_bytes_equal(s, r, "gqa prefill");
  }
  for (std::int32_t tok : {9, 17, 42}) {
    Tape t1, t2;
    std::span<const std::int32_t> one(&tok, 1);
    Var r = model.forward_incremental(t1, one, ref);
    Var s = sharded.forward_incremental(t2, one, tpc);
    expect_logits_bytes_equal(s, r, "gqa decode");
  }
  expect_cache_equal(tpc, ref);
}

// Paged KV: the ranks write disjoint head columns into block-table rows.
TEST(TpForward, PagedCacheByteIdentical) {
  const nn::GptConfig c = tp_config(nn::ArchFamily::kLLaMA);
  nn::GptModel model(c);
  serve::tp::TpConfig tc;
  tc.ranks = 2;
  serve::tp::TpModel sharded(model, tc);

  nn::PagedKvLayout layout;
  layout.block_tokens = 8;
  layout.n_layers = c.n_layers;
  layout.kv_heads = c.kv_heads();
  layout.head_dim = c.head_dim();
  nn::PagedKvArena arena(layout, 16);
  nn::PagedKvSeq ref_seq(&arena), tp_seq(&arena);
  nn::KvCache ref, tpc;
  ref.attach_paged(&ref_seq);
  tpc.attach_paged(&tp_seq);

  const std::vector<std::int32_t> prompt{3, 14, 15, 9, 2, 6, 5, 35, 8, 41};
  {
    Tape t1, t2;
    Var r = model.forward_incremental(t1, prompt, ref);
    Var s = sharded.forward_incremental(t2, prompt, tpc);
    expect_logits_bytes_equal(s, r, "paged prefill");
  }
  for (std::int32_t tok : {7, 21, 33, 2}) {
    Tape t1, t2;
    std::span<const std::int32_t> one(&tok, 1);
    Var r = model.forward_incremental(t1, one, ref);
    Var s = sharded.forward_incremental(t2, one, tpc);
    expect_logits_bytes_equal(s, r, "paged decode");
  }
  // Block contents must match row for row (the prefix-cache contract).
  ASSERT_EQ(ref_seq.length(0), tp_seq.length(0));
  const std::size_t row = static_cast<std::size_t>(layout.row());
  for (std::int64_t l = 0; l < c.n_layers; ++l) {
    const std::int64_t len = ref_seq.length(l);
    std::vector<float> rk(static_cast<std::size_t>(len) * row);
    std::vector<float> rv(rk.size()), tk(rk.size()), tv(rk.size());
    ref_seq.copy_rows(l, 0, len, rk.data(), rv.data());
    tp_seq.copy_rows(l, 0, len, tk.data(), tv.data());
    EXPECT_EQ(std::memcmp(rk.data(), tk.data(), rk.size() * sizeof(float)), 0)
        << "paged keys layer " << l;
    EXPECT_EQ(std::memcmp(rv.data(), tv.data(), rv.size() * sizeof(float)), 0)
        << "paged values layer " << l;
  }
}

// ---------------------------------------------------------------------------
// Row-allreduce layout: deterministic run-to-run, close to TP=1
// ---------------------------------------------------------------------------

TEST(TpForward, RowAllreduceDeterministicAndCloseToTp1) {
  const nn::GptConfig c = tp_config(nn::ArchFamily::kLLaMA);
  nn::GptModel model(c);
  serve::tp::TpConfig tc;
  tc.ranks = 2;
  tc.layout = serve::tp::TpLayout::kRowAllreduce;

  const std::vector<std::int32_t> prompt{3, 14, 15, 9, 2};
  std::vector<float> first;
  for (int run = 0; run < 3; ++run) {
    serve::tp::TpModel sharded(model, tc);
    nn::KvCache cache;
    cache.reserve(c);
    Tape tape;
    Var logits = sharded.forward_incremental(tape, prompt, cache);
    if (run == 0) {
      first.assign(logits.value().data(),
                   logits.value().data() + logits.value().numel());
      // Accuracy vs TP=1: same values to tolerance (the reduction reorders
      // the k-dimension sum, so bytes are not guaranteed).
      nn::KvCache ref;
      ref.reserve(c);
      Tape rt;
      Var r = model.forward_incremental(rt, prompt, ref);
      for (std::int64_t v = 0; v < c.vocab_size; ++v) {
        EXPECT_NEAR(logits.value().data()[v], r.value().data()[v], 1e-3)
            << "vocab " << v;
      }
      const serve::tp::TpStats stats = sharded.stats();
      EXPECT_GT(stats.bytes_reduced, 0u);
    } else {
      // Bitwise run-to-run determinism: arrival order must not matter.
      ASSERT_EQ(first.size(),
                static_cast<std::size_t>(logits.value().numel()));
      EXPECT_EQ(std::memcmp(first.data(), logits.value().data(),
                            first.size() * sizeof(float)),
                0)
          << "run " << run << " differs from run 0";
    }
  }
}

// ---------------------------------------------------------------------------
// Construction failure paths
// ---------------------------------------------------------------------------

TEST(TpErrors, IndivisibleGeometryThrowsAtConstruction) {
  // 2 kv heads cannot split across 4 ranks.
  nn::GptModel gqa(tp_config(nn::ArchFamily::kLLaMA, /*kv_heads=*/2));
  {
    serve::tp::TpConfig tc;
    tc.ranks = 4;
    EXPECT_THROW(serve::tp::TpModel(gqa, tc), Error);
  }
  // 4 query heads cannot split across 3 ranks.
  nn::GptModel mha(tp_config(nn::ArchFamily::kNeoX));
  {
    serve::tp::TpConfig tc;
    tc.ranks = 3;
    EXPECT_THROW(serve::tp::TpModel(mha, tc), Error);
  }
  // Config validation.
  {
    serve::tp::TpConfig tc;
    tc.ranks = 0;
    EXPECT_THROW(tc.validate(), Error);
  }
  // The same failure surfaces through the engine constructor.
  {
    serve::EngineConfig ec;
    ec.tensor_parallel = 4;
    EXPECT_THROW(serve::InferenceEngine(gqa, ec), Error);
  }
}

// ---------------------------------------------------------------------------
// Engine-level identity under TP
// ---------------------------------------------------------------------------

serve::TraceSpec tp_trace_spec(const nn::GptConfig& c) {
  serve::TraceSpec spec;
  spec.n_requests = 8;
  spec.vocab_size = c.vocab_size;
  spec.prompt_len_min = 4;
  spec.prompt_len_max = 12;
  spec.max_new_min = 4;
  spec.max_new_max = 10;
  spec.greedy_fraction = 0.5;  // the rest sample stochastically, seeded
  return spec;
}

TEST(TpEngine, RunTraceTokensIdenticalToTp1) {
  const nn::GptConfig c = tp_config(nn::ArchFamily::kLLaMA);
  nn::GptModel model(c);

  serve::EngineConfig base;
  base.max_batch = 3;
  base.kv_slots = 3;
  serve::EngineConfig tp = base;
  tp.tensor_parallel = 2;

  serve::InferenceEngine ref(model, base), sharded(model, tp);
  EXPECT_EQ(sharded.stats().tp_degree(), 2);
  EXPECT_EQ(sharded.stats().tp_layout(), "column_gather");
  EXPECT_EQ(ref.stats().tp_degree(), 1);

  const auto spec = tp_trace_spec(c);
  const auto ra = ref.run_trace(serve::synth_trace(spec));
  const auto rb = sharded.run_trace(serve::synth_trace(spec));
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tokens, rb[i].tokens) << "request " << i;
  }
  EXPECT_GT(sharded.stats().tp_jobs(), 0u);
}

TEST(TpEngine, SpeculativeTokensIdenticalToTp1) {
  const nn::GptConfig c = tp_config(nn::ArchFamily::kLLaMA);
  nn::GptModel model(c);
  auto make_requests = [&] {
    std::vector<serve::Request> reqs;
    for (std::uint64_t id = 0; id < 4; ++id) {
      serve::Request req;
      req.id = id;
      for (std::int64_t t = 0; t < 6; ++t) {
        req.prompt.push_back(
            static_cast<std::int32_t>((id * 7 + t * 3) % c.vocab_size));
      }
      req.max_new_tokens = 10;
      req.spec_k = 2;
      if (id % 2 == 1) {  // seeded-stochastic speculative requests
        req.sampling.temperature = 0.8f;
        req.sampling.top_k = 20;
        req.sampling.top_p = 0.9f;
      } else {
        req.sampling.temperature = 0.0f;
      }
      req.sampling.seed = 0xabc0 + id;
      reqs.push_back(std::move(req));
    }
    return reqs;
  };

  serve::EngineConfig base;
  base.max_batch = 2;
  base.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 1);
  serve::EngineConfig tp = base;
  tp.tensor_parallel = 2;

  serve::InferenceEngine ref(model, base), sharded(model, tp);
  const auto ra = ref.run_trace(make_requests());
  const auto rb = sharded.run_trace(make_requests());
  ASSERT_EQ(ra.size(), rb.size());
  bool speculated = false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tokens, rb[i].tokens) << "request " << i;
    speculated = speculated || rb[i].drafts_proposed > 0;
  }
  EXPECT_TRUE(speculated) << "trace never exercised the sharded verify path";
}

// A TP=2 engine under KV pressure must preempt, resume, and still emit the
// same tokens a roomy TP=1 engine does.
TEST(TpEngine, PreemptResumeTokensIdenticalToTp1) {
  const nn::GptConfig c = tp_config(nn::ArchFamily::kLLaMA, /*kv_heads=*/2);
  nn::GptModel model(c);

  serve::EngineConfig tight;
  tight.max_batch = 4;
  tight.kv_slots = 2;
  tight.kv_capacity_tokens = 48;
  tight.kv_block_tokens = 8;
  tight.scheduler = serve::sched::Policy::kPriority;
  tight.preempt_mode = serve::sched::PreemptMode::kRecompute;
  tight.tensor_parallel = 2;
  serve::EngineConfig roomy;
  roomy.max_batch = 4;
  roomy.kv_slots = 8;
  roomy.scheduler = serve::sched::Policy::kPriority;

  auto request = [&](std::uint64_t id, serve::Priority cls,
                     std::int64_t prompt_len, std::int64_t max_new) {
    serve::Request req;
    req.id = id;
    req.priority = cls;
    for (std::int64_t t = 0; t < prompt_len; ++t) {
      req.prompt.push_back(
          static_cast<std::int32_t>((id * 7 + t * 3) % c.vocab_size));
    }
    req.max_new_tokens = max_new;
    req.sampling.temperature = 0.0f;
    req.sampling.seed = 0xabc0 + id;
    return req;
  };

  auto run = [&](serve::InferenceEngine& engine) {
    std::vector<std::future<serve::RequestResult>> futures;
    futures.push_back(
        engine.submit(request(0, serve::Priority::kLow, 8, 32)));
    futures.push_back(
        engine.submit(request(1, serve::Priority::kLow, 8, 32)));
    engine.step();  // lows admitted, holding most of the arena
    futures.push_back(
        engine.submit(request(2, serve::Priority::kHigh, 8, 24)));
    futures.push_back(
        engine.submit(request(3, serve::Priority::kHigh, 8, 24)));
    engine.run_until_idle();
    std::map<std::uint64_t, serve::RequestResult> by_id;
    for (auto& f : futures) {
      serve::RequestResult r = f.get();
      by_id.emplace(r.id, std::move(r));
    }
    return by_id;
  };

  serve::InferenceEngine pressured(model, tight), reference(model, roomy);
  const auto got = run(pressured);
  const auto want = run(reference);
  EXPECT_GE(pressured.stats().preemptions(), 1u)
      << "pressure scenario never preempted; the test is vacuous";
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [id, result] : want) {
    const auto it = got.find(id);
    ASSERT_NE(it, got.end()) << "request " << id;
    EXPECT_EQ(it->second.status, serve::RequestStatus::kOk);
    EXPECT_EQ(it->second.tokens, result.tokens)
        << "request " << id << " diverged across preempt/resume under TP";
  }
}

}  // namespace
}  // namespace matgpt
