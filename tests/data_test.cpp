// Unit tests for the data module: element table, material generation and the
// band-gap model's physical structure, corpus generation (Table I shape),
// screening classifier, and the token dataset.

#include <gtest/gtest.h>

#include <set>

#include <sstream>

#include "data/classifier.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "data/elements.h"
#include "data/export.h"
#include "data/materials.h"

namespace matgpt::data {
namespace {

TEST(Elements, TableIsWellFormed) {
  const auto table = element_table();
  ASSERT_GT(table.size(), 30u);
  std::set<std::string> symbols;
  for (const auto& e : table) {
    EXPECT_GT(e.electronegativity, 0.5);
    EXPECT_LT(e.electronegativity, 4.5);
    EXPECT_GE(e.valence, 1);
    EXPECT_LE(e.valence, 7);
    EXPECT_GT(e.atomic_radius_pm, 20.0);
    EXPECT_TRUE(symbols.insert(e.symbol).second) << "duplicate " << e.symbol;
  }
}

TEST(Elements, LookupBySymbol) {
  const auto fe = element_index("Fe");
  ASSERT_TRUE(fe.has_value());
  EXPECT_STREQ(element_table()[*fe].name, "iron");
  EXPECT_FALSE(element_index("Xx").has_value());
}

TEST(BandGapModel, PureMetalsAreConductors) {
  for (const char* sym : {"Cu", "Fe", "Al", "Na"}) {
    const auto idx = element_index(sym);
    ASSERT_TRUE(idx.has_value());
    const auto m = MaterialGenerator::from_composition({{*idx, 1}});
    EXPECT_EQ(m.gap_class, GapClass::kConductor) << sym;
    EXPECT_LT(m.band_gap_ev, 0.5) << sym;
  }
}

TEST(BandGapModel, IonicCompoundsOpenTheGap) {
  // Alkali halides: large electronegativity spread => insulator.
  const auto na = *element_index("Na");
  const auto f = *element_index("F");
  const auto naf = MaterialGenerator::from_composition({{na, 1}, {f, 1}});
  EXPECT_GT(naf.band_gap_ev, 2.5);
  // vs. a covalent metalloid compound: smaller gap.
  const auto ga = *element_index("Ga");
  const auto as = *element_index("As");
  const auto gaas = MaterialGenerator::from_composition({{ga, 1}, {as, 1}});
  EXPECT_LT(gaas.band_gap_ev, naf.band_gap_ev);
}

TEST(BandGapModel, DeterministicPerFormula) {
  const auto li = *element_index("Li");
  const auto o = *element_index("O");
  const auto a = MaterialGenerator::from_composition({{li, 2}, {o, 1}});
  const auto b = MaterialGenerator::from_composition({{li, 2}, {o, 1}});
  EXPECT_EQ(a.band_gap_ev, b.band_gap_ev);
  EXPECT_EQ(a.formula, "Li2O");
}

TEST(BandGapModel, ClassBoundaries) {
  EXPECT_EQ(classify_gap(0.0), GapClass::kConductor);
  EXPECT_EQ(classify_gap(1.5), GapClass::kSemiconductor);
  EXPECT_EQ(classify_gap(5.0), GapClass::kInsulator);
}

TEST(BandGapModel, FormationEnergyIsNonPositive) {
  MaterialGenerator gen(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(gen.sample().formation_energy_ev, 0.0);
  }
}

TEST(Materials, GeneratorProducesAllThreeClasses) {
  MaterialGenerator gen(11);
  std::set<GapClass> seen;
  for (int i = 0; i < 200; ++i) seen.insert(gen.sample().gap_class);
  EXPECT_EQ(seen.size(), 3u) << "band-gap model must span all classes";
}

TEST(Materials, SampleUniqueHasNoDuplicates) {
  MaterialGenerator gen(13);
  const auto mats = gen.sample_unique(100);
  std::set<std::string> formulas;
  for (const auto& m : mats) {
    EXPECT_TRUE(formulas.insert(m.formula).second) << m.formula;
  }
}

TEST(Materials, FormulaFormatting) {
  const auto li = *element_index("Li");
  const auto fe = *element_index("Fe");
  const auto o = *element_index("O");
  EXPECT_EQ(format_formula({{li, 2}, {fe, 1}, {o, 4}}), "Li2FeO4");
  EXPECT_EQ(format_formula({{fe, 1}}), "Fe");
}

TEST(Corpus, Table1SourcesScale) {
  const auto sources = table1_sources(1e-6);
  ASSERT_EQ(sources.size(), 4u);
  EXPECT_EQ(sources[0].name, "CORE");
  EXPECT_EQ(sources[0].n_abstracts, 3u);   // 2.5M * 1e-6 rounded
  EXPECT_EQ(sources[1].n_abstracts, 15u);  // MAG 15M
  EXPECT_EQ(sources[3].materials_fraction, 1.0);  // SCOPUS pre-filtered
  EXPECT_THROW(table1_sources(0.0), Error);
}

TEST(Corpus, AbstractsEmbedTheGroundTruthFacts) {
  AbstractGenerator gen(3);
  MaterialGenerator mats(3);
  const auto m = mats.sample();
  const auto text = gen.materials_abstract(m);
  EXPECT_NE(text.find(m.formula), std::string::npos);
  EXPECT_NE(text.find("band gap"), std::string::npos);
  EXPECT_NE(text.find(gap_class_name(m.gap_class)), std::string::npos);
}

TEST(Corpus, FullTextIsLongerThanAbstract) {
  AbstractGenerator gen(3);
  MaterialGenerator mats(4);
  const auto m = mats.sample();
  EXPECT_GT(gen.materials_full_text(m).size(),
            gen.materials_abstract(m).size());
}

TEST(Corpus, BuilderHonorsSourceShape) {
  CorpusBuilder builder(7, 50);
  const std::vector<SourceSpec> sources{{"CORE", 20, 5, 0.5},
                                        {"SCOPUS", 10, 0, 1.0}};
  const auto docs = builder.build(sources);
  ASSERT_EQ(docs.size(), 35u);
  std::size_t core_full = 0, scopus_materials = 0, scopus_total = 0;
  for (const auto& d : docs) {
    if (d.source == "CORE" && d.full_text) ++core_full;
    if (d.source == "SCOPUS") {
      ++scopus_total;
      scopus_materials += d.domain == DocDomain::kMaterials;
    }
  }
  EXPECT_EQ(core_full, 5u);
  EXPECT_EQ(scopus_total, 10u);
  EXPECT_EQ(scopus_materials, 10u);  // fraction 1.0 => all materials
}

TEST(Corpus, OffDomainRejectsMaterials) {
  AbstractGenerator gen(3);
  EXPECT_THROW(gen.off_domain_abstract(DocDomain::kMaterials), Error);
}

TEST(Classifier, ScreensWithHighAccuracyOnSyntheticDomains) {
  CorpusBuilder builder(21, 80);
  const std::vector<SourceSpec> sources{{"MAG", 300, 0, 0.5}};
  auto docs = builder.build(sources);
  // Train on the first 60, evaluate on the rest.
  std::vector<Document> train_set(docs.begin(), docs.begin() + 60);
  std::vector<Document> test_set(docs.begin() + 60, docs.end());
  const auto clf = DomainClassifier::train(train_set);
  const auto q = clf.evaluate(test_set);
  EXPECT_GT(q.precision, 0.9);
  EXPECT_GT(q.recall, 0.9);
  const auto kept = clf.screen(test_set);
  EXPECT_EQ(kept.size(), q.kept);
}

TEST(Classifier, RequiresBothClasses) {
  CorpusBuilder builder(23, 20);
  const std::vector<SourceSpec> sources{{"SCOPUS", 10, 0, 1.0}};
  auto docs = builder.build(sources);  // all materials
  EXPECT_THROW(DomainClassifier::train(docs), Error);
}

TEST(Dataset, PacksWithEosSeparators) {
  std::vector<Document> docs{{"X", "aa bb", false, DocDomain::kMaterials},
                             {"X", "cc", false, DocDomain::kMaterials}};
  const auto tk = tok::BpeTokenizer::train({"aa bb cc"},
                                           tok::TokenizerKind::kHuggingFace,
                                           265);
  TokenDataset ds(docs, tk, 0.25, 3);
  // The stream must contain exactly two EOS markers (one per doc).
  std::size_t eos = 0;
  for (std::int32_t t : ds.stream()) eos += t == tok::SpecialTokens::kEos;
  EXPECT_EQ(eos, 2u);
  EXPECT_EQ(ds.total_tokens(), ds.train_tokens() + ds.val_tokens());
}

TEST(Dataset, BatchTargetsAreShiftedTokens) {
  std::vector<Document> docs;
  for (int i = 0; i < 30; ++i) {
    docs.push_back({"X", "the band gap of LiFePO4 is large", false,
                    DocDomain::kMaterials});
  }
  const auto tk = tok::BpeTokenizer::train(
      {"the band gap of LiFePO4 is large"},
      tok::TokenizerKind::kHuggingFace, 280);
  TokenDataset ds(docs, tk, 0.2, 5);
  auto batch = ds.sample_batch(2, 8);
  EXPECT_EQ(batch.tokens.size(), 16u);
  const auto stream = ds.stream();
  // Each target must be the stream successor of its token; verify via a
  // fresh lookup window: target[i] should equal tokens[i+1] within a row.
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t t = 0; t + 1 < 8; ++t) {
      EXPECT_EQ(batch.targets[b * 8 + t], batch.tokens[b * 8 + t + 1]);
    }
  }
  (void)stream;
}

TEST(Dataset, ValidationWindowsComeFromTheTail) {
  std::vector<Document> docs;
  for (int i = 0; i < 50; ++i) {
    docs.push_back({"X", "some materials text about band gaps", false,
                    DocDomain::kMaterials});
  }
  const auto tk = tok::BpeTokenizer::train(
      {"some materials text about band gaps"},
      tok::TokenizerKind::kHuggingFace, 280);
  TokenDataset ds(docs, tk, 0.3, 5);
  // Deterministic: same offset => same batch.
  const auto a = ds.validation_batch(2, 8, 0);
  const auto b = ds.validation_batch(2, 8, 0);
  EXPECT_EQ(a.tokens, b.tokens);
  const auto c = ds.validation_batch(2, 8, 1);
  EXPECT_NE(a.tokens, c.tokens);
}

TEST(Dataset, RejectsDegenerateConfigs) {
  std::vector<Document> docs{{"X", "tiny", false, DocDomain::kMaterials}};
  const auto tk = tok::BpeTokenizer::train({"tiny"},
                                           tok::TokenizerKind::kHuggingFace,
                                           265);
  EXPECT_THROW(TokenDataset(docs, tk, 0.0, 1), Error);
  TokenDataset ds(docs, tk, 0.4, 1);
  EXPECT_THROW(ds.sample_batch(1, 1000), Error);
}

TEST(Export, JsonlRoundTripsDocuments) {
  std::vector<Document> docs{
      {"CORE", "band gap of LiFePO4 is 3.4 eV", false,
       DocDomain::kMaterials},
      {"MAG", "line with \"quotes\", commas\nand a newline\tand tab", true,
       DocDomain::kBiomedical},
      {"Aminer", "query optimization on clusters", false,
       DocDomain::kComputerScience},
  };
  std::stringstream buffer;
  write_jsonl(docs, buffer);
  const auto restored = read_jsonl(buffer);
  ASSERT_EQ(restored.size(), docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(restored[i].source, docs[i].source);
    EXPECT_EQ(restored[i].text, docs[i].text);
    EXPECT_EQ(restored[i].full_text, docs[i].full_text);
    EXPECT_EQ(restored[i].domain, docs[i].domain);
  }
}

TEST(Export, EscapingIsInverse) {
  const std::string nasty = "a\"b\\c\nd\te\r";
  EXPECT_EQ(json_unescape(json_escape(nasty)), nasty);
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(Export, RejectsMalformedInput) {
  std::stringstream bad("{\"source\": \"X\"}\n");  // missing fields
  EXPECT_THROW(read_jsonl(bad), Error);
  EXPECT_THROW(domain_from_name("astrology"), Error);
  EXPECT_THROW(json_unescape("dangling\\"), Error);
}

TEST(Export, FileRoundTrip) {
  CorpusBuilder builder(3, 20);
  const auto docs = builder.build({{"SCOPUS", 15, 0, 1.0}});
  const std::string path = "/tmp/matgpt_corpus_test.jsonl";
  write_jsonl_file(docs, path);
  const auto restored = read_jsonl_file(path);
  ASSERT_EQ(restored.size(), docs.size());
  EXPECT_EQ(restored[3].text, docs[3].text);
  EXPECT_THROW(read_jsonl_file("/nonexistent/x.jsonl"), Error);
}

TEST(Dataset, MlmBatchMasksAndRestores) {
  LmBatch lm;
  lm.batch = 1;
  lm.seq = 8;
  lm.tokens = {10, 11, 12, 13, 14, 15, 16, 17};
  lm.targets = lm.tokens;
  Rng rng(5);
  const auto mlm = to_mlm_batch(lm, tok::SpecialTokens::kMask, 0.4f, rng);
  int masked = 0;
  for (std::size_t i = 0; i < mlm.tokens.size(); ++i) {
    if (mlm.targets[i] != -1) {
      ++masked;
      EXPECT_EQ(mlm.tokens[i], tok::SpecialTokens::kMask);
      EXPECT_EQ(mlm.targets[i], lm.tokens[i]);
    } else {
      EXPECT_EQ(mlm.tokens[i], lm.tokens[i]);
    }
  }
  EXPECT_GE(masked, 1);
}

}  // namespace
}  // namespace matgpt::data
