// Unit and property tests for the BPE tokenizer: round-trips, merge
// behaviour, HF vs SPM pre-tokenization, vocab-size effects, save/load.

#include <gtest/gtest.h>

#include <cctype>

#include "common/rng.h"
#include "tokenizer/bpe.h"

namespace matgpt::tok {
namespace {

std::vector<std::string> science_corpus() {
  return {
      "The band gap of LiFePO4 is 3.4 eV .",
      "LiFePO4 is an insulator used for battery electrodes .",
      "The band gap of GaAs is 1.4 eV .",
      "GaAs is a semiconductor used for photovoltaics .",
      "The band gap of TiO2 is 3.2 eV .",
      "TiO2 is promising for photocatalysis .",
      "We report CuZn prepared by solid state reaction .",
      "CuZn is a conductor .",
  };
}

TEST(Bpe, TrainRespectsTargetVocab) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kHuggingFace, 300);
  EXPECT_LE(tk.vocab_size(), 300);
  EXPECT_GT(tk.merge_count(), 0u);
}

TEST(Bpe, RoundTripsArbitraryText) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kHuggingFace, 300);
  for (const std::string text :
       {std::string("The band gap of LiFePO4 is 3.4 eV ."),
        std::string("completely unseen words zyxwv"),
        std::string("punctuation!?\"#$% and    spacing")}) {
    const auto ids = tk.encode(text);
    // Decoding normalizes runs of whitespace to single spaces (the
    // pre-tokenizer's behaviour); compare normalized forms.
    std::string expect;
    bool space = false;
    for (char c : text) {
      if (c == ' ' || c == '\n' || c == '\t') {
        space = !expect.empty();
      } else {
        if (space) expect += ' ';
        space = false;
        expect += c;
      }
    }
    EXPECT_EQ(tk.decode(ids), expect) << text;
  }
}

TEST(Bpe, RoundTripsRandomByteStrings) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kHuggingFace, 280);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s;
    for (int i = 0; i < 30; ++i) {
      // Printable non-space bytes: byte-level fallback must cover them all.
      s += static_cast<char>(33 + rng.uniform_int(std::uint64_t{94}));
    }
    EXPECT_EQ(tk.decode(tk.encode(s)), s);
  }
}

TEST(Bpe, LargerVocabYieldsFewerTokens) {
  const auto corpus = science_corpus();
  const auto small = BpeTokenizer::train(corpus,
                                         TokenizerKind::kHuggingFace, 270);
  const auto large = BpeTokenizer::train(corpus,
                                         TokenizerKind::kHuggingFace, 330);
  const std::string text = "The band gap of LiFePO4 is 3.4 eV .";
  EXPECT_LE(large.encode(text).size(), small.encode(text).size());
  EXPECT_LT(large.tokens_per_word(text), small.tokens_per_word(text) + 1e-9);
}

TEST(Bpe, MergesCompressRepeatedPhrases) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kHuggingFace, 340);
  // "band" recurs; after training it should be far fewer than 4 byte tokens.
  const auto ids = tk.encode("band");
  EXPECT_LT(ids.size(), 4u);
}

TEST(Bpe, SpmSplitsFormulasFinerThanHf) {
  // The paper's tokenizer contrast: SPM has finer-grained control over
  // subwords; our SPM mode splits at case/digit transitions, so chemical
  // formulas fragment more.
  const auto corpus = science_corpus();
  const auto hf = BpeTokenizer::train(corpus, TokenizerKind::kHuggingFace,
                                      340);
  const auto spm = BpeTokenizer::train(corpus,
                                       TokenizerKind::kSentencePiece, 340);
  const std::string formula = "LiFePO4";
  EXPECT_GE(spm.encode(formula).size(), hf.encode(formula).size());
  // Both must still round-trip formulas.
  EXPECT_EQ(hf.decode(hf.encode(formula)), formula);
  EXPECT_EQ(spm.decode(spm.encode(formula)), formula);
}

TEST(Bpe, SpmNeverMergesAcrossCaseBoundary) {
  const auto spm = BpeTokenizer::train(science_corpus(),
                                       TokenizerKind::kSentencePiece, 400);
  // Every token of a formula should stay within one element fragment:
  // no token may contain a lower->upper transition.
  for (const std::string formula : {"LiFePO4", "CuZn", "GaAs"}) {
    for (std::int32_t id : spm.encode(formula)) {
      const std::string& bytes = spm.token_bytes(id);
      for (std::size_t i = 1; i < bytes.size(); ++i) {
        const bool boundary = std::islower(bytes[i - 1]) &&
                              std::isupper(bytes[i]);
        EXPECT_FALSE(boundary) << "token '" << bytes << "'";
      }
    }
  }
}

TEST(Bpe, EncodeNeverEmitsSpecialsAndDecodeSkipsThem) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kHuggingFace, 300);
  for (std::int32_t id : tk.encode("some text"))
    EXPECT_GE(id, SpecialTokens::kCount);
  std::vector<std::int32_t> with_specials{SpecialTokens::kBos};
  const auto body = tk.encode("abc");
  with_specials.insert(with_specials.end(), body.begin(), body.end());
  with_specials.push_back(SpecialTokens::kEos);
  EXPECT_EQ(tk.decode(with_specials), "abc");
}

TEST(Bpe, SaveLoadPreservesEncoding) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kSentencePiece, 320);
  const auto restored = BpeTokenizer::load(tk.save());
  EXPECT_EQ(restored.vocab_size(), tk.vocab_size());
  EXPECT_EQ(restored.kind(), tk.kind());
  for (const std::string text :
       {std::string("The band gap of LiFePO4 is 3.4 eV ."),
        std::string("unseen Zr2O7 compound")}) {
    EXPECT_EQ(restored.encode(text), tk.encode(text)) << text;
  }
}

TEST(Bpe, LoadRejectsGarbage) {
  EXPECT_THROW(BpeTokenizer::load("not-a-tokenizer"), Error);
}

TEST(Bpe, TrainValidatesVocabFloor) {
  EXPECT_THROW(
      BpeTokenizer::train(science_corpus(), TokenizerKind::kHuggingFace, 100),
      Error);
}

TEST(Bpe, DecodeRejectsOutOfRangeIds) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kHuggingFace, 300);
  EXPECT_THROW(tk.decode({tk.vocab_size()}), Error);
  EXPECT_THROW(tk.decode({-1}), Error);
}

TEST(Bpe, TokensPerWordOnEmptyTextIsZero) {
  const auto tk = BpeTokenizer::train(science_corpus(),
                                      TokenizerKind::kHuggingFace, 300);
  EXPECT_EQ(tk.tokens_per_word(""), 0.0);
}

// Property sweep: round-trip holds for every kind x vocab combination.
class BpeProperty
    : public ::testing::TestWithParam<std::tuple<TokenizerKind, int>> {};

TEST_P(BpeProperty, RoundTripAndDeterminism) {
  const auto [kind, vocab] = GetParam();
  const auto tk = BpeTokenizer::train(science_corpus(), kind, vocab);
  const auto tk2 = BpeTokenizer::train(science_corpus(), kind, vocab);
  for (const auto& doc : science_corpus()) {
    const auto ids = tk.encode(doc);
    EXPECT_EQ(ids, tk2.encode(doc)) << "training must be deterministic";
    EXPECT_EQ(tk.decode(ids), doc);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndVocabs, BpeProperty,
    ::testing::Combine(::testing::Values(TokenizerKind::kHuggingFace,
                                         TokenizerKind::kSentencePiece),
                       ::testing::Values(265, 300, 380)));

}  // namespace
}  // namespace matgpt::tok
