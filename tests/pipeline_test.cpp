// Tests for the pipeline-schedule simulator: classic GPipe/1F1B facts that
// must fall out of the dependency-driven schedule.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "simfrontier/pipeline_schedule.h"

namespace matgpt::sim {
namespace {

TEST(Pipeline, SingleStageHasNoBubble) {
  const auto r = simulate_pipeline(1, 4, 1.0, 2.0, PipelineSchedule::kGpipe);
  EXPECT_NEAR(r.total_s, 4.0 * 3.0, 1e-9);
  EXPECT_NEAR(r.bubble_fraction, 0.0, 1e-9);
  EXPECT_EQ(r.units.size(), 8u);
}

class Schedules : public ::testing::TestWithParam<PipelineSchedule> {};

TEST_P(Schedules, TotalTimeMatchesClassicFormula) {
  // With uniform unit times, both schedules finish in
  // (m + p - 1) * (f + b): the textbook pipeline makespan.
  const double f = 1.0, b = 2.0;
  for (int p : {2, 4}) {
    for (int m : {4, 8}) {
      const auto r = simulate_pipeline(p, m, f, b, GetParam());
      EXPECT_NEAR(r.total_s, (m + p - 1) * (f + b), 1e-9)
          << "p=" << p << " m=" << m;
    }
  }
}

TEST_P(Schedules, BubbleFractionMatchesPaperFormula) {
  // Idle fraction (p - 1) / (m + p - 1) — the quantity behind the paper's
  // "sequential stages (leading to the so-called bubble)".
  const auto r = simulate_pipeline(4, 8, 1.0, 2.0, GetParam());
  EXPECT_NEAR(r.bubble_fraction, 3.0 / 11.0, 1e-9);
}

TEST_P(Schedules, MoreMicrobatchesShrinkTheBubble) {
  double prev = 1.0;
  for (int m : {2, 4, 8, 16, 32}) {
    const auto r = simulate_pipeline(4, m, 1.0, 2.0, GetParam());
    EXPECT_LT(r.bubble_fraction, prev);
    prev = r.bubble_fraction;
  }
  EXPECT_LT(prev, 0.1);  // 32 microbatches nearly hide the 4-stage bubble
}

TEST_P(Schedules, DependenciesAreNeverViolated) {
  const auto r = simulate_pipeline(3, 5, 1.0, 1.5, GetParam());
  // Reconstruct end times.
  double fwd_end[3][5] = {}, bwd_end[3][5] = {};
  for (const auto& u : r.units) {
    (u.forward ? fwd_end : bwd_end)[u.stage][u.microbatch] = u.end_s;
  }
  for (const auto& u : r.units) {
    if (u.forward && u.stage > 0) {
      EXPECT_GE(u.start_s, fwd_end[u.stage - 1][u.microbatch] - 1e-9);
    }
    if (!u.forward) {
      EXPECT_GE(u.start_s, fwd_end[u.stage][u.microbatch] - 1e-9);
      if (u.stage < 2) {
        EXPECT_GE(u.start_s, bwd_end[u.stage + 1][u.microbatch] - 1e-9);
      }
    }
  }
}

TEST_P(Schedules, StagesNeverOverlapThemselves) {
  const auto r = simulate_pipeline(4, 6, 1.0, 2.0, GetParam());
  for (std::size_t i = 0; i < r.units.size(); ++i) {
    for (std::size_t j = i + 1; j < r.units.size(); ++j) {
      if (r.units[i].stage != r.units[j].stage) continue;
      const bool disjoint = r.units[i].end_s <= r.units[j].start_s + 1e-9 ||
                            r.units[j].end_s <= r.units[i].start_s + 1e-9;
      EXPECT_TRUE(disjoint);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Both, Schedules,
                         ::testing::Values(PipelineSchedule::kGpipe,
                                           PipelineSchedule::k1F1B));

TEST(Pipeline, OneFOneBCapsInFlightActivations) {
  // The schedules tie on time but differ on memory: GPipe keeps all m
  // microbatches live on stage 0; 1F1B caps it at p.
  const int p = 4, m = 16;
  const auto gpipe =
      simulate_pipeline(p, m, 1.0, 2.0, PipelineSchedule::kGpipe);
  const auto f1b =
      simulate_pipeline(p, m, 1.0, 2.0, PipelineSchedule::k1F1B);
  EXPECT_EQ(gpipe.peak_live_microbatches, m);
  EXPECT_LE(f1b.peak_live_microbatches, p);
  EXPECT_NEAR(gpipe.total_s, f1b.total_s, 1e-9);
}

TEST(Pipeline, MatchesTrainingSimulatorBubbleModel) {
  // The TrainingSimulator charges bubble_s = compute * (pp-1)/microbatches;
  // the explicit schedule gives (p-1)/(m+p-1) of total — consistent views:
  // bubble/compute = (p-1)/m.
  const int p = 2, m = 8;
  const auto r = simulate_pipeline(p, m, 1.0, 2.0, PipelineSchedule::k1F1B);
  const double compute_per_stage = m * 3.0;
  const double bubble = r.total_s - compute_per_stage;
  EXPECT_NEAR(bubble / compute_per_stage,
              static_cast<double>(p - 1) / m, 1e-9);
}

TEST(Pipeline, Validation) {
  EXPECT_THROW(simulate_pipeline(0, 4, 1.0, 1.0, PipelineSchedule::kGpipe),
               Error);
  EXPECT_THROW(simulate_pipeline(2, 0, 1.0, 1.0, PipelineSchedule::kGpipe),
               Error);
  EXPECT_THROW(simulate_pipeline(2, 2, 0.0, 1.0, PipelineSchedule::kGpipe),
               Error);
}

}  // namespace
}  // namespace matgpt::sim
