// Tests for src/serve/kv_tier and the engine sessions API built on it:
// host-tier LRU demotion order, disk spill round trips, fault injection
// (corrupt / truncated / missing / unwritable spill files must degrade to
// recompute — never wrong bytes, never a crash), async prefetch promotion,
// the KvTierConfig validation, and session
// park/resume byte-identity (greedy, stochastic, speculative) across every
// residency path: host hit, disk hit after demotion, and recompute
// fallback.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/kv_tier/kv_tier.h"
#include "serve/spec/proposer.h"

namespace matgpt {
namespace {

namespace fs = std::filesystem;
using serve::kv_tier::KvTierStore;
using serve::kv_tier::Residency;
using serve::kv_tier::Space;

// Per-test spill directory under the system temp dir; the store removes
// its files (and the directory) on destruction, remove_all covers the
// fault-injection tests that replace or litter it.
class SpillDir {
 public:
  explicit SpillDir(const std::string& name)
      : path_(fs::temp_directory_path() /
              ("matgpt_kv_tier_test_" + std::to_string(::getpid()) + "_" +
               name)) {
    fs::remove_all(path_);
  }
  ~SpillDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

KvTierStore::Entry make_entry(std::size_t floats, float fill,
                              std::int64_t tokens) {
  KvTierStore::Entry e;
  e.data.assign(floats, fill);
  e.tokens = tokens;
  return e;
}

// ---------------------------------------------------------------------------
// KvTierStore: LRU demotion + disk round trip
// ---------------------------------------------------------------------------

TEST(KvTierStore, LruDemotionOrderAndDiskEviction) {
  SpillDir dir("lru");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 128;  // two 64-byte entries
  tc.disk_tier_bytes = 128;  // two entries on disk, then LRU eviction
  tc.spill_dir = dir.str();
  KvTierStore store(tc);

  ASSERT_TRUE(store.store(Space::kPreempt, 1, make_entry(16, 1.0f, 1)));
  ASSERT_TRUE(store.store(Space::kPreempt, 2, make_entry(16, 2.0f, 1)));
  EXPECT_EQ(store.residency(Space::kPreempt, 1), Residency::kHost);
  EXPECT_EQ(store.residency(Space::kPreempt, 2), Residency::kHost);

  // Third store overflows host: the LEAST recently stored entry (1)
  // demotes; 2 and 3 stay hot.
  ASSERT_TRUE(store.store(Space::kPreempt, 3, make_entry(16, 3.0f, 1)));
  EXPECT_EQ(store.residency(Space::kPreempt, 1), Residency::kDisk);
  EXPECT_EQ(store.residency(Space::kPreempt, 2), Residency::kHost);
  EXPECT_EQ(store.residency(Space::kPreempt, 3), Residency::kHost);
  EXPECT_EQ(store.stats().demotions, 1u);

  // Fourth store demotes 2 — strict store order, 3 is more recent.
  ASSERT_TRUE(store.store(Space::kPreempt, 4, make_entry(16, 4.0f, 1)));
  EXPECT_EQ(store.residency(Space::kPreempt, 2), Residency::kDisk);
  EXPECT_EQ(store.residency(Space::kPreempt, 3), Residency::kHost);
  EXPECT_EQ(store.stats().demotions, 2u);

  // Fifth store demotes 3; the disk tier now holds 1, 2, 3 = 192 bytes,
  // over its 128-byte budget, so the least-recent disk entry (1) is
  // evicted outright.
  ASSERT_TRUE(store.store(Space::kPreempt, 5, make_entry(16, 5.0f, 1)));
  EXPECT_EQ(store.residency(Space::kPreempt, 1), Residency::kNone);
  EXPECT_EQ(store.residency(Space::kPreempt, 2), Residency::kDisk);
  EXPECT_EQ(store.residency(Space::kPreempt, 3), Residency::kDisk);
  EXPECT_EQ(store.stats().disk_evictions, 1u);
  EXPECT_FALSE(store.take(Space::kPreempt, 1).has_value());

  // A demoted entry round-trips byte-exactly through its spill file.
  const auto entry = store.take(Space::kPreempt, 2);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->tokens, 1);
  ASSERT_EQ(entry->data.size(), 16u);
  for (const float v : entry->data) EXPECT_EQ(v, 2.0f);
  EXPECT_EQ(store.stats().disk_hits, 1u);
}

TEST(KvTierStore, OversizedEntryLandsDirectlyOnDisk) {
  SpillDir dir("direct");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 64;
  tc.disk_tier_bytes = 1 << 20;
  tc.spill_dir = dir.str();
  KvTierStore store(tc);

  // 1024 bytes > the 64-byte host budget: straight to disk, bytes intact.
  KvTierStore::Entry big;
  for (std::size_t i = 0; i < 256; ++i) {
    big.data.push_back(static_cast<float>(i) * 0.5f);
  }
  big.tokens = 8;
  const KvTierStore::Entry want = big;
  ASSERT_TRUE(store.store(Space::kSession, 7, std::move(big)));
  EXPECT_EQ(store.residency(Space::kSession, 7), Residency::kDisk);
  EXPECT_EQ(store.stats().host_entries, 0u);

  const auto got = store.take(Space::kSession, 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tokens, want.tokens);
  EXPECT_EQ(got->data, want.data);
  EXPECT_EQ(store.residency(Space::kSession, 7), Residency::kNone);
}

TEST(KvTierStore, SpacesAreDistinctNamespaces) {
  serve::KvTierConfig tc;  // unbounded host, no disk
  KvTierStore store(tc);
  ASSERT_TRUE(store.store(Space::kPreempt, 9, make_entry(4, 1.0f, 1)));
  ASSERT_TRUE(store.store(Space::kSession, 9, make_entry(8, 2.0f, 2)));
  // Duplicate id within a space is refused.
  EXPECT_FALSE(store.store(Space::kPreempt, 9, make_entry(4, 3.0f, 1)));
  const auto preempt = store.take(Space::kPreempt, 9);
  const auto session = store.take(Space::kSession, 9);
  ASSERT_TRUE(preempt.has_value());
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(preempt->data.size(), 4u);
  EXPECT_EQ(session->data.size(), 8u);
}

TEST(KvTierStore, RefusesWhenNoTierCanHold) {
  SpillDir dir("refuse");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 64;
  tc.disk_tier_bytes = 128;
  tc.spill_dir = dir.str();
  KvTierStore store(tc);
  // 256 bytes: too big for host AND for disk -> refused, no side effects.
  EXPECT_FALSE(store.store(Space::kSession, 1, make_entry(64, 1.0f, 2)));
  EXPECT_EQ(store.stats().store_refusals, 1u);
  EXPECT_EQ(store.residency(Space::kSession, 1), Residency::kNone);
}

// ---------------------------------------------------------------------------
// Fault injection: corrupt / truncated / missing / unwritable spill files
// ---------------------------------------------------------------------------

fs::path session_spill_path(const SpillDir& dir, std::uint64_t id) {
  return dir.path() / ("spill-session-" + std::to_string(id) + ".kv");
}

void store_on_disk(KvTierStore& store, std::uint64_t id) {
  ASSERT_TRUE(store.store(Space::kSession, id, make_entry(256, 1.5f, 8)));
  ASSERT_EQ(store.residency(Space::kSession, id), Residency::kDisk);
}

TEST(KvTierStore, CorruptSpillPayloadIsDroppedNotReturned) {
  SpillDir dir("corrupt");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 64;  // force straight-to-disk
  tc.disk_tier_bytes = 1 << 20;
  tc.spill_dir = dir.str();
  KvTierStore store(tc);
  store_on_disk(store, 1);

  // Flip one payload byte past the header: the checksum must catch it.
  const fs::path path = session_spill_path(dir, 1);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(48);  // inside the payload (header is 32 bytes)
    const char bad = '\x5a';
    f.write(&bad, 1);
  }
  EXPECT_FALSE(store.take(Space::kSession, 1).has_value());
  EXPECT_EQ(store.stats().corrupt_drops, 1u);
  EXPECT_EQ(store.residency(Space::kSession, 1), Residency::kNone);
}

TEST(KvTierStore, TruncatedSpillIsDroppedNotReturned) {
  SpillDir dir("trunc");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 64;
  tc.disk_tier_bytes = 1 << 20;
  tc.spill_dir = dir.str();
  KvTierStore store(tc);
  store_on_disk(store, 2);
  fs::resize_file(session_spill_path(dir, 2), 40);  // mid-payload cut
  EXPECT_FALSE(store.take(Space::kSession, 2).has_value());
  EXPECT_EQ(store.stats().corrupt_drops, 1u);
}

TEST(KvTierStore, MissingSpillFileIsDroppedNotReturned) {
  SpillDir dir("missing");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 64;
  tc.disk_tier_bytes = 1 << 20;
  tc.spill_dir = dir.str();
  KvTierStore store(tc);
  store_on_disk(store, 3);
  fs::remove(session_spill_path(dir, 3));
  EXPECT_FALSE(store.take(Space::kSession, 3).has_value());
  EXPECT_EQ(store.stats().corrupt_drops, 1u);
}

TEST(KvTierStore, UnwritableSpillDirDegradesToRefusalAndDrop) {
  SpillDir dir("enospc");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 128;
  tc.disk_tier_bytes = 1 << 20;
  tc.spill_dir = dir.str();
  KvTierStore store(tc);

  // Simulate a dead disk (the ENOSPC/EIO class of failures): replace the
  // spill directory with a regular file so every open() fails.
  fs::remove_all(dir.path());
  { std::ofstream block(dir.path()); }

  // Straight-to-disk store: the write fails -> store refuses, caller
  // keeps recompute state.
  EXPECT_FALSE(store.store(Space::kSession, 1, make_entry(256, 1.0f, 8)));
  EXPECT_GE(store.stats().spill_failures, 1u);

  // Demotion spill failure: the victim entry is lost (take -> recompute),
  // but the store itself stays consistent and the new entry is resident.
  ASSERT_TRUE(store.store(Space::kSession, 2, make_entry(16, 2.0f, 1)));
  ASSERT_TRUE(store.store(Space::kSession, 3, make_entry(16, 3.0f, 1)));
  ASSERT_TRUE(store.store(Space::kSession, 4, make_entry(16, 4.0f, 1)));
  EXPECT_FALSE(store.take(Space::kSession, 2).has_value());
  EXPECT_TRUE(store.take(Space::kSession, 4).has_value());
  EXPECT_GE(store.stats().spill_failures, 2u);
}

// ---------------------------------------------------------------------------
// Async prefetch
// ---------------------------------------------------------------------------

TEST(KvTierStore, PrefetchPromotesDiskEntryToHost) {
  SpillDir dir("prefetch");
  serve::KvTierConfig tc;
  tc.host_tier_bytes = 128;  // one 128-byte entry
  tc.disk_tier_bytes = 1 << 20;
  tc.spill_dir = dir.str();
  KvTierStore store(tc);

  ASSERT_TRUE(store.store(Space::kSession, 1, make_entry(32, 1.0f, 2)));
  ASSERT_TRUE(store.store(Space::kSession, 2, make_entry(32, 2.0f, 2)));
  ASSERT_EQ(store.residency(Space::kSession, 1), Residency::kDisk);

  // Free the host slot, then ask the worker to warm entry 1.
  ASSERT_TRUE(store.take(Space::kSession, 2).has_value());
  store.request_prefetch(Space::kSession, 1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (store.residency(Space::kSession, 1) != Residency::kHost &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(store.residency(Space::kSession, 1), Residency::kHost);
  EXPECT_EQ(store.stats().promotions, 1u);

  const auto entry = store.take(Space::kSession, 1);
  ASSERT_TRUE(entry.has_value());
  for (const float v : entry->data) EXPECT_EQ(v, 1.0f);
  EXPECT_EQ(store.stats().prefetch_hits, 1u);
}

// ---------------------------------------------------------------------------
// KvTierConfig validation
// ---------------------------------------------------------------------------

nn::GptConfig tier_model_config() {
  nn::GptConfig c;
  c.arch = nn::ArchFamily::kLLaMA;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = 1;
  c.max_seq = 64;
  return c;
}

TEST(KvTierConfigValidate, RejectsBadKnobs) {
  nn::GptModel model(tier_model_config());
  {
    serve::EngineConfig ec;
    ec.kv_tier.prefetch_depth = -1;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.kv_tier.disk_tier_bytes = 1024;  // disk tier without a spill_dir
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
}

TEST(KvTierConfigValidate, HostTierBudgetReachesTheStore) {
  nn::GptModel model(tier_model_config());
  serve::EngineConfig ec;
  ec.kv_tier.host_tier_bytes = 4096;
  serve::InferenceEngine engine(model, ec);
  EXPECT_EQ(engine.tier().config().host_tier_bytes, 4096u);
}

// ---------------------------------------------------------------------------
// Engine sessions: lifecycle checks
// ---------------------------------------------------------------------------

serve::Request session_request(std::uint64_t session_id,
                               std::vector<std::int32_t> prompt,
                               std::int64_t max_new) {
  serve::Request req;
  req.session_id = session_id;
  req.prompt = std::move(prompt);
  req.max_new_tokens = max_new;
  req.sampling.temperature = 0.0f;
  return req;
}

TEST(ServeSessions, LifecycleChecks) {
  nn::GptModel model(tier_model_config());
  serve::EngineConfig ec;
  serve::InferenceEngine engine(model, ec);

  EXPECT_FALSE(engine.has_session(1));
  const std::uint64_t a = engine.create_session();
  const std::uint64_t b = engine.create_session();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_TRUE(engine.has_session(a));
  EXPECT_EQ(engine.session_count(), 2u);

  // Unknown session and empty first prompt are rejected up front.
  EXPECT_THROW(engine.resume(session_request(999, {1, 2}, 4)), Error);
  EXPECT_THROW(engine.resume(session_request(a, {}, 4)), Error);
  EXPECT_FALSE(engine.session_busy(a));  // rejections never wedge the slot

  // One request in flight per session: the second submit throws, and the
  // slot is released once the first retires.
  auto f = engine.resume(session_request(a, {1, 2, 3}, 4));
  EXPECT_TRUE(engine.session_busy(a));
  EXPECT_THROW(engine.resume(session_request(a, {4}, 4)), Error);
  engine.run_until_idle();
  EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  EXPECT_FALSE(engine.session_busy(a));

  const auto info = engine.session_info(a);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->tokens, 3 + 4);
  EXPECT_EQ(info->turns, 1);
  EXPECT_FALSE(info->busy);
  EXPECT_EQ(info->residency, Residency::kHost);  // unbounded host tier

  engine.drop_session(a);
  EXPECT_FALSE(engine.has_session(a));
  EXPECT_FALSE(engine.tier().contains(Space::kSession, a));
  EXPECT_EQ(engine.session_count(), 1u);
  EXPECT_FALSE(engine.session_info(a).has_value());
}

// ---------------------------------------------------------------------------
// Session park/resume byte-identity across residency paths
// ---------------------------------------------------------------------------

enum class Flavor { kGreedy, kStochastic, kSpeculative };

serve::Request flavored_request(std::uint64_t id, Flavor flavor,
                                std::vector<std::int32_t> prompt,
                                std::int64_t max_new) {
  serve::Request req;
  req.id = id;
  req.prompt = std::move(prompt);
  req.max_new_tokens = max_new;
  if (flavor == Flavor::kStochastic) {
    req.sampling.temperature = 0.8f;
    req.sampling.top_k = 20;
    req.sampling.top_p = 0.9f;
  } else {
    req.sampling.temperature = 0.0f;  // greedy; spec stays greedy too
  }
  req.sampling.seed = 0x5e55 + id;
  if (flavor == Flavor::kSpeculative) req.spec_k = 2;
  return req;
}

serve::EngineConfig flavored_engine_config(nn::GptModel& model,
                                           Flavor flavor) {
  serve::EngineConfig ec;
  ec.max_batch = 4;
  ec.kv_slots = 4;
  if (flavor == Flavor::kSpeculative) {
    ec.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 1);
  }
  return ec;
}

std::vector<std::int32_t> prompt_for(std::uint64_t id) {
  std::vector<std::int32_t> p;
  for (std::int64_t t = 0; t < 8; ++t) {
    p.push_back(static_cast<std::int32_t>((id * 11 + t * 3) % 50));
  }
  return p;
}

// The never-parked reference: one uninterrupted request.
std::vector<std::int32_t> reference_tokens(nn::GptModel& model,
                                           Flavor flavor, std::uint64_t id,
                                           std::int64_t total_new) {
  serve::InferenceEngine engine(model,
                                flavored_engine_config(model, flavor));
  auto f = engine.submit(flavored_request(id, flavor, prompt_for(id),
                                          total_new));
  engine.run_until_idle();
  const serve::RequestResult result = f.get();
  EXPECT_EQ(result.status, serve::RequestStatus::kOk);
  return result.tokens;
}

// Turn 1: generate on the session until >= park_after tokens, park
// mid-decode, retire as kParked. Turn 2: empty-prompt resume to total_new.
// The concatenated stream must be byte-identical to never parking. An
// optional hook runs between the turns (fault injection on spill files).
void run_parked_session(serve::InferenceEngine& engine, Flavor flavor,
                        std::uint64_t id, std::int64_t total_new,
                        std::vector<std::int32_t>& final_tokens,
                        std::uint64_t* session_out = nullptr,
                        const std::function<void(std::uint64_t)>&
                            between_turns = {}) {
  const std::uint64_t sid = engine.create_session();
  if (session_out != nullptr) *session_out = sid;

  serve::Request turn1 = flavored_request(id, flavor, prompt_for(id),
                                          total_new);
  turn1.session_id = sid;
  std::atomic<std::int64_t> seen{0};
  turn1.on_token = [&seen](std::int32_t) { seen.fetch_add(1); };
  auto f1 = engine.resume(std::move(turn1));
  for (int guard = 0; seen.load() < 4 && guard < 200; ++guard) {
    engine.step();
  }
  ASSERT_GE(seen.load(), 4);
  engine.park(id);
  engine.run_until_idle();
  const serve::RequestResult r1 = f1.get();
  ASSERT_EQ(r1.status, serve::RequestStatus::kParked);
  ASSERT_GT(r1.generated_tokens, 0);
  ASSERT_LT(r1.generated_tokens, total_new);

  if (between_turns) between_turns(sid);

  serve::Request turn2 = flavored_request(id + 1000, flavor, {},
                                          total_new - r1.generated_tokens);
  turn2.sampling.seed = 0x5e55 + id;  // same stream; rng state carries over
  turn2.session_id = sid;
  auto f2 = engine.resume(std::move(turn2));
  engine.run_until_idle();
  const serve::RequestResult r2 = f2.get();
  ASSERT_EQ(r2.status, serve::RequestStatus::kOk);
  EXPECT_EQ(r2.generated_tokens, total_new - r1.generated_tokens);
  final_tokens = r2.tokens;
}

void check_park_resume_byte_identity(Flavor flavor) {
  nn::GptModel model(tier_model_config());
  const std::int64_t total_new = 20;
  SpillDir dir("identity");

  // Host path: unbounded host tier, resume restores from RAM.
  {
    serve::InferenceEngine engine(model,
                                  flavored_engine_config(model, flavor));
    std::vector<std::int32_t> got;
    run_parked_session(engine, flavor, 10, total_new, got);
    EXPECT_EQ(got, reference_tokens(model, flavor, 10, total_new))
        << "host-path resume diverged";
    EXPECT_GE(engine.stats().session_parks(), 1u);
    EXPECT_EQ(engine.stats().session_resume_recomputes(), 0u);
    EXPECT_GE(engine.tier().stats().host_hits, 1u);
  }

  // Disk path THROUGH demotion: the host tier holds one parked entry;
  // parking a second session pushes the first to disk, whose resume then
  // reads (and checksums) the spill file.
  {
    serve::EngineConfig ec = flavored_engine_config(model, flavor);
    ec.kv_tier.host_tier_bytes = 2048;  // one ~1.5 KiB entry, not two
    ec.kv_tier.disk_tier_bytes = 1 << 20;
    ec.kv_tier.spill_dir = dir.str();
    serve::InferenceEngine engine(model, ec);

    std::vector<std::int32_t> got_a;
    std::vector<std::int32_t> got_b;
    std::uint64_t sid_a = 0;
    // Interleave: park A's turn 1, park B's turn 1 (demotes A to disk),
    // then resume both.
    const std::uint64_t sid = engine.create_session();
    serve::Request a1 = flavored_request(20, flavor, prompt_for(20),
                                         total_new);
    a1.session_id = sid;
    std::atomic<std::int64_t> seen{0};
    a1.on_token = [&seen](std::int32_t) { seen.fetch_add(1); };
    auto fa1 = engine.resume(std::move(a1));
    for (int guard = 0; seen.load() < 4 && guard < 200; ++guard) {
      engine.step();
    }
    engine.park(20);
    engine.run_until_idle();
    const serve::RequestResult ra1 = fa1.get();
    ASSERT_EQ(ra1.status, serve::RequestStatus::kParked);
    EXPECT_EQ(engine.tier().residency(Space::kSession, sid),
              Residency::kHost);

    run_parked_session(engine, flavor, 30, total_new, got_b, &sid_a);
    // B's two parks (mid-flight and final) pushed A's entry to disk.
    EXPECT_EQ(engine.tier().residency(Space::kSession, sid),
              Residency::kDisk);
    EXPECT_GE(engine.tier().stats().demotions, 1u);

    serve::Request a2 = flavored_request(1020, flavor, {},
                                         total_new - ra1.generated_tokens);
    a2.sampling.seed = 0x5e55 + 20;
    a2.session_id = sid;
    auto fa2 = engine.resume(std::move(a2));
    engine.run_until_idle();
    const serve::RequestResult ra2 = fa2.get();
    ASSERT_EQ(ra2.status, serve::RequestStatus::kOk);
    got_a = ra2.tokens;

    EXPECT_EQ(got_a, reference_tokens(model, flavor, 20, total_new))
        << "disk-path resume diverged";
    EXPECT_EQ(got_b, reference_tokens(model, flavor, 30, total_new))
        << "demoting-session resume diverged";
    // The entry came back through a spill-file read either way: directly
    // at take() (disk hit) or promoted early by the prefetch worker
    // (prefetch hit) — which one wins is a benign race.
    EXPECT_GE(engine.tier().stats().disk_hits +
                  engine.tier().stats().prefetch_hits,
              1u);
    EXPECT_EQ(engine.stats().session_resume_recomputes(), 0u);
  }

  // Recompute path: a host tier too small for any entry and no disk tier
  // refuses every park; resume re-prefills from the registry history.
  {
    serve::EngineConfig ec = flavored_engine_config(model, flavor);
    ec.kv_tier.host_tier_bytes = 64;
    serve::InferenceEngine engine(model, ec);
    std::vector<std::int32_t> got;
    run_parked_session(engine, flavor, 40, total_new, got);
    EXPECT_EQ(got, reference_tokens(model, flavor, 40, total_new))
        << "recompute-fallback resume diverged";
    EXPECT_GE(engine.stats().session_park_drops(), 1u);
    EXPECT_GE(engine.stats().session_resume_recomputes(), 1u);
    EXPECT_GE(engine.tier().stats().store_refusals, 1u);
  }
}

TEST(ServeSessions, ParkResumeByteIdenticalGreedy) {
  check_park_resume_byte_identity(Flavor::kGreedy);
}

TEST(ServeSessions, ParkResumeByteIdenticalStochastic) {
  check_park_resume_byte_identity(Flavor::kStochastic);
}

TEST(ServeSessions, ParkResumeByteIdenticalSpeculative) {
  check_park_resume_byte_identity(Flavor::kSpeculative);
}

TEST(ServeSessions, CorruptSpillResumeRecomputesByteIdentical) {
  nn::GptModel model(tier_model_config());
  const std::int64_t total_new = 20;
  SpillDir dir("resume_corrupt");

  serve::EngineConfig ec = flavored_engine_config(model, Flavor::kGreedy);
  ec.kv_tier.host_tier_bytes = 256;  // smaller than any entry: direct spill
  ec.kv_tier.disk_tier_bytes = 1 << 20;
  ec.kv_tier.spill_dir = dir.str();
  serve::InferenceEngine engine(model, ec);

  std::vector<std::int32_t> got;
  run_parked_session(
      engine, Flavor::kGreedy, 50, total_new, got, nullptr,
      [&](std::uint64_t sid) {
        ASSERT_EQ(engine.tier().residency(Space::kSession, sid),
                  Residency::kDisk);
        const fs::path path =
            dir.path() / ("spill-session-" + std::to_string(sid) + ".kv");
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(64);  // payload byte
        const char bad = '\x77';
        f.write(&bad, 1);
      });
  EXPECT_EQ(got, reference_tokens(model, Flavor::kGreedy, 50, total_new))
      << "corrupt-spill resume returned wrong bytes";
  EXPECT_GE(engine.stats().session_resume_recomputes(), 1u);
  EXPECT_GE(engine.tier().stats().corrupt_drops, 1u);
}

TEST(ServeSessions, MultiTurnNewPromptMatchesFreshFullHistory) {
  nn::GptModel model(tier_model_config());
  serve::InferenceEngine engine(model,
                                flavored_engine_config(model,
                                                       Flavor::kGreedy));
  const std::uint64_t sid = engine.create_session();
  const std::vector<std::int32_t> p1 = {3, 1, 4, 1, 5};
  const std::vector<std::int32_t> p2 = {9, 2, 6};

  auto f1 = engine.resume(session_request(sid, p1, 6));
  engine.run_until_idle();
  const serve::RequestResult r1 = f1.get();
  ASSERT_EQ(r1.status, serve::RequestStatus::kOk);

  auto f2 = engine.resume(session_request(sid, p2, 6));
  engine.run_until_idle();
  const serve::RequestResult r2 = f2.get();
  ASSERT_EQ(r2.status, serve::RequestStatus::kOk);

  // Fresh request whose prompt spells out the whole conversation so far.
  std::vector<std::int32_t> history = r1.tokens;
  history.insert(history.end(), p2.begin(), p2.end());
  serve::InferenceEngine fresh(model,
                               flavored_engine_config(model,
                                                      Flavor::kGreedy));
  serve::Request full;
  full.prompt = history;
  full.max_new_tokens = 6;
  full.sampling.temperature = 0.0f;
  auto f3 = fresh.submit(std::move(full));
  fresh.run_until_idle();
  const serve::RequestResult r3 = f3.get();
  ASSERT_EQ(r3.status, serve::RequestStatus::kOk);
  EXPECT_EQ(r2.tokens, r3.tokens)
      << "session append diverged from fresh full-history prefill";
}

TEST(ServeSessions, StatsJsonCarriesTierAndSessionCounters) {
  nn::GptModel model(tier_model_config());
  serve::InferenceEngine engine(model,
                                flavored_engine_config(model,
                                                       Flavor::kGreedy));
  const std::uint64_t sid = engine.create_session();
  auto f = engine.resume(session_request(sid, {1, 2, 3}, 4));
  engine.run_until_idle();
  ASSERT_EQ(f.get().status, serve::RequestStatus::kOk);

  const std::string json = engine.stats_json();
  for (const char* field :
       {"\"session_parks\"", "\"session_resumes\"", "\"sessions_live\"",
        "\"kv_tier_stores\"", "\"kv_tier_host_bytes\"",
        "\"kv_tier_corrupt_drops\"", "\"parked\""}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << field << " missing from stats_json";
  }
}

}  // namespace
}  // namespace matgpt
