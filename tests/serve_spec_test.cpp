// Unit tests for src/serve/spec: the multi-token verify path, KV rollback,
// exact greedy speculative decoding for every proposer type, residual
// sampling, and mixed speculative/plain batches through the engine.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/spec/proposer.h"
#include "serve/spec/speculative.h"
#include "serve/trace.h"

namespace matgpt {
namespace {

nn::GptConfig spec_config(nn::ArchFamily arch) {
  nn::GptConfig c;
  c.arch = arch;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 3;  // deep enough that layer-skip drafts skip something
  c.n_heads = 2;
  c.n_kv_heads = arch == nn::ArchFamily::kLLaMA ? 1 : 0;
  c.max_seq = 64;
  return c;
}

void expect_cache_equal(const nn::KvCache& a, const nn::KvCache& b) {
  ASSERT_EQ(a.length, b.length);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    ASSERT_EQ(a.layers[l].length(), b.layers[l].length());
    const auto n = a.layers[l].keys.numel();
    ASSERT_EQ(n, b.layers[l].keys.numel());
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(a.layers[l].keys.data()[i], b.layers[l].keys.data()[i])
          << "layer " << l << " key elem " << i;
      ASSERT_EQ(a.layers[l].values.data()[i], b.layers[l].values.data()[i])
          << "layer " << l << " value elem " << i;
    }
  }
}

// verify_append over k tokens must reproduce, row for row and bit for bit,
// k sequential single-token forward_incremental steps — the property exact
// acceptance rests on.
TEST(SpecVerifyAppend, BitIdenticalToSequentialSingleTokenDecode) {
  for (auto arch : {nn::ArchFamily::kNeoX, nn::ArchFamily::kLLaMA}) {
    const nn::GptConfig c = spec_config(arch);
    nn::GptModel model(c);
    const std::vector<std::int32_t> prompt{3, 14, 15, 9, 2};
    const std::vector<std::int32_t> verify_tokens{6, 5, 35, 8};

    nn::KvCache batched, reference;
    {
      Tape t1, t2;
      model.forward_incremental(t1, prompt, batched);
      model.forward_incremental(t2, prompt, reference);
    }

    Tape tape;
    Var logits = model.verify_append(tape, verify_tokens, batched);
    ASSERT_EQ(logits.value().dim(0),
              static_cast<std::int64_t>(verify_tokens.size()));
    ASSERT_EQ(logits.value().dim(1), c.vocab_size);

    for (std::size_t t = 0; t < verify_tokens.size(); ++t) {
      Tape ref_tape;
      std::span<const std::int32_t> one(&verify_tokens[t], 1);
      Var ref = model.forward_incremental(ref_tape, one, reference);
      for (std::int64_t v = 0; v < c.vocab_size; ++v) {
        ASSERT_EQ(logits.value().at(static_cast<std::int64_t>(t), v),
                  ref.value().at(0, v))
            << "arch " << static_cast<int>(arch) << " row " << t << " vocab "
            << v;
      }
    }
    expect_cache_equal(batched, reference);
  }
}

// Rolling back after a rejected speculation must leave the cache
// bit-identical to one that never speculated — and decoding must continue
// identically from it. Covers both reserved (pool) and dynamic slots.
TEST(SpecKvRollback, TruncatedCacheEqualsNeverSpeculatedCache) {
  const nn::GptConfig c = spec_config(nn::ArchFamily::kLLaMA);
  nn::GptModel model(c);
  const std::vector<std::int32_t> prompt{7, 3, 11};
  const std::vector<std::int32_t> rejected{20, 21, 22, 23};

  for (bool reserved : {false, true}) {
    nn::KvCache speculated, clean;
    if (reserved) {
      speculated.reserve(c);
      clean.reserve(c);
    }
    {
      Tape t1, t2;
      model.forward_incremental(t1, prompt, speculated);
      model.forward_incremental(t2, prompt, clean);
    }
    {
      Tape tape;
      model.verify_append(tape, rejected, speculated);
    }
    ASSERT_EQ(speculated.length,
              static_cast<std::int64_t>(prompt.size() + rejected.size()));
    speculated.truncate(static_cast<std::int64_t>(prompt.size()));
    expect_cache_equal(speculated, clean);

    // The rolled-back cache must keep decoding exactly like the clean one.
    const std::int32_t next = 4;
    Tape t1, t2;
    std::span<const std::int32_t> one(&next, 1);
    Var a = model.forward_incremental(t1, one, speculated);
    Var b = model.forward_incremental(t2, one, clean);
    for (std::int64_t v = 0; v < c.vocab_size; ++v) {
      ASSERT_EQ(a.value().at(0, v), b.value().at(0, v))
          << (reserved ? "reserved" : "dynamic") << " vocab " << v;
    }
  }
}

TEST(SpecKvRollback, TruncateValidatesLength) {
  const nn::GptConfig c = spec_config(nn::ArchFamily::kNeoX);
  nn::GptModel model(c);
  nn::KvCache cache;
  Tape tape;
  const std::vector<std::int32_t> prompt{1, 2, 3};
  model.forward_incremental(tape, prompt, cache);
  EXPECT_THROW(cache.truncate(4), Error);
  EXPECT_THROW(cache.truncate(-1), Error);
  cache.truncate(3);  // no-op
  EXPECT_EQ(cache.length, 3);
  cache.truncate(0);
  EXPECT_EQ(cache.length, 0);
  EXPECT_EQ(cache.layers.front().length(), 0);
}

// The exactness contract: greedy speculative output is byte-identical to
// generate_cached for every proposer — perfect, partial, and adversarial.
TEST(SpecDecoder, GreedyByteIdenticalForEveryProposer) {
  for (auto arch : {nn::ArchFamily::kNeoX, nn::ArchFamily::kLLaMA}) {
    const nn::GptConfig c = spec_config(arch);
    nn::GptModel model(c);
    const std::vector<std::int32_t> prompt{9, 8, 7};
    const std::int64_t max_new = 17;
    nn::SamplingParams greedy;
    greedy.temperature = 0.0f;
    Rng ref_rng(1);
    const auto expected =
        model.generate_cached(prompt, max_new, greedy, ref_rng);

    std::vector<std::pair<const char*,
                          std::shared_ptr<serve::spec::DraftProposer>>>
        proposers;
    // draft == target: an independent draft built from the identical config
    // (and seed) — acceptance must be exactly 1.0.
    proposers.emplace_back(
        "independent twin",
        std::make_shared<serve::spec::IndependentDraft>(c));
    // Self-speculation at full depth IS the target — acceptance 1.0 again.
    proposers.emplace_back(
        "layer-skip full",
        std::make_shared<serve::spec::LayerSkipDraft>(model, c.n_layers));
    // Self-speculation skipping layers: partial acceptance, same output.
    proposers.emplace_back(
        "layer-skip 1",
        std::make_shared<serve::spec::LayerSkipDraft>(model, 1));
    // Adversarial scripted garbage: acceptance ~0, still the same output.
    proposers.emplace_back(
        "adversarial",
        std::make_shared<serve::spec::ScriptedDraft>(
            std::vector<std::vector<std::int32_t>>{}, c.vocab_size,
            c.max_seq));

    for (const auto& [label, proposer] : proposers) {
      serve::spec::SpeculativeDecoder decoder(model, proposer);
      serve::spec::SpecStats stats;
      Rng rng(1);
      const auto got =
          decoder.generate(prompt, max_new, greedy, rng, /*k=*/4, &stats);
      EXPECT_EQ(got, expected) << "arch " << static_cast<int>(arch) << " "
                               << label;
      EXPECT_EQ(stats.tokens_emitted, max_new - 1);  // first token: prefill
      EXPECT_GT(stats.verify_rounds, 0);
      if (std::string(label) == "independent twin" ||
          std::string(label) == "layer-skip full") {
        EXPECT_EQ(stats.drafts_accepted, stats.drafts_proposed)
            << label << ": draft==target must accept every draft";
        EXPECT_DOUBLE_EQ(stats.acceptance_rate(), 1.0);
      }
      if (std::string(label) == "adversarial") {
        // Degenerates toward one token per round, never a wrong token. (The
        // scripted zeros may coincide with a real argmax, so acceptance is
        // near zero, not exactly zero.)
        EXPECT_GT(stats.drafts_proposed, 0);
        EXPECT_LT(stats.acceptance_rate(), 1.0);
        // Adaptive depth kicked in: far fewer than k drafts per round.
        EXPECT_LT(stats.drafts_proposed, 4 * stats.verify_rounds);
      }
    }
  }
}

// An oracle scripted with the known-correct continuation accepts everything
// and saves k sequential steps per round.
TEST(SpecDecoder, OracleScriptReachesFullAcceptance) {
  const nn::GptConfig c = spec_config(nn::ArchFamily::kLLaMA);
  nn::GptModel model(c);
  const std::vector<std::int32_t> prompt{5, 6, 7, 8};
  const std::int64_t max_new = 16;
  nn::SamplingParams greedy;
  greedy.temperature = 0.0f;
  Rng ref_rng(3);
  const auto expected =
      model.generate_cached(prompt, max_new, greedy, ref_rng);

  auto oracle = std::make_shared<serve::spec::ScriptedDraft>(
      std::vector<std::vector<std::int32_t>>{expected}, c.vocab_size,
      c.max_seq);
  serve::spec::SpeculativeDecoder decoder(model, oracle);
  serve::spec::SpecStats stats;
  Rng rng(3);
  const auto got =
      decoder.generate(prompt, max_new, greedy, rng, /*k=*/4, &stats);
  EXPECT_EQ(got, expected);
  EXPECT_DOUBLE_EQ(stats.acceptance_rate(), 1.0);
  EXPECT_GT(stats.steps_saved(), 0);
  // k+1 tokens per verify round (modulo the tail), so the round count is
  // roughly (max_new - 1) / (k + 1).
  EXPECT_LT(stats.verify_rounds, max_new - 1);
}

// Residual sampling: stochastic speculative decoding must be reproducible
// given the seed, in-vocabulary, and the right length for any draft.
TEST(SpecDecoder, StochasticResidualSamplingIsReproducible) {
  const nn::GptConfig c = spec_config(nn::ArchFamily::kNeoX);
  nn::GptModel model(c);
  const std::vector<std::int32_t> prompt{2, 4, 6};
  const std::int64_t max_new = 12;
  nn::SamplingParams sampling;
  sampling.temperature = 0.8f;
  sampling.top_k = 20;
  sampling.top_p = 0.95f;

  auto draft = std::make_shared<serve::spec::LayerSkipDraft>(model, 1);
  serve::spec::SpeculativeDecoder decoder(model, draft);
  Rng rng_a(42), rng_b(42);
  const auto a = decoder.generate(prompt, max_new, sampling, rng_a, 3);
  const auto b = decoder.generate(prompt, max_new, sampling, rng_b, 3);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), prompt.size() + max_new);
  for (const std::int32_t token : a) {
    EXPECT_GE(token, 0);
    EXPECT_LT(token, c.vocab_size);
  }
}

// Mixed speculative/plain batches through the continuous-batching engine:
// every greedy request — speculative or not — matches its batch-1
// generate_cached self, slots (target and draft) all return to the pools,
// and speculation metrics flow through to results and ServerStats.
TEST(SpecEngine, MixedSpeculativeAndPlainBatches) {
  const nn::GptConfig c = spec_config(nn::ArchFamily::kLLaMA);
  nn::GptModel model(c);

  serve::EngineConfig ec;
  ec.max_batch = 3;
  ec.kv_slots = 3;
  ec.queue_capacity = 4;
  ec.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 2);
  serve::InferenceEngine engine(model, ec);
  ASSERT_NE(engine.draft_pool(), nullptr);

  serve::TraceSpec spec;
  spec.n_requests = 10;
  spec.vocab_size = c.vocab_size;
  spec.prompt_len_min = 2;
  spec.prompt_len_max = 6;
  // max_new >= 3 so every speculative request gets at least one real
  // propose/verify round (remaining >= 2 after the prefill token).
  spec.max_new_min = 3;
  spec.max_new_max = 10;
  spec.greedy_fraction = 1.0;  // all greedy: exact identity for every request
  auto trace = serve::synth_trace(spec);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i % 2 == 0) trace[i].spec_k = 3;  // interleave spec and plain
  }
  const auto reference_trace = trace;
  const auto results = engine.run_trace(std::move(trace));
  ASSERT_EQ(results.size(), reference_trace.size());

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& req = reference_trace[i];
    EXPECT_EQ(results[i].generated_tokens, req.max_new_tokens);
    Rng rng(req.sampling.seed);
    const auto expected =
        model.generate_cached(req.prompt, req.max_new_tokens, req.sampling,
                              rng);
    EXPECT_EQ(results[i].tokens, expected)
        << "request " << i << (req.spec_k > 0 ? " (speculative)" : " (plain)");
    if (req.spec_k > 0) {
      EXPECT_GT(results[i].drafts_proposed, 0) << "request " << i;
      EXPECT_GT(results[i].verify_rounds, 0) << "request " << i;
    } else {
      EXPECT_EQ(results[i].drafts_proposed, 0) << "request " << i;
    }
  }

  EXPECT_TRUE(engine.kv_pool().all_free());
  EXPECT_TRUE(engine.draft_pool()->all_free());
  EXPECT_EQ(engine.active_count(), 0u);
  EXPECT_EQ(engine.stats().requests_completed(), reference_trace.size());
  EXPECT_GT(engine.stats().drafts_proposed(), 0u);
  const std::string report = engine.stats().report(1.0);
  EXPECT_NE(report.find("spec acceptance"), std::string::npos);
}

TEST(SpecEngine, SpeculativeRequestWithoutProposerThrows) {
  const nn::GptConfig c = spec_config(nn::ArchFamily::kNeoX);
  nn::GptModel model(c);
  serve::InferenceEngine engine(model);
  serve::Request req;
  req.prompt = {1, 2};
  req.max_new_tokens = 4;
  req.spec_k = 4;
  EXPECT_THROW(engine.submit(req), Error);
}

TEST(SpecDecoder, RejectsVocabMismatchedDraft) {
  const nn::GptConfig c = spec_config(nn::ArchFamily::kNeoX);
  nn::GptModel model(c);
  nn::GptConfig other = c;
  other.vocab_size = c.vocab_size + 1;
  auto draft = std::make_shared<serve::spec::IndependentDraft>(other);
  EXPECT_THROW(serve::spec::SpeculativeDecoder(model, draft), Error);
}

}  // namespace
}  // namespace matgpt
