// Unit tests for optimizers and the LR schedule: convergence on quadratic
// objectives, LAMB trust-ratio behaviour, clipping, and schedule shape.

#include <gtest/gtest.h>

#include <cmath>

#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace matgpt {
namespace {

/// Minimal quadratic problem: minimize ||w - target||^2.
struct Quadratic {
  Var w;
  Tensor target;

  explicit Quadratic(const std::vector<float>& init,
                     const std::vector<float>& tgt)
      : w(make_var(Tensor::from_data(
                       {static_cast<std::int64_t>(init.size())}, init),
                   true)),
        target(Tensor::from_data({static_cast<std::int64_t>(tgt.size())},
                                 tgt)) {}

  double loss_and_grad() {
    w.node()->zero_grad();
    Tensor grad(w.value().shape());
    double loss = 0.0;
    for (std::int64_t i = 0; i < w.value().numel(); ++i) {
      const double d = w.value()[i] - target[i];
      loss += d * d;
      grad[i] = static_cast<float>(2.0 * d);
    }
    w.node()->accumulate(grad);
    return loss;
  }

  std::vector<nn::NamedParam> params() { return {{"w", w}}; }
};

TEST(CosineSchedule, WarmupRampsLinearly) {
  optim::CosineSchedule s(1.0, 1000, 0.1, 0.1);
  EXPECT_EQ(s.warmup_steps(), 100);
  EXPECT_NEAR(s.lr(0), 0.01, 1e-9);
  EXPECT_NEAR(s.lr(49), 0.5, 1e-9);
  EXPECT_NEAR(s.lr(99), 1.0, 1e-9);
}

TEST(CosineSchedule, DecaysToFinalFraction) {
  optim::CosineSchedule s(0.01, 1000, 0.01, 0.1);
  EXPECT_NEAR(s.lr(10), 0.01, 1e-9);       // peak right after warmup
  EXPECT_NEAR(s.lr(999), 0.001, 1e-5);     // final = 10% of initial
  // Monotone decreasing after warmup.
  for (int t = 11; t < 999; ++t) {
    EXPECT_LE(s.lr(t + 1), s.lr(t) + 1e-12);
  }
}

TEST(CosineSchedule, MidpointIsHalfway) {
  optim::CosineSchedule s(1.0, 1000, 0.0, 0.0);
  EXPECT_NEAR(s.lr(500), 0.5, 1e-2);
}

TEST(CosineSchedule, Validation) {
  EXPECT_THROW(optim::CosineSchedule(0.0, 100), Error);
  EXPECT_THROW(optim::CosineSchedule(0.1, 0), Error);
  EXPECT_THROW(optim::CosineSchedule(0.1, 100, 1.5), Error);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Quadratic q({5.0f, -3.0f}, {1.0f, 2.0f});
  optim::Sgd opt(q.params());
  for (int i = 0; i < 200; ++i) {
    q.loss_and_grad();
    opt.step(0.1);
  }
  EXPECT_NEAR(q.w.value()[0], 1.0f, 1e-3);
  EXPECT_NEAR(q.w.value()[1], 2.0f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Quadratic plain({5.0f}, {0.0f});
  Quadratic momentum({5.0f}, {0.0f});
  optim::Sgd o1(plain.params());
  optim::Sgd o2(momentum.params(), {.momentum = 0.9});
  for (int i = 0; i < 10; ++i) {
    plain.loss_and_grad();
    o1.step(0.01);
    momentum.loss_and_grad();
    o2.step(0.01);
  }
  EXPECT_LT(std::fabs(momentum.w.value()[0]),
            std::fabs(plain.w.value()[0]));
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q({5.0f, -3.0f, 10.0f}, {1.0f, 2.0f, -1.0f});
  optim::Adam opt(q.params());
  for (int i = 0; i < 800; ++i) {
    q.loss_and_grad();
    opt.step(0.05);
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(q.w.value()[i], q.target[i], 2e-2) << i;
  }
}

TEST(Adam, SkipsParamsWithoutGrad) {
  Quadratic q({1.0f}, {0.0f});
  optim::Adam opt(q.params());
  // No loss_and_grad call: grad undefined, step must not move w.
  opt.step(0.1);
  EXPECT_FLOAT_EQ(q.w.value()[0], 1.0f);
}

TEST(Adam, DecoupledWeightDecayShrinksWeights) {
  Quadratic q({4.0f}, {4.0f});  // zero gradient at start
  optim::Adam opt(q.params(), {.beta1 = 0.9,
                               .beta2 = 0.95,
                               .eps = 1e-8,
                               .weight_decay = 0.1});
  q.loss_and_grad();  // grad == 0 but defined
  opt.step(0.5);
  EXPECT_LT(q.w.value()[0], 4.0f);
}

TEST(Lamb, ConvergesOnQuadratic) {
  Quadratic q({5.0f, -3.0f}, {1.0f, 2.0f});
  optim::Lamb opt(q.params(), {.beta1 = 0.9,
                               .beta2 = 0.999,
                               .eps = 1e-6,
                               .weight_decay = 0.0});
  for (int i = 0; i < 500; ++i) {
    q.loss_and_grad();
    opt.step(0.01);
  }
  EXPECT_NEAR(q.w.value()[0], 1.0f, 5e-2);
  EXPECT_NEAR(q.w.value()[1], 2.0f, 5e-2);
}

TEST(Lamb, TrustRatioReflectsWeightToUpdateNorms) {
  Quadratic q({100.0f}, {0.0f});  // large weight, unit-ish Adam direction
  optim::Lamb opt(q.params(), {.beta1 = 0.9,
                               .beta2 = 0.999,
                               .eps = 1e-6,
                               .weight_decay = 0.0,
                               .max_trust_ratio = 10.0});
  q.loss_and_grad();
  opt.step(0.001);
  ASSERT_EQ(opt.last_trust_ratios().size(), 1u);
  // ||w|| = 100, ||update|| ~ 1 (Adam-normalized) -> clamped to 10.
  EXPECT_NEAR(opt.last_trust_ratios()[0], 10.0, 1e-6);
}

TEST(Lamb, TrustRatioDisabledBehavesLikeAdamScale) {
  Quadratic a({100.0f}, {0.0f});
  Quadratic b({100.0f}, {0.0f});
  optim::Lamb with(a.params(), {.beta1 = 0.9,
                                .beta2 = 0.999,
                                .eps = 1e-6,
                                .weight_decay = 0.0,
                                .use_trust_ratio = true});
  optim::Lamb without(b.params(), {.beta1 = 0.9,
                                   .beta2 = 0.999,
                                   .eps = 1e-6,
                                   .weight_decay = 0.0,
                                   .use_trust_ratio = false});
  a.loss_and_grad();
  with.step(0.001);
  b.loss_and_grad();
  without.step(0.001);
  // With trust ratio the step is 10x larger here.
  EXPECT_LT(a.w.value()[0], b.w.value()[0]);
  EXPECT_NEAR(without.last_trust_ratios()[0], 1.0, 1e-12);
}

TEST(Lamb, LargeBatchAnalogClosesGapVsAdam) {
  // Emulate the large-batch setting: few optimizer steps with low-noise
  // gradients. LAMB's layer-wise scaling reaches the target faster when the
  // per-layer magnitudes are very different.
  Quadratic adam_small({200.0f, 0.02f}, {0.0f, 0.0f});
  Quadratic lamb_small({200.0f, 0.02f}, {0.0f, 0.0f});
  optim::Adam adam(adam_small.params(),
                   {.beta1 = 0.9, .beta2 = 0.999, .eps = 1e-8,
                    .weight_decay = 0.0});
  optim::Lamb lamb(lamb_small.params(),
                   {.beta1 = 0.9, .beta2 = 0.999, .eps = 1e-6,
                    .weight_decay = 0.0});
  for (int i = 0; i < 30; ++i) {
    adam_small.loss_and_grad();
    adam.step(0.01);
    lamb_small.loss_and_grad();
    lamb.step(0.01);
  }
  // Relative progress on the big-magnitude coordinate.
  EXPECT_LT(std::fabs(lamb_small.w.value()[0]),
            std::fabs(adam_small.w.value()[0]));
}

TEST(Clipping, GlobalNormScalesAllGrads) {
  Quadratic q({3.0f, 4.0f}, {0.0f, 0.0f});  // grad = (6, 8), norm 10
  optim::Sgd opt(q.params());
  q.loss_and_grad();
  const double pre = opt.clip_grad_norm(5.0);
  EXPECT_NEAR(pre, 10.0, 1e-5);
  EXPECT_NEAR(q.w.grad()[0], 3.0f, 1e-4);
  EXPECT_NEAR(q.w.grad()[1], 4.0f, 1e-4);
}

TEST(Clipping, NoScalingBelowThreshold) {
  Quadratic q({0.3f, 0.4f}, {0.0f, 0.0f});  // grad norm 1.0
  optim::Sgd opt(q.params());
  q.loss_and_grad();
  opt.clip_grad_norm(5.0);
  EXPECT_NEAR(q.w.grad()[0], 0.6f, 1e-5);
}

TEST(Optimizer, StateBytesMatchTheMemoryModelAssumptions) {
  Quadratic q({1.0f}, {0.0f});
  optim::Adam adam(q.params());
  optim::Lamb lamb(q.params());
  optim::Sgd sgd(q.params());
  EXPECT_DOUBLE_EQ(adam.state_bytes_per_param(), 8.0);  // fp32 m + v
  EXPECT_DOUBLE_EQ(lamb.state_bytes_per_param(), 8.0);
  EXPECT_DOUBLE_EQ(sgd.state_bytes_per_param(), 0.0);
}

TEST(Optimizer, RequiresParams) {
  std::vector<nn::NamedParam> empty;
  EXPECT_THROW(optim::Sgd{empty}, Error);
}

}  // namespace
}  // namespace matgpt
