// Tests for the embedding analysis toolkit: distance/cosine statistics,
// Jacobi eigensolver and PCA, t-SNE structure preservation, k-means and
// cluster metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/cluster.h"
#include "embed/embedding.h"
#include "embed/reduce.h"

namespace matgpt::embed {
namespace {

TEST(Distances, EuclideanAndCosineBasics) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 1.0f};
  EXPECT_NEAR(euclidean(a, b), std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(cosine(a, b), 0.0, 1e-9);
  EXPECT_NEAR(cosine(a, a), 1.0, 1e-9);
  const std::vector<float> neg{-1.0f, 0.0f};
  EXPECT_NEAR(cosine(a, neg), -1.0, 1e-9);
  const std::vector<float> zero{0.0f, 0.0f};
  EXPECT_EQ(cosine(a, zero), 0.0);
}

TEST(Distances, PairwiseStatsSeparateTightFromLooseSets) {
  // The Fig. 16 contrast: GPT embeddings sit closer together (small
  // distances, cosines near 1) than BERT embeddings.
  Rng rng(5);
  EmbeddingSet tight, loose;
  std::vector<float> center(8);
  for (auto& v : center) v = static_cast<float>(rng.normal(1.0, 0.1));
  for (int i = 0; i < 40; ++i) {
    std::vector<float> t(8), l(8);
    for (std::size_t d = 0; d < 8; ++d) {
      t[d] = center[d] + static_cast<float>(rng.normal(0.0, 0.05));
      l[d] = static_cast<float>(rng.normal(0.0, 2.0));
    }
    tight.vectors.push_back(t);
    loose.vectors.push_back(l);
  }
  Rng r1(1), r2(1);
  const auto ts = pairwise_stats(tight, 400, r1);
  const auto ls = pairwise_stats(loose, 400, r2);
  EXPECT_LT(ts.mean_distance, ls.mean_distance);
  EXPECT_GT(ts.mean_cosine, 0.9);
  EXPECT_LT(ls.mean_cosine, 0.5);
  EXPECT_DOUBLE_EQ(ts.distance_hist.total(), 400.0);
}

TEST(Eigen, DiagonalizesKnownMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  const auto r = symmetric_eigen({{2.0, 1.0}, {1.0, 2.0}});
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0], 3.0, 1e-9);
  EXPECT_NEAR(r.values[1], 1.0, 1e-9);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(r.vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(r.vectors[0][0], r.vectors[0][1], 1e-9);
}

TEST(Eigen, ReconstructsRandomSymmetricMatrix) {
  Rng rng(7);
  const std::size_t n = 6;
  std::vector<std::vector<double>> m(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m[i][j] = m[j][i] = rng.normal();
    }
  }
  const auto r = symmetric_eigen(m);
  // A v = lambda v for every pair.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::size_t j = 0; j < n; ++j) av += m[i][j] * r.vectors[k][j];
      EXPECT_NEAR(av, r.values[k] * r.vectors[k][i], 1e-8);
    }
  }
  // Values sorted descending.
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_GE(r.values[k - 1], r.values[k]);
  }
}

TEST(Pca, RecoversDominantDirection) {
  // Points stretched along (1, 1, 0): first component must capture it.
  Rng rng(11);
  Matrix rows;
  for (int i = 0; i < 200; ++i) {
    const float t = static_cast<float>(rng.normal(0.0, 3.0));
    rows.push_back({t + static_cast<float>(rng.normal(0.0, 0.1)),
                    t + static_cast<float>(rng.normal(0.0, 0.1)),
                    static_cast<float>(rng.normal(0.0, 0.1))});
  }
  const Matrix reduced = pca(rows, 1);
  ASSERT_EQ(reduced.size(), rows.size());
  // Correlation between the projection and the latent t (via x+y).
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double a = reduced[i][0];
    const double b = rows[i][0] + rows[i][1];
    num += a * b;
    da += a * a;
    db += b * b;
  }
  EXPECT_GT(std::fabs(num) / std::sqrt(da * db), 0.99);
}

TEST(Pca, ValidatesArguments) {
  Matrix rows{{1.0f, 2.0f}};
  EXPECT_THROW(pca(rows, 3), Error);
  EXPECT_THROW(pca({}, 1), Error);
}

TEST(Tsne, PreservesClusterNeighborhoods) {
  // Two well-separated blobs in 10D must stay separated in 2D.
  Rng rng(13);
  Matrix rows;
  std::vector<std::size_t> labels;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 20; ++i) {
      std::vector<float> p(10);
      for (auto& v : p) {
        v = static_cast<float>(rng.normal(c * 12.0, 0.3));
      }
      rows.push_back(p);
      labels.push_back(static_cast<std::size_t>(c));
    }
  }
  TsneOptions opts;
  opts.iterations = 200;
  Rng trng(17);
  const Matrix y = tsne_2d(rows, opts, trng);
  // Mean intra-cluster distance << inter-cluster distance in 2D.
  double intra = 0.0, inter = 0.0;
  int ni = 0, nx = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    for (std::size_t j = i + 1; j < y.size(); ++j) {
      const double d = euclidean(y[i], y[j]);
      if (labels[i] == labels[j]) {
        intra += d;
        ++ni;
      } else {
        inter += d;
        ++nx;
      }
    }
  }
  EXPECT_LT(intra / ni, 0.5 * inter / nx);
}

TEST(Tsne, ValidatesPerplexity) {
  Matrix rows(8, std::vector<float>(3, 0.0f));
  Rng rng(1);
  TsneOptions opts;
  opts.perplexity = 100.0;
  EXPECT_THROW(tsne_2d(rows, opts, rng), Error);
}

TEST(KMeans, RecoversPlantedClusters) {
  Rng rng(19);
  Matrix points;
  std::vector<std::size_t> truth;
  const std::vector<std::pair<float, float>> centers{{0, 0}, {10, 0}, {0, 10}};
  for (std::size_t c = 0; c < centers.size(); ++c) {
    for (int i = 0; i < 25; ++i) {
      points.push_back(
          {centers[c].first + static_cast<float>(rng.normal(0.0, 0.4)),
           centers[c].second + static_cast<float>(rng.normal(0.0, 0.4))});
      truth.push_back(c);
    }
  }
  Rng krng(23);
  const auto result = kmeans(points, 3, krng);
  EXPECT_GT(purity(result.assignment, truth), 0.95);
  EXPECT_GT(silhouette(points, result.assignment), 0.7);
}

TEST(KMeans, EstimateFindsPlantedK) {
  Rng rng(29);
  Matrix points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 15; ++i) {
      points.push_back(
          {static_cast<float>(c * 8 + rng.normal(0.0, 0.3)),
           static_cast<float>((c % 2) * 8 + rng.normal(0.0, 0.3))});
    }
  }
  Rng krng(31);
  const auto est = estimate_clusters(points, 6, krng);
  EXPECT_EQ(est.k, 3u);
  EXPECT_GT(est.silhouette, 0.6);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(37);
  Matrix points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({static_cast<float>(rng.normal(0.0, 3.0)),
                      static_cast<float>(rng.normal(0.0, 3.0))});
  }
  Rng k1(5), k2(5);
  const auto two = kmeans(points, 2, k1);
  const auto six = kmeans(points, 6, k2);
  EXPECT_LT(six.inertia, two.inertia);
}

TEST(Purity, PerfectAndWorstCase) {
  EXPECT_DOUBLE_EQ(purity({0, 0, 1, 1}, {5, 5, 7, 7}), 1.0);
  EXPECT_DOUBLE_EQ(purity({0, 0, 0, 0}, {1, 2, 3, 4}), 0.25);
  EXPECT_THROW(purity({0}, {0, 1}), Error);
}

}  // namespace
}  // namespace matgpt::embed
