// Tests for the extension features beyond the paper's headline experiments:
// grouped-query attention (LLaMA-2's inference tweak, which the paper cites
// as the architecture's evolution), checkpoint serialization, and ZeRO
// stages 2/3 in the memory/communication model.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "grad_check.h"
#include "nn/gpt.h"
#include "nn/serialize.h"
#include "optim/optimizer.h"
#include "simfrontier/parallelism.h"
#include "tensor/ops.h"

namespace matgpt {
namespace {

// ---- grouped-query attention ------------------------------------------------

TEST(Gqa, MatchesMhaWhenKvHeadsEqualQueryHeads) {
  Rng rng(3);
  Tensor q0 = Tensor::randn({1, 5, 4, 6}, rng);
  Tensor k0 = Tensor::randn({1, 5, 4, 6}, rng);
  Tensor v0 = Tensor::randn({1, 5, 4, 6}, rng);
  Tape t1;
  Var out = ops::attention(t1, t1.leaf(q0, false), t1.leaf(k0, false),
                           t1.leaf(v0, false), true, true);
  EXPECT_EQ(out.value().shape(), q0.shape());
}

TEST(Gqa, SharedKvHeadsGiveIdenticalOutputsAcrossAGroup) {
  // With 1 kv head, every query head attends to the same keys/values; if
  // all query heads carry identical content, their outputs must coincide.
  Rng rng(5);
  Tensor qrow = Tensor::randn({1, 4, 1, 6}, rng);
  Tensor q0({1, 4, 2, 6});
  for (std::int64_t t = 0; t < 4; ++t) {
    for (std::int64_t h = 0; h < 2; ++h) {
      for (std::int64_t d = 0; d < 6; ++d) {
        q0.at(0, t, h, d) = qrow.at(0, t, 0, d);
      }
    }
  }
  Tensor k0 = Tensor::randn({1, 4, 1, 6}, rng);
  Tensor v0 = Tensor::randn({1, 4, 1, 6}, rng);
  Tape tape;
  Var out = ops::attention(tape, tape.leaf(q0, false), tape.leaf(k0, false),
                           tape.leaf(v0, false), true, true);
  for (std::int64_t t = 0; t < 4; ++t) {
    for (std::int64_t d = 0; d < 6; ++d) {
      EXPECT_NEAR(out.value().at(0, t, 0, d), out.value().at(0, t, 1, d),
                  1e-6);
    }
  }
}

TEST(Gqa, FlashAndMaterializedAgree) {
  Rng rng(7);
  Tensor q0 = Tensor::randn({2, 6, 4, 4}, rng);
  Tensor k0 = Tensor::randn({2, 6, 2, 4}, rng);  // 2 kv heads for 4 q heads
  Tensor v0 = Tensor::randn({2, 6, 2, 4}, rng);
  const Tensor w = Tensor::randn({2, 6, 4, 4}, rng);
  auto run = [&](bool flash) {
    Tape tape;
    Var q = tape.leaf(q0.clone(), true);
    Var k = tape.leaf(k0.clone(), true);
    Var v = tape.leaf(v0.clone(), true);
    Var out = ops::attention(tape, q, k, v, true, flash);
    Var wl = tape.leaf(w.clone(), false);
    Var loss = ops::sum_all(tape, ops::mul(tape, out, wl));
    tape.backward(loss);
    return std::make_tuple(out.value().clone(), q.grad().clone(),
                           k.grad().clone(), v.grad().clone());
  };
  const auto [om, qm, km, vm] = run(false);
  const auto [of, qf, kf, vf] = run(true);
  for (std::int64_t i = 0; i < om.numel(); ++i) {
    EXPECT_NEAR(om[i], of[i], 1e-4);
  }
  for (std::int64_t i = 0; i < km.numel(); ++i) {
    EXPECT_NEAR(km[i], kf[i], 1e-3);
    EXPECT_NEAR(vm[i], vf[i], 1e-3);
  }
  (void)qm;
  (void)qf;
}

TEST(Gqa, GradientsAreCorrect) {
  Rng rng(9);
  Tape t0;
  std::vector<Var> leaves{t0.leaf(Tensor::randn({1, 4, 4, 3}, rng, 0, 0.5f),
                                  true),
                          t0.leaf(Tensor::randn({1, 4, 2, 3}, rng, 0, 0.5f),
                                  true),
                          t0.leaf(Tensor::randn({1, 4, 2, 3}, rng, 0, 0.5f),
                                  true)};
  const Tensor w = Tensor::randn({1, 4, 4, 3}, rng);
  testing::check_gradients(leaves, [&](Tape& tape) {
    Var out = ops::attention(tape, leaves[0], leaves[1], leaves[2], true,
                             true);
    Var wl = tape.leaf(w.clone(), false);
    return ops::sum_all(tape, ops::mul(tape, out, wl));
  });
}

TEST(Gqa, RejectsNonDividingKvHeads) {
  Rng rng(11);
  Tape tape;
  Var q = tape.leaf(Tensor::randn({1, 4, 4, 4}, rng), false);
  Var k = tape.leaf(Tensor::randn({1, 4, 3, 4}, rng), false);
  Var v = tape.leaf(Tensor::randn({1, 4, 3, 4}, rng), false);
  EXPECT_THROW(ops::attention(tape, q, k, v, true, true), Error);
}

TEST(Gqa, ModelShrinksKvProjectionsAndStillTrains) {
  nn::GptConfig mha;
  mha.vocab_size = 40;
  mha.hidden = 32;
  mha.n_layers = 2;
  mha.n_heads = 4;
  mha.max_seq = 16;
  nn::GptConfig gqa = mha;
  gqa.n_kv_heads = 2;
  nn::GptModel m_mha(mha);
  nn::GptModel m_gqa(gqa);
  EXPECT_LT(m_gqa.param_count(), m_mha.param_count());
  // GQA model must still learn a pattern.
  std::vector<std::int32_t> tokens, targets;
  for (int rep = 0; rep < 2; ++rep) {
    for (int i = 0; i < 8; ++i) {
      tokens.push_back(10 + i);
      targets.push_back(10 + (i + 1) % 8);
    }
  }
  optim::Adam opt(m_gqa.parameters());
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 50; ++step) {
    Tape tape;
    Var loss = m_gqa.loss(tape, tokens, targets, 1, 16);
    if (step == 0) first = loss.item();
    last = loss.item();
    m_gqa.zero_grad();
    tape.backward(loss);
    opt.step(3e-3);
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(Gqa, ConfigValidation) {
  nn::GptConfig c;
  c.vocab_size = 40;
  c.hidden = 32;
  c.n_layers = 1;
  c.n_heads = 4;
  c.n_kv_heads = 3;  // does not divide 4
  EXPECT_THROW(c.validate(), Error);
}

// ---- KV-cache incremental decoding -----------------------------------------

nn::GptConfig decode_config(nn::ArchFamily arch, std::int64_t kv_heads) {
  nn::GptConfig c;
  c.arch = arch;
  c.vocab_size = 60;
  c.hidden = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = kv_heads;
  c.max_seq = 32;
  return c;
}

class KvCacheDecode
    : public ::testing::TestWithParam<std::tuple<nn::ArchFamily, int>> {};

TEST_P(KvCacheDecode, MatchesFullReforwardGeneration) {
  const auto [arch, kv] = GetParam();
  nn::GptModel model(decode_config(arch, kv));
  const std::vector<std::int32_t> prompt{5, 9, 13};
  for (float temperature : {0.0f, 0.8f}) {
    Rng r1(77), r2(77);
    const auto full = model.generate(prompt, 12, temperature, r1);
    const auto cached = model.generate_cached(prompt, 12, temperature, r2);
    EXPECT_EQ(full, cached) << nn::arch_name(arch) << " kv=" << kv
                            << " temp=" << temperature;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchAndKv, KvCacheDecode,
    ::testing::Values(std::make_tuple(nn::ArchFamily::kNeoX, 0),
                      std::make_tuple(nn::ArchFamily::kLLaMA, 0),
                      std::make_tuple(nn::ArchFamily::kLLaMA, 1),
                      std::make_tuple(nn::ArchFamily::kNeoX, 2)));

TEST(KvCacheDecode, IncrementalLogitsMatchFullForward) {
  nn::GptModel model(decode_config(nn::ArchFamily::kLLaMA, 2));
  const std::vector<std::int32_t> tokens{3, 7, 11, 15, 19};
  // Full forward over the whole sequence.
  Tape full_tape;
  const Var full = model.forward(full_tape, tokens, 1, 5);
  // Prefill 3, then decode two single tokens.
  nn::KvCache cache;
  Tape t1;
  const std::vector<std::int32_t> prefix(tokens.begin(), tokens.begin() + 3);
  model.forward_incremental(t1, prefix, cache);
  Tape t2;
  const std::int32_t fourth = tokens[3];
  model.forward_incremental(t2, std::span<const std::int32_t>(&fourth, 1),
                            cache);
  Tape t3;
  const std::int32_t fifth = tokens[4];
  const Var last = model.forward_incremental(
      t3, std::span<const std::int32_t>(&fifth, 1), cache);
  EXPECT_EQ(cache.length, 5);
  for (std::int64_t vidx = 0; vidx < model.config().vocab_size; ++vidx) {
    EXPECT_NEAR(last.value().at(0, vidx), full.value().at(4, vidx), 1e-4);
  }
}

TEST(KvCacheDecode, GqaShrinksTheCache) {
  nn::GptModel mha(decode_config(nn::ArchFamily::kLLaMA, 0));
  nn::GptModel gqa(decode_config(nn::ArchFamily::kLLaMA, 1));
  const std::vector<std::int32_t> prompt{1, 2, 3, 4};
  nn::KvCache cache_mha, cache_gqa;
  Tape t1, t2;
  mha.forward_incremental(t1, prompt, cache_mha);
  gqa.forward_incremental(t2, prompt, cache_gqa);
  EXPECT_NEAR(cache_mha.bytes() / cache_gqa.bytes(), 4.0, 1e-9);
}

TEST(KvCacheDecode, EnforcesContract) {
  nn::GptModel model(decode_config(nn::ArchFamily::kNeoX, 0));
  nn::KvCache cache;
  Tape t1;
  const std::vector<std::int32_t> prompt{1, 2};
  model.forward_incremental(t1, prompt, cache);
  // Multi-token append onto a primed cache is a partial prefill (the
  // prefix-cache restore path): the suffix lands bit-identically to a cold
  // prefill of the whole sequence.
  Tape t2, t3;
  const std::vector<std::int32_t> suffix{3, 4};
  Var hot = model.forward_incremental(t2, suffix, cache);
  EXPECT_EQ(cache.length, 4);
  nn::KvCache cold_cache;
  const std::vector<std::int32_t> full{1, 2, 3, 4};
  Var cold = model.forward_incremental(t3, full, cold_cache);
  for (std::int64_t v = 0; v < model.config().vocab_size; ++v) {
    ASSERT_EQ(hot.value().at(0, v), cold.value().at(0, v)) << "vocab " << v;
  }
  // Window overflow is rejected up front.
  Rng rng(1);
  const std::vector<std::int32_t> long_prompt(16, 1);
  EXPECT_THROW(model.generate_cached(long_prompt, 20, 0.0f, rng), Error);
}

// ---- checkpoint serialization -------------------------------------------------

nn::GptConfig ckpt_config() {
  nn::GptConfig c;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.max_seq = 16;
  return c;
}

TEST(Serialize, RoundTripRestoresExactWeights) {
  nn::GptModel a(ckpt_config());
  std::stringstream buffer;
  nn::save_parameters(a, buffer);

  nn::GptConfig c2 = ckpt_config();
  c2.seed = 999;  // different init — must be fully overwritten
  nn::GptModel b(c2);
  nn::load_parameters(b, buffer);

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i].var.value().numel(); ++j) {
      ASSERT_EQ(pa[i].var.value()[j], pb[i].var.value()[j])
          << pa[i].name << "[" << j << "]";
    }
  }
  // Identical weights => identical logits.
  const std::vector<std::int32_t> tokens{1, 2, 3, 4};
  Tape t1, t2;
  Var la = a.forward(t1, tokens, 1, 4);
  Var lb = b.forward(t2, tokens, 1, 4);
  for (std::int64_t i = 0; i < la.value().numel(); ++i) {
    ASSERT_EQ(la.value()[i], lb.value()[i]);
  }
}

TEST(Serialize, RejectsArchitectureMismatch) {
  nn::GptModel a(ckpt_config());
  std::stringstream buffer;
  nn::save_parameters(a, buffer);
  nn::GptConfig other = ckpt_config();
  other.hidden = 32;  // different shape
  nn::GptModel b(other);
  EXPECT_THROW(nn::load_parameters(b, buffer), Error);
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  nn::GptModel m(ckpt_config());
  std::stringstream garbage("not a checkpoint");
  EXPECT_THROW(nn::load_parameters(m, garbage), Error);

  std::stringstream buffer;
  nn::save_parameters(m, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(nn::load_parameters(m, truncated), Error);
}

TEST(Serialize, FileRoundTrip) {
  nn::GptModel a(ckpt_config());
  const std::string path = "/tmp/matgpt_ckpt_test.bin";
  nn::save_parameters_file(a, path);
  nn::GptConfig c2 = ckpt_config();
  c2.seed = 4242;
  nn::GptModel b(c2);
  nn::load_parameters_file(b, path);
  EXPECT_EQ(a.parameters()[0].var.value()[0],
            b.parameters()[0].var.value()[0]);
  EXPECT_THROW(nn::load_parameters_file(b, "/nonexistent/path"), Error);
}

// ---- sampling strategies --------------------------------------------------------

TEST(Sampling, GreedyPicksArgmax) {
  Rng rng(1);
  const std::vector<float> logits{0.1f, 2.5f, -1.0f, 2.4f};
  nn::SamplingParams greedy;
  greedy.temperature = 0.0f;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(nn::sample_token(logits, greedy, rng), 1);
  }
}

TEST(Sampling, TopKRestrictsSupport) {
  Rng rng(2);
  const std::vector<float> logits{5.0f, 4.0f, 3.0f, -10.0f, -10.0f};
  nn::SamplingParams opts;
  opts.temperature = 2.0f;  // flatten so the tail would get sampled
  opts.top_k = 2;
  for (int i = 0; i < 200; ++i) {
    const auto t = nn::sample_token(logits, opts, rng);
    EXPECT_TRUE(t == 0 || t == 1) << t;
  }
}

TEST(Sampling, TopPKeepsTheNucleus) {
  Rng rng(3);
  // Probabilities ~ (0.87, 0.12, tiny...): top_p = 0.9 keeps two tokens.
  const std::vector<float> logits{4.0f, 2.0f, -3.0f, -3.0f};
  nn::SamplingParams opts;
  opts.top_p = 0.9f;
  for (int i = 0; i < 200; ++i) {
    const auto t = nn::sample_token(logits, opts, rng);
    EXPECT_TRUE(t == 0 || t == 1) << t;
  }
}

TEST(Sampling, TemperatureSharpensDistribution) {
  Rng r1(4), r2(4);
  const std::vector<float> logits{1.0f, 0.0f};
  nn::SamplingParams cold, hot;
  cold.temperature = 0.2f;
  hot.temperature = 5.0f;
  int cold_zero = 0, hot_zero = 0;
  for (int i = 0; i < 500; ++i) {
    cold_zero += nn::sample_token(logits, cold, r1) == 0;
    hot_zero += nn::sample_token(logits, hot, r2) == 0;
  }
  EXPECT_GT(cold_zero, 480);            // nearly deterministic
  EXPECT_LT(hot_zero, 350);             // near uniform
  EXPECT_GT(hot_zero, 150);
}

TEST(Sampling, Validation) {
  Rng rng(5);
  const std::vector<float> logits{1.0f};
  nn::SamplingParams bad;
  bad.top_p = 0.0f;
  EXPECT_THROW(nn::sample_token(logits, bad, rng), Error);
  bad.top_p = 1.0f;
  bad.top_k = -1;
  EXPECT_THROW(nn::sample_token(logits, bad, rng), Error);
}

TEST(Sampling, GenerateAcceptsOptionsAndStaysCachedEquivalent) {
  nn::GptModel model(decode_config(nn::ArchFamily::kLLaMA, 2));
  nn::SamplingParams opts;
  opts.temperature = 0.9f;
  opts.top_k = 8;
  opts.top_p = 0.95f;
  const std::vector<std::int32_t> prompt{4, 8};
  Rng r1(9), r2(9);
  const auto full = model.generate(prompt, 10, opts, r1);
  const auto cached = model.generate_cached(prompt, 10, opts, r2);
  EXPECT_EQ(full, cached);
}

// ---- ZeRO stages 2/3 ------------------------------------------------------------

TEST(ZeroStages, MemoryShardsProgressively) {
  sim::MemoryModel mm((sim::Platform()));
  const auto m = sim::ModelDesc::matgpt_6_7b(sim::ArchFamily::kNeoX);
  auto mem = [&](int stage) {
    return mm.training_memory(m, 1, 2048, sim::AttentionImpl::kFlashV2,
                              sim::ParallelConfig{8, 1, 1, stage});
  };
  const auto s0 = mem(0);
  const auto s1 = mem(1);
  const auto s2 = mem(2);
  const auto s3 = mem(3);
  EXPECT_NEAR(s1.optimizer_bytes, s0.optimizer_bytes / 8.0, 1.0);
  EXPECT_EQ(s1.grad_bytes, s0.grad_bytes);
  EXPECT_NEAR(s2.grad_bytes, s0.grad_bytes / 8.0, 1.0);
  EXPECT_EQ(s2.param_bytes, s0.param_bytes);
  EXPECT_NEAR(s3.param_bytes, s0.param_bytes / 8.0, 1.0);
  EXPECT_GT(s0.total(), s1.total());
  EXPECT_GT(s1.total(), s2.total());
  EXPECT_GT(s2.total(), s3.total());
}

TEST(ZeroStages, Stage3PaysExtraCommunication) {
  sim::TrainingSimulator sim((sim::Platform()));
  const auto m = sim::ModelDesc::matgpt_6_7b(sim::ArchFamily::kNeoX);
  const auto s1 = sim.simulate_step(m, {64, 1, 1, 1}, 8192, 2048,
                                    sim::AttentionImpl::kFlashV2);
  const auto s2 = sim.simulate_step(m, {64, 1, 1, 2}, 8192, 2048,
                                    sim::AttentionImpl::kFlashV2);
  const auto s3 = sim.simulate_step(m, {64, 1, 1, 3}, 8192, 2048,
                                    sim::AttentionImpl::kFlashV2);
  EXPECT_NEAR(s2.comm_s, s1.comm_s, 1e-9);  // same wire traffic
  EXPECT_GT(s3.comm_s, s1.comm_s * 1.3);    // + parameter allgather
  EXPECT_GT(s3.messages.total_transferred_bytes(),
            s1.messages.total_transferred_bytes());
}

TEST(ZeroStages, BraceInitWithTrueSelectsStageOne) {
  // The paper's "ZeRO=1" configurations are written {dp, tp, pp, true}.
  const sim::ParallelConfig cfg{8, 1, 1, true};
  EXPECT_EQ(cfg.zero_stage, 1);
  EXPECT_EQ(cfg.describe(), "ZeRO=1 DP=8");
}

}  // namespace
}  // namespace matgpt
