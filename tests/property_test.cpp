// Property-based tests: invariants that must hold across randomized inputs
// and parameter sweeps, spanning modules.

#include <gtest/gtest.h>

#include <cmath>

#include "data/materials.h"
#include "optim/optimizer.h"
#include "parallel/comm.h"
#include "simfrontier/parallelism.h"
#include "tensor/ops.h"
#include "tokenizer/bpe.h"

namespace matgpt {
namespace {

// ---- communicator algebra ----------------------------------------------------

class CommWorlds : public ::testing::TestWithParam<int> {};

TEST_P(CommWorlds, AllreduceEqualsSerialSum) {
  const int world = GetParam();
  Rng rng(world * 97);
  const std::size_t n = 17;
  std::vector<std::vector<float>> contributions(
      static_cast<std::size_t>(world), std::vector<float>(n));
  std::vector<float> expect(n, 0.0f);
  for (auto& c : contributions) {
    for (auto& v : c) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    for (std::size_t i = 0; i < n; ++i) expect[i] += c[i];
  }
  run_ranks(world, [&](Communicator& comm) {
    auto mine = contributions[static_cast<std::size_t>(comm.rank())];
    comm.allreduce(mine);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(mine[i], expect[i], 1e-4);
    }
  });
}

TEST_P(CommWorlds, ReduceScatterThenAllgatherEqualsAllreduce) {
  const int world = GetParam();
  const std::size_t shard = 6;
  const std::size_t n = shard * static_cast<std::size_t>(world);
  run_ranks(world, [&](Communicator& comm) {
    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<float>(comm.rank() + 1) * static_cast<float>(i);
    }
    std::vector<float> via_allreduce = data;
    comm.allreduce(via_allreduce);

    std::vector<float> my_shard(shard);
    comm.reduce_scatter(data, my_shard);
    std::vector<float> reassembled(n);
    comm.allgather(my_shard, reassembled);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(reassembled[i], via_allreduce[i], 1e-3);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, CommWorlds, ::testing::Values(1, 2, 3, 5));

// ---- tokenizer fuzz -----------------------------------------------------------

class TokenizerFuzz : public ::testing::TestWithParam<tok::TokenizerKind> {};

TEST_P(TokenizerFuzz, RandomPrintableStringsRoundTrip) {
  const auto tk = tok::BpeTokenizer::train(
      {"some training text with LiFePO4 and GaAs formulas",
       "the band gap of TiO2 is large"},
      GetParam(), 300);
  Rng rng(41);
  for (int trial = 0; trial < 40; ++trial) {
    std::string s;
    const auto len = 1 + rng.uniform_int(std::uint64_t{40});
    for (std::size_t i = 0; i < len; ++i) {
      s += static_cast<char>(33 + rng.uniform_int(std::uint64_t{94}));
    }
    EXPECT_EQ(tk.decode(tk.encode(s)), s) << "input: " << s;
  }
}

TEST_P(TokenizerFuzz, EncodingIsPrefixStableAcrossWordBoundaries) {
  // Adding a word never changes the ids of the words before it (merges
  // cannot cross whitespace).
  const auto tk = tok::BpeTokenizer::train(
      {"alpha beta gamma delta epsilon alpha beta"}, GetParam(), 290);
  const auto a = tk.encode("alpha beta");
  const auto b = tk.encode("alpha beta gamma");
  ASSERT_LE(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, TokenizerFuzz,
                         ::testing::Values(tok::TokenizerKind::kHuggingFace,
                                           tok::TokenizerKind::kSentencePiece));

// ---- RoPE relative-position property --------------------------------------------

TEST(RopeProperty, ScoresDependOnlyOnRelativePosition) {
  // For q at position t and k at position s, the rotated dot product must be
  // a function of (t - s) only — the defining property of RoPE.
  Rng rng(7);
  const std::int64_t T = 8, D = 8;
  Tensor qbase = Tensor::randn({1, 1, 1, D}, rng);
  Tensor kbase = Tensor::randn({1, 1, 1, D}, rng);
  // Broadcast the same content to every position.
  Tensor q({1, T, 1, D}), k({1, T, 1, D});
  for (std::int64_t t = 0; t < T; ++t) {
    for (std::int64_t d = 0; d < D; ++d) {
      q.at(0, t, 0, d) = qbase.at(0, 0, 0, d);
      k.at(0, t, 0, d) = kbase.at(0, 0, 0, d);
    }
  }
  Tape tape;
  Var qr = ops::rope(tape, tape.leaf(q, false));
  Var kr = ops::rope(tape, tape.leaf(k, false));
  auto score = [&](std::int64_t t, std::int64_t s) {
    double acc = 0.0;
    for (std::int64_t d = 0; d < D; ++d) {
      acc += static_cast<double>(qr.value().at(0, t, 0, d)) *
             kr.value().at(0, s, 0, d);
    }
    return acc;
  };
  // Same offset => same score, regardless of absolute position.
  for (std::int64_t delta = 0; delta < 4; ++delta) {
    const double ref = score(delta, 0);
    for (std::int64_t base = 1; base + delta < T; ++base) {
      EXPECT_NEAR(score(base + delta, base), ref, 1e-4)
          << "delta " << delta << " base " << base;
    }
  }
  // Different offsets give different scores (position is actually encoded).
  EXPECT_GT(std::fabs(score(1, 0) - score(5, 0)), 1e-6);
}

// ---- simulator monotonicity -----------------------------------------------------

TEST(SimProperty, CollectiveTimeMonotoneInBytesAndGroup) {
  sim::NetworkModel nm((sim::Platform()));
  double prev = 0.0;
  for (double bytes : {1e6, 1e7, 1e8, 1e9}) {
    const double t =
        nm.collective_time(sim::Collective::kAllReduce, bytes, 16);
    EXPECT_GT(t, prev);
    prev = t;
  }
  prev = 0.0;
  for (int g : {2, 8, 32, 128}) {
    const double t =
        nm.collective_time(sim::Collective::kAllReduce, 1e8, g);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SimProperty, MemoryMonotoneInSeqAndBatch) {
  sim::MemoryModel mm((sim::Platform()));
  const auto m = sim::ModelDesc::matgpt_1_7b(sim::ArchFamily::kNeoX);
  double prev = 0.0;
  for (std::int64_t seq : {1024, 2048, 4096, 8192}) {
    const auto mem = mm.training_memory(m, 1, seq,
                                        sim::AttentionImpl::kFlashV1, {});
    EXPECT_GT(mem.total(), prev);
    prev = mem.total();
  }
  prev = 0.0;
  for (std::int64_t b : {1, 2, 4, 8}) {
    const auto mem = mm.training_memory(m, b, 2048,
                                        sim::AttentionImpl::kFlashV1, {});
    EXPECT_GT(mem.total(), prev);
    prev = mem.total();
  }
}

TEST(SimProperty, PerGcdThroughputNeverImprovesWithScale) {
  // Fixed per-GCD work: adding GPUs can only add communication.
  sim::TrainingSimulator sim((sim::Platform()));
  const auto m = sim::ModelDesc::matgpt_6_7b(sim::ArchFamily::kNeoX);
  double prev = 1e18;
  for (int g : {8, 16, 32, 64, 128, 256, 512}) {
    const auto p = sim.simulate_step(m, {g, 1, 1, true}, 8192, 2048,
                                     sim::AttentionImpl::kFlashV2);
    EXPECT_LE(p.per_gcd_tflops, prev + 1e-9) << g;
    prev = p.per_gcd_tflops;
  }
}

TEST(SimProperty, FlashNeverSlowerAndNeverMoreMemory) {
  sim::TrainingSimulator sim((sim::Platform()));
  sim::MemoryModel mm((sim::Platform()));
  for (std::int64_t hidden : {2048, 2304, 4096}) {
    const sim::ModelDesc m{sim::ArchFamily::kNeoX, hidden, 24, hidden / 96,
                           52000};
    if (m.head_dim() % 8 != 0) continue;
    const auto base = sim.kernels().achieved_tflops(
        m, 8, 2048, sim::AttentionImpl::kMaterialized);
    const auto flash = sim.kernels().achieved_tflops(
        m, 8, 2048, sim::AttentionImpl::kFlashV1);
    EXPECT_GE(flash, base) << hidden;
    const auto mem_base = mm.training_memory(
        m, 1, 4096, sim::AttentionImpl::kMaterialized, {});
    const auto mem_flash =
        mm.training_memory(m, 1, 4096, sim::AttentionImpl::kFlashV1, {});
    EXPECT_LE(mem_flash.total(), mem_base.total());
  }
}

// ---- schedule and physics properties ---------------------------------------------

TEST(ScheduleProperty, LrAlwaysWithinBounds) {
  optim::CosineSchedule s(0.01, 500, 0.02, 0.1);
  for (std::int64_t t = 0; t < 500; ++t) {
    EXPECT_GT(s.lr(t), 0.0);
    EXPECT_LE(s.lr(t), 0.01 + 1e-12);
    if (t >= s.warmup_steps()) {
      EXPECT_GE(s.lr(t), 0.001 - 1e-12);  // the 10% floor
    }
  }
}

TEST(BandGapProperty, GapGrowsWithElectronegativitySpread) {
  // Pairing lithium with progressively more electronegative anions must
  // monotonically open the gap (the ionic term of the model).
  const auto li = *data::element_index("Li");
  double prev = -1.0;
  for (const char* anion : {"Sb", "Se", "S", "O", "F"}) {
    const auto a = *data::element_index(anion);
    const auto m = data::MaterialGenerator::from_composition({{li, 1},
                                                              {a, 1}});
    EXPECT_GT(m.band_gap_ev, prev - 0.3)
        << anion << " should not close the gap much";
    prev = std::max(prev, m.band_gap_ev);
  }
  EXPECT_GT(prev, 2.0);  // LiF-like compounds must be insulating
}

TEST(QuantizeProperty, RoundingIsIdempotentAndMonotone) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = static_cast<float>(rng.normal(0.0, 100.0));
    const float b = round_bf16(x);
    EXPECT_EQ(round_bf16(b), b);
    const float h = round_fp16(x);
    EXPECT_EQ(round_fp16(h), h);
    // Rounding moves by at most half a grid step (relative).
    EXPECT_NEAR(b, x, std::fabs(x) / 128.0f + 1e-6f);
  }
}

}  // namespace
}  // namespace matgpt
