// Gradient-correctness tests: every differentiable op is validated against
// central finite differences, plus structural tests of the tape mechanics
// and an equivalence test between flash and materialized attention.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "grad_check.h"
#include "tensor/ops.h"

namespace matgpt {
namespace {

using testing::check_gradients;

Var weighted_sum(Tape& tape, const Var& x, const Tensor& weights) {
  Var w = tape.leaf(weights.clone().reshape(x.value().shape()), false);
  return ops::sum_all(tape, ops::mul(tape, x, w));
}

class OpGradients : public ::testing::Test {
 protected:
  Rng rng_{12345};

  Var make_leaf(Tape& tape, std::vector<std::int64_t> shape,
                float stddev = 1.0f) {
    return tape.leaf(Tensor::randn(std::move(shape), rng_, 0.0f, stddev),
                     true);
  }
};

TEST_F(OpGradients, Add) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {2, 3}), make_leaf(t0, {2, 3})};
  const Tensor w = Tensor::randn({2, 3}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::add(tape, leaves[0], leaves[1]), w);
  });
}

TEST_F(OpGradients, AddBias) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {4, 3}), make_leaf(t0, {3})};
  const Tensor w = Tensor::randn({4, 3}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::add_bias(tape, leaves[0], leaves[1]), w);
  });
}

TEST_F(OpGradients, Mul) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {3, 2}), make_leaf(t0, {3, 2})};
  const Tensor w = Tensor::randn({3, 2}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::mul(tape, leaves[0], leaves[1]), w);
  });
}

TEST_F(OpGradients, Scale) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {5})};
  const Tensor w = Tensor::randn({5}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::scale(tape, leaves[0], -1.7f), w);
  });
}

TEST_F(OpGradients, Matmul) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {3, 4}), make_leaf(t0, {4, 2})};
  const Tensor w = Tensor::randn({3, 2}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::matmul(tape, leaves[0], leaves[1]), w);
  });
}

TEST_F(OpGradients, Reshape) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {2, 6})};
  const Tensor w = Tensor::randn({12}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::reshape(tape, leaves[0], {3, 4}), w);
  });
}

TEST_F(OpGradients, Embedding) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {5, 3})};
  const std::vector<std::int32_t> ids{1, 4, 1, 0};
  const Tensor w = Tensor::randn({4, 3}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::embedding(tape, leaves[0], ids), w);
  });
}

TEST_F(OpGradients, GatherRows) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {4, 2})};
  const Tensor w = Tensor::randn({3, 2}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::gather_rows(tape, leaves[0], {2, 2, 0}), w);
  });
}

TEST_F(OpGradients, ScatterAddRows) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {4, 3})};
  const Tensor w = Tensor::randn({2, 3}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(
        tape, ops::scatter_add_rows(tape, leaves[0], {0, 1, 0, 1}, 2), w);
  });
}

TEST_F(OpGradients, SliceRows) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {5, 2})};
  const Tensor w = Tensor::randn({2, 2}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::slice_rows(tape, leaves[0], 1, 3), w);
  });
}

TEST_F(OpGradients, ConcatCols) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {3, 2}), make_leaf(t0, {3, 4})};
  const Tensor w = Tensor::randn({3, 6}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::concat_cols(tape, leaves[0], leaves[1]), w);
  });
}

TEST_F(OpGradients, MeanRows) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {4, 3})};
  const Tensor w = Tensor::randn({1, 3}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::mean_rows(tape, leaves[0]), w);
  });
}

TEST_F(OpGradients, LayerNorm) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {3, 8}), make_leaf(t0, {8}),
                          make_leaf(t0, {8})};
  const Tensor w = Tensor::randn({3, 8}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(
        tape, ops::layer_norm(tape, leaves[0], leaves[1], leaves[2]), w);
  });
}

TEST_F(OpGradients, RmsNorm) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {3, 8}), make_leaf(t0, {8})};
  const Tensor w = Tensor::randn({3, 8}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::rms_norm(tape, leaves[0], leaves[1]), w);
  });
}

TEST_F(OpGradients, Activations) {
  for (auto op : {&ops::gelu, &ops::silu, &ops::sigmoid, &ops::tanh_act}) {
    Tape t0;
    std::vector<Var> leaves{make_leaf(t0, {2, 5})};
    const Tensor w = Tensor::randn({2, 5}, rng_);
    check_gradients(leaves, [&](Tape& tape) {
      return weighted_sum(tape, op(tape, leaves[0]), w);
    });
  }
}

TEST_F(OpGradients, ReluAwayFromKink) {
  Tape t0;
  // Keep inputs away from zero so finite differences are valid.
  Tensor init = Tensor::randn({2, 5}, rng_);
  for (std::int64_t i = 0; i < init.numel(); ++i) {
    if (std::fabs(init[i]) < 0.2f) init[i] = 0.5f;
  }
  std::vector<Var> leaves{t0.leaf(init, true)};
  const Tensor w = Tensor::randn({2, 5}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::relu(tape, leaves[0]), w);
  });
}

TEST_F(OpGradients, Rope) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {2, 3, 2, 4})};
  const Tensor w = Tensor::randn({2, 3, 2, 4}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape, ops::rope(tape, leaves[0]), w);
  });
}

TEST_F(OpGradients, RopePartialRotation) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {1, 4, 1, 8})};
  const Tensor w = Tensor::randn({1, 4, 1, 8}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape,
                        ops::rope(tape, leaves[0], 10000.0f,
                                  /*rotary_fraction=*/0.5f),
                        w);
  });
}

TEST_F(OpGradients, AttentionMaterialized) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {1, 4, 2, 3}, 0.5f),
                          make_leaf(t0, {1, 4, 2, 3}, 0.5f),
                          make_leaf(t0, {1, 4, 2, 3}, 0.5f)};
  const Tensor w = Tensor::randn({1, 4, 2, 3}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape,
                        ops::attention(tape, leaves[0], leaves[1], leaves[2],
                                       /*causal=*/true, /*flash=*/false),
                        w);
  });
}

TEST_F(OpGradients, AttentionFlash) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {1, 4, 2, 3}, 0.5f),
                          make_leaf(t0, {1, 4, 2, 3}, 0.5f),
                          make_leaf(t0, {1, 4, 2, 3}, 0.5f)};
  const Tensor w = Tensor::randn({1, 4, 2, 3}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape,
                        ops::attention(tape, leaves[0], leaves[1], leaves[2],
                                       /*causal=*/true, /*flash=*/true),
                        w);
  });
}

TEST_F(OpGradients, AttentionNonCausal) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {1, 3, 1, 4}, 0.5f),
                          make_leaf(t0, {1, 3, 1, 4}, 0.5f),
                          make_leaf(t0, {1, 3, 1, 4}, 0.5f)};
  const Tensor w = Tensor::randn({1, 3, 1, 4}, rng_);
  check_gradients(leaves, [&](Tape& tape) {
    return weighted_sum(tape,
                        ops::attention(tape, leaves[0], leaves[1], leaves[2],
                                       /*causal=*/false, /*flash=*/true),
                        w);
  });
}

TEST_F(OpGradients, CrossEntropy) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {4, 5})};
  const std::vector<std::int32_t> targets{0, 3, 2, 4};
  check_gradients(leaves, [&](Tape& tape) {
    return ops::cross_entropy(tape, leaves[0], targets);
  });
}

TEST_F(OpGradients, CrossEntropyIgnoreIndex) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {4, 5})};
  const std::vector<std::int32_t> targets{0, -1, 2, -1};
  check_gradients(leaves, [&](Tape& tape) {
    return ops::cross_entropy(tape, leaves[0], targets, -1);
  });
}

TEST_F(OpGradients, MseLoss) {
  Tape t0;
  std::vector<Var> leaves{make_leaf(t0, {6})};
  const std::vector<float> targets{0.5f, -1.0f, 2.0f, 0.0f, 1.0f, -0.5f};
  check_gradients(leaves, [&](Tape& tape) {
    return ops::mse_loss(tape, leaves[0], targets);
  });
}

// ---- tape mechanics ---------------------------------------------------------

TEST(Tape, GradAccumulatesAcrossFanOut) {
  Tape tape;
  Var x = tape.leaf(Tensor::from_data({1}, {3.0f}), true);
  Var y = ops::add(tape, x, x);  // y = 2x
  Var loss = ops::sum_all(tape, y);
  tape.backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(Tape, NoGradGuardSkipsRecording) {
  Tape tape;
  Var x = tape.leaf(Tensor::from_data({1}, {2.0f}), true);
  {
    NoGradGuard guard(tape);
    Var y = ops::scale(tape, x, 3.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_EQ(tape.op_count(), 0u);
  EXPECT_TRUE(tape.recording());
}

TEST(Tape, BackwardRequiresScalarLoss) {
  Tape tape;
  Var x = tape.leaf(Tensor::from_data({2}, {1.0f, 2.0f}), true);
  Var y = ops::scale(tape, x, 2.0f);
  EXPECT_THROW(tape.backward(y), Error);
}

TEST(Tape, LeafWithoutGradGetsNone) {
  Tape tape;
  Var a = tape.leaf(Tensor::from_data({2}, {1, 2}), false);
  Var b = tape.leaf(Tensor::from_data({2}, {3, 4}), true);
  Var loss = ops::sum_all(tape, ops::mul(tape, a, b));
  tape.backward(loss);
  EXPECT_FALSE(a.grad().defined());
  ASSERT_TRUE(b.grad().defined());
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
}

// ---- flash vs. materialized equivalence ------------------------------------

class FlashEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(FlashEquivalence, ForwardAndBackwardMatch) {
  const auto [t, h, d, causal] = GetParam();
  Rng rng(99);
  Tensor q0 = Tensor::randn({2, t, h, d}, rng);
  Tensor k0 = Tensor::randn({2, t, h, d}, rng);
  Tensor v0 = Tensor::randn({2, t, h, d}, rng);
  const Tensor w = Tensor::randn({2, t, h, d}, rng);

  auto run = [&](bool flash) {
    Tape tape;
    Var q = tape.leaf(q0.clone(), true);
    Var k = tape.leaf(k0.clone(), true);
    Var v = tape.leaf(v0.clone(), true);
    Var out = ops::attention(tape, q, k, v, causal, flash);
    Var loss = weighted_sum(tape, out, w);
    tape.backward(loss);
    return std::make_tuple(out.value().clone(), q.grad().clone(),
                           k.grad().clone(), v.grad().clone());
  };
  const auto [o_m, qg_m, kg_m, vg_m] = run(false);
  const auto [o_f, qg_f, kg_f, vg_f] = run(true);
  for (std::int64_t i = 0; i < o_m.numel(); ++i) {
    EXPECT_NEAR(o_m[i], o_f[i], 1e-4) << "output " << i;
    EXPECT_NEAR(qg_m[i], qg_f[i], 1e-3) << "dq " << i;
    EXPECT_NEAR(kg_m[i], kg_f[i], 1e-3) << "dk " << i;
    EXPECT_NEAR(vg_m[i], vg_f[i], 1e-3) << "dv " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FlashEquivalence,
    ::testing::Values(std::make_tuple(1, 1, 4, true),
                      std::make_tuple(5, 2, 3, true),
                      std::make_tuple(8, 1, 8, true),
                      std::make_tuple(8, 4, 2, false),
                      std::make_tuple(16, 2, 4, true)));

TEST(FlashMemory, FlashUsesLessActivationMemory) {
  // The structural claim behind Fig. 5: materialized attention allocates the
  // [B, H, T, T] probability tensor, flash only the [B, H, T] logsumexp.
  Rng rng(7);
  const int t = 64;
  Tensor q0 = Tensor::randn({1, t, 2, 8}, rng);
  auto peak_for = [&](bool flash) {
    auto& tracker = MemoryTracker::instance();
    tracker.reset_peak();
    const std::size_t before = tracker.current_bytes();
    Tape tape;
    Var q = tape.leaf(q0.clone(), true);
    Var k = tape.leaf(q0.clone(), true);
    Var v = tape.leaf(q0.clone(), true);
    Var out = ops::attention(tape, q, k, v, true, flash);
    Var loss = ops::sum_all(tape, out);
    tape.backward(loss);
    return tracker.peak_bytes() - before;
  };
  const std::size_t peak_materialized = peak_for(false);
  const std::size_t peak_flash = peak_for(true);
  // Materialized stores 2*T*T floats (probs tensor); flash stores 2*T.
  EXPECT_GT(peak_materialized, peak_flash + t * t * 4u);
}

TEST(Dropout, MaskScalesAndZeroes) {
  Rng rng(3);
  Tape tape;
  Var x = tape.leaf(Tensor::full({1000}, 1.0f), true);
  Var y = ops::dropout(tape, x, 0.25f, rng, /*training=*/true);
  int zeros = 0;
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-6);
    }
    sum += v;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.25, 0.05);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.1);  // inverted dropout preserves E[x]
}

TEST(Dropout, IdentityWhenNotTraining) {
  Rng rng(3);
  Tape tape;
  Var x = tape.leaf(Tensor::full({10}, 2.0f), true);
  Var y = ops::dropout(tape, x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.node().get(), x.node().get());
}

}  // namespace
}  // namespace matgpt
