// Unit tests for nn: module registry, layers, both GPT families, and the
// BERT encoder — including end-to-end gradient flow and overfit sanity.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grad_check.h"
#include "nn/bert.h"
#include "tokenizer/bpe.h"
#include "nn/gpt.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace matgpt {
namespace {

nn::GptConfig tiny_config(nn::ArchFamily arch) {
  nn::GptConfig c;
  c.arch = arch;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.max_seq = 16;
  return c;
}

TEST(Module, ParameterRegistryAndNames) {
  Rng rng(1);
  nn::Linear lin(4, 3, /*bias=*/true, rng);
  const auto params = lin.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "weight");
  EXPECT_EQ(params[1].name, "bias");
  EXPECT_EQ(lin.param_count(), 4 * 3 + 3);
}

TEST(Module, SubmoduleNamesAreHierarchical) {
  nn::GptModel model(tiny_config(nn::ArchFamily::kNeoX));
  std::set<std::string> names;
  for (const auto& p : model.parameters()) names.insert(p.name);
  EXPECT_TRUE(names.count("tok_emb"));
  EXPECT_TRUE(names.count("blocks.0.attn.q.weight"));
  EXPECT_TRUE(names.count("blocks.1.mlp.up.bias"));
  EXPECT_TRUE(names.count("final_norm.gamma"));
  EXPECT_TRUE(names.count("lm_head.weight"));
}

TEST(Module, ZeroGradClearsAllGrads) {
  nn::GptModel model(tiny_config(nn::ArchFamily::kLLaMA));
  const std::vector<std::int32_t> tokens{1, 2, 3, 4};
  const std::vector<std::int32_t> targets{2, 3, 4, 5};
  Tape tape;
  Var loss = model.loss(tape, tokens, targets, 1, 4);
  tape.backward(loss);
  bool any = false;
  for (const auto& p : model.parameters()) any |= p.var.grad().defined();
  EXPECT_TRUE(any);
  model.zero_grad();
  for (const auto& p : model.parameters()) {
    EXPECT_FALSE(p.var.grad().defined()) << p.name;
  }
}

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(2);
  nn::Linear lin(2, 2, /*bias=*/true, rng);
  // Overwrite with known values.
  auto params = lin.parameters();
  params[0].var.value() = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  params[1].var.value() = Tensor::from_data({2}, {10, 20});
  Tape tape;
  Var x = tape.leaf(Tensor::from_data({1, 2}, {1, 1}), false);
  Var y = lin.forward(tape, x);
  EXPECT_FLOAT_EQ(y.value().at(0, 0), 14.0f);  // 1+3+10
  EXPECT_FLOAT_EQ(y.value().at(0, 1), 26.0f);  // 2+4+20
}

TEST(Linear, FlattensLeadingDims) {
  Rng rng(2);
  nn::Linear lin(4, 8, false, rng);
  Tape tape;
  Var x = tape.leaf(Tensor::randn({2, 3, 4}, rng), false);
  Var y = lin.forward(tape, x);
  EXPECT_EQ(y.value().dim(0), 6);
  EXPECT_EQ(y.value().dim(1), 8);
}

TEST(Norms, LayerNormNormalizesRows) {
  nn::LayerNorm ln(8);
  Rng rng(3);
  Tape tape;
  Var x = tape.leaf(Tensor::randn({4, 8}, rng, 5.0f, 3.0f), false);
  Var y = ln.forward(tape, x);
  for (std::int64_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t c = 0; c < 8; ++c) mean += y.value().at(r, c);
    mean /= 8.0;
    for (std::int64_t c = 0; c < 8; ++c) {
      var += (y.value().at(r, c) - mean) * (y.value().at(r, c) - mean);
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Norms, RmsNormPreservesScaleInvariantDirection) {
  nn::RMSNorm rms(4);
  Tape tape;
  Var a = tape.leaf(Tensor::from_data({1, 4}, {1, 2, 3, 4}), false);
  Var b = tape.leaf(Tensor::from_data({1, 4}, {2, 4, 6, 8}), false);
  Var ya = rms.forward(tape, a);
  Var yb = rms.forward(tape, b);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(ya.value()[i], yb.value()[i], 1e-5);  // scale invariance
  }
}

TEST(Mlp, SwiGluInnerDimKeepsParamParity) {
  // Fig. 2's premise: the 3-linear SwiGLU MLP and the 2-linear GELU MLP
  // carry approximately equal parameters at the same hidden size.
  for (std::int64_t h : {64, 256, 2304, 4096}) {
    const std::int64_t gelu_params = h * 4 * h * 2;   // weights only
    const std::int64_t inner = nn::SwiGluMlp::inner_dim_for(h);
    const std::int64_t swiglu_params = 3 * h * inner;
    EXPECT_NEAR(static_cast<double>(swiglu_params) / gelu_params, 1.0, 0.04)
        << "hidden " << h;
  }
}

TEST(Gpt, ConfigValidation) {
  nn::GptConfig bad = tiny_config(nn::ArchFamily::kNeoX);
  bad.n_heads = 3;  // hidden 16 % 3 != 0 (Eq. 1)
  EXPECT_THROW(nn::GptModel{bad}, Error);
  nn::GptConfig odd = tiny_config(nn::ArchFamily::kNeoX);
  odd.hidden = 6;
  odd.n_heads = 2;  // head dim 3: odd, breaks RoPE pairing
  EXPECT_THROW(nn::GptModel{odd}, Error);
}

TEST(Gpt, ForwardShapesAndDeterminism) {
  nn::GptModel model(tiny_config(nn::ArchFamily::kNeoX));
  const std::vector<std::int32_t> tokens{5, 6, 7, 8, 9, 10};
  Tape t1, t2;
  Var a = model.forward(t1, tokens, 2, 3);
  Var b = model.forward(t2, tokens, 2, 3);
  EXPECT_EQ(a.value().dim(0), 6);
  EXPECT_EQ(a.value().dim(1), 50);
  for (std::int64_t i = 0; i < a.value().numel(); ++i) {
    EXPECT_EQ(a.value()[i], b.value()[i]);
  }
}

TEST(Gpt, BothFamiliesHaveSimilarParamCounts) {
  // The controlled-comparison premise: same spec => ~same parameters.
  nn::GptModel neox(tiny_config(nn::ArchFamily::kNeoX));
  nn::GptModel llama(tiny_config(nn::ArchFamily::kLLaMA));
  const double ratio = static_cast<double>(neox.param_count()) /
                       static_cast<double>(llama.param_count());
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(Gpt, CausalityLaterTokensDoNotAffectEarlierLogits) {
  nn::GptModel model(tiny_config(nn::ArchFamily::kLLaMA));
  std::vector<std::int32_t> a{3, 4, 5, 6};
  std::vector<std::int32_t> b{3, 4, 49, 1};  // same prefix, different tail
  Tape t1, t2;
  Var la = model.forward(t1, a, 1, 4);
  Var lb = model.forward(t2, b, 1, 4);
  for (std::int64_t c = 0; c < 50; ++c) {
    EXPECT_NEAR(la.value().at(0, c), lb.value().at(0, c), 1e-5);
    EXPECT_NEAR(la.value().at(1, c), lb.value().at(1, c), 1e-5);
  }
}

TEST(Gpt, RopeMakesAttentionPositionAware) {
  // Without positional information, causal attention at the last position
  // sees the same (key, value) multiset for any permutation of the prefix,
  // so the last-row logits would be identical. RoPE must break that.
  nn::GptModel model(tiny_config(nn::ArchFamily::kNeoX));
  std::vector<std::int32_t> fwd{7, 8, 9, 20};
  std::vector<std::int32_t> rev{9, 8, 7, 20};
  Tape t1, t2;
  Var la = model.forward(t1, fwd, 1, 4);
  Var lb = model.forward(t2, rev, 1, 4);
  double diff = 0.0;
  for (std::int64_t c = 0; c < model.config().vocab_size; ++c) {
    diff += std::fabs(la.value().at(3, c) - lb.value().at(3, c));
  }
  EXPECT_GT(diff, 1e-3);
}

class GptFamilyTraining
    : public ::testing::TestWithParam<std::tuple<nn::ArchFamily, bool>> {};

TEST_P(GptFamilyTraining, OverfitsARepeatingPattern) {
  const auto [arch, flash] = GetParam();
  nn::GptConfig c = tiny_config(arch);
  c.flash_attention = flash;
  nn::GptModel model(c);
  // Deterministic next-token pattern: i -> i+1 mod 8 (offset by 10).
  std::vector<std::int32_t> tokens, targets;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 8; ++i) {
      tokens.push_back(10 + i);
      targets.push_back(10 + (i + 1) % 8);
    }
  }
  optim::Adam opt(model.parameters());
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 60; ++step) {
    Tape tape;
    Var loss = model.loss(tape, tokens, targets, 2, 16);
    if (step == 0) first = loss.item();
    last = loss.item();
    model.zero_grad();
    tape.backward(loss);
    opt.step(3e-3);
  }
  EXPECT_LT(last, first * 0.3) << "training failed to reduce loss";
  EXPECT_LT(last, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, GptFamilyTraining,
    ::testing::Values(std::make_tuple(nn::ArchFamily::kNeoX, true),
                      std::make_tuple(nn::ArchFamily::kNeoX, false),
                      std::make_tuple(nn::ArchFamily::kLLaMA, true),
                      std::make_tuple(nn::ArchFamily::kLLaMA, false)));

TEST(Gpt, GenerateExtendsPromptWithinVocab) {
  nn::GptModel model(tiny_config(nn::ArchFamily::kLLaMA));
  Rng rng(9);
  const std::vector<std::int32_t> prompt{1, 2, 3};
  const auto out = model.generate(prompt, 5, 0.8f, rng);
  ASSERT_EQ(out.size(), 8u);
  for (std::int32_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 50);
  }
  // Greedy decoding is deterministic.
  const auto g1 = model.generate(prompt, 5, 0.0f, rng);
  const auto g2 = model.generate(prompt, 5, 0.0f, rng);
  EXPECT_EQ(g1, g2);
}

TEST(Gpt, CachedGenerationMatchesFullForwardWithGqa) {
  // Regression: the KV-cache decode path must stay token-identical to the
  // re-forward path when n_kv_heads < n_heads (grouped-query attention).
  nn::GptConfig c = tiny_config(nn::ArchFamily::kLLaMA);
  c.n_kv_heads = 1;  // 2 query heads share one KV head
  nn::GptModel model(c);
  const std::vector<std::int32_t> prompt{4, 8, 15, 16};

  nn::SamplingParams greedy;
  greedy.temperature = 0.0f;
  Rng rg1(7), rg2(7);
  EXPECT_EQ(model.generate(prompt, 6, greedy, rg1),
            model.generate_cached(prompt, 6, greedy, rg2));

  nn::SamplingParams sampled;
  sampled.temperature = 0.8f;
  sampled.top_k = 10;
  sampled.top_p = 0.9f;
  Rng rs1(23), rs2(23);
  EXPECT_EQ(model.generate(prompt, 6, sampled, rs1),
            model.generate_cached(prompt, 6, sampled, rs2));
}

TEST(Sampling, GreedyTieBreaksToLowestTokenId) {
  // Speculative decoding's exact-acceptance contract leans on this: when
  // logits tie, greedy argmax must deterministically pick the LOWEST token
  // id, so the verify path and the plain decode path agree bit for bit.
  const std::vector<float> tied{0.5f, 2.0f, 2.0f, -1.0f, 2.0f};
  EXPECT_EQ(nn::argmax_token(tied), 1);

  const std::vector<float> all_equal(7, 3.25f);
  EXPECT_EQ(nn::argmax_token(all_equal), 0);

  // sample_token at temperature 0 must route through the same argmax.
  nn::SamplingParams greedy;
  greedy.temperature = 0.0f;
  Rng rng(1);
  EXPECT_EQ(nn::sample_token(tied, greedy, rng), 1);
  EXPECT_EQ(nn::sample_token(all_equal, greedy, rng), 0);
}

TEST(Sampling, SamplingProbsIsFilteredRenormalizedDistribution) {
  const std::vector<float> logits{1.0f, 0.0f, -1.0f, 2.0f};
  nn::SamplingParams opts;
  opts.temperature = 1.0f;
  opts.top_k = 2;
  const std::vector<float> probs = nn::sampling_probs(logits, opts);
  ASSERT_EQ(probs.size(), logits.size());
  // Only the top-2 logits (ids 3 and 0) survive the filter.
  EXPECT_EQ(probs[1], 0.0f);
  EXPECT_EQ(probs[2], 0.0f);
  EXPECT_GT(probs[3], probs[0]);
  float sum = 0.0f;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Gpt, LossIgnoresMaskedTargets) {
  nn::GptModel model(tiny_config(nn::ArchFamily::kNeoX));
  const std::vector<std::int32_t> tokens{1, 2, 3, 4};
  const std::vector<std::int32_t> t_all{2, 3, 4, 5};
  const std::vector<std::int32_t> t_mask{2, -1, -1, 5};
  Tape t1, t2;
  const float all = model.loss(t1, tokens, t_all, 1, 4).item();
  const float masked = model.loss(t2, tokens, t_mask, 1, 4).item();
  EXPECT_NE(all, masked);
}

TEST(Bert, EncodeIsBidirectional) {
  nn::BertConfig c;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.max_seq = 8;
  nn::BertEncoder bert(c);
  // Changing the LAST token must change the FIRST position's hidden state
  // (non-causal attention sees the whole sequence).
  std::vector<std::int32_t> a{3, 4, 5, 6};
  std::vector<std::int32_t> b{3, 4, 5, 49};
  Tape t1, t2;
  Var ha = bert.encode(t1, a, 1, 4);
  Var hb = bert.encode(t2, b, 1, 4);
  double diff = 0.0;
  for (std::int64_t cidx = 0; cidx < c.hidden; ++cidx) {
    diff += std::fabs(ha.value().at(0, cidx) - hb.value().at(0, cidx));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(Bert, MlmTrainingReducesLoss) {
  nn::BertConfig c;
  c.vocab_size = 30;
  c.hidden = 16;
  c.n_layers = 1;
  c.n_heads = 2;
  c.max_seq = 16;
  nn::BertEncoder bert(c);
  Rng rng(5);
  std::vector<std::int32_t> text;
  for (int i = 0; i < 16; ++i) text.push_back(10 + i % 4);
  optim::Adam opt(bert.parameters());
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 50; ++step) {
    auto [input, target] =
        nn::apply_mlm_mask(text, tok::SpecialTokens::kMask, 0.3f, rng);
    Tape tape;
    Var loss = bert.mlm_loss(tape, input, target, 1, 16);
    if (step == 0) first = loss.item();
    last = loss.item();
    bert.zero_grad();
    tape.backward(loss);
    opt.step(3e-3);
  }
  EXPECT_LT(last, first * 0.6);
}

TEST(Bert, EmbedReturnsHiddenWidthVector) {
  nn::BertConfig c;
  c.vocab_size = 50;
  c.hidden = 24;
  c.n_layers = 1;
  c.n_heads = 2;
  c.max_seq = 8;
  nn::BertEncoder bert(c);
  const std::vector<std::int32_t> tokens{1, 2, 3};
  const auto e = bert.embed(tokens);
  EXPECT_EQ(e.size(), 24u);
}

TEST(Bert, MlmMaskAlwaysSupervisesSomething) {
  Rng rng(11);
  const std::vector<std::int32_t> tokens{5, 6, 7};
  for (int trial = 0; trial < 50; ++trial) {
    auto [input, target] =
        nn::apply_mlm_mask(tokens, tok::SpecialTokens::kMask, 0.05f, rng);
    int supervised = 0;
    for (std::size_t i = 0; i < target.size(); ++i) {
      if (target[i] != -1) {
        ++supervised;
        EXPECT_EQ(input[i], tok::SpecialTokens::kMask);
        EXPECT_EQ(target[i], tokens[i]);
      }
    }
    EXPECT_GE(supervised, 1);
  }
}

}  // namespace
}  // namespace matgpt
