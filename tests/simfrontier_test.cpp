// Tests for the Frontier performance model: analytic parameter counts
// validated against the real nn models, GEMM-efficiency properties, memory
// model invariants (the Fig. 5 structure), collective cost model, 3D
// parallelism composition (Fig. 7/8 orderings), traces, and the
// architecture-search constraints (Eqs. 1–5).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "simfrontier/archsearch.h"
#include "simfrontier/trace.h"

namespace matgpt::sim {
namespace {

Platform platform() { return Platform{}; }

TEST(Device, TopologyBandwidthHierarchy) {
  FrontierTopology topo;
  EXPECT_DOUBLE_EQ(topo.group_bandwidth(2), 200.0e9);   // GCD pair
  EXPECT_DOUBLE_EQ(topo.group_bandwidth(8), 100.0e9);   // within node
  EXPECT_DOUBLE_EQ(topo.group_bandwidth(256), 100.0e9); // Slingshot
  EXPECT_LT(topo.group_latency(2), topo.group_latency(256));
  EXPECT_EQ(topo.total_gcds(), 75264);  // the paper's effective-GPU count
  EXPECT_THROW(topo.group_bandwidth(0), Error);
}

TEST(ModelDesc, PaperModelsHaveHeadlineParamCounts) {
  const auto neox17 = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto llama17 = ModelDesc::matgpt_1_7b(ArchFamily::kLLaMA);
  const auto neox67 = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  EXPECT_NEAR(neox17.params() / 1e9, 1.7, 0.15);
  EXPECT_NEAR(llama17.params() / 1e9, 1.7, 0.15);
  EXPECT_NEAR(neox67.params() / 1e9, 6.7, 0.3);
  EXPECT_EQ(neox17.head_dim(), 96);
  EXPECT_EQ(neox67.head_dim(), 128);
}

TEST(ModelDesc, AnalyticCountMatchesRealModelExactly) {
  // The analytic formulas must agree with nn::GptModel::param_count() so the
  // simulator and the executable engine cannot drift apart.
  for (auto arch : {ArchFamily::kNeoX, ArchFamily::kLLaMA}) {
    nn::GptConfig c;
    c.arch = arch;
    c.vocab_size = 97;
    c.hidden = 48;
    c.n_layers = 3;
    c.n_heads = 4;
    c.max_seq = 16;
    nn::GptModel real(c);
    ModelDesc desc{arch, c.hidden, c.n_layers, c.n_heads, c.vocab_size};
    EXPECT_EQ(desc.params(), real.param_count()) << nn::arch_name(arch);
  }
}

TEST(ModelDesc, FamiliesMatchWithinLayer) {
  // Fig. 2: same spec => approximately equal per-layer params and FLOPs.
  const auto neox = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto llama = ModelDesc::matgpt_1_7b(ArchFamily::kLLaMA);
  EXPECT_NEAR(static_cast<double>(neox.layer_params()) /
                  static_cast<double>(llama.layer_params()),
              1.0, 0.01);
  EXPECT_NEAR(neox.layer_forward_flops(4096, 2048) /
                  llama.layer_forward_flops(4096, 2048),
              1.0, 0.01);
}

TEST(ModelDesc, TrainFlopsIsThreeTimesForward) {
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  EXPECT_DOUBLE_EQ(m.train_flops(4096, 2048),
                   3.0 * m.forward_flops(4096, 2048));
}

TEST(GemmModel, AlignedDimensionsAreFullyUtilized) {
  EXPECT_DOUBLE_EQ(dim_utilization(96), 1.0);
  EXPECT_DOUBLE_EQ(dim_utilization(128), 1.0);
  EXPECT_NEAR(dim_utilization(90), 90.0 / 96.0, 1e-12);
  EXPECT_THROW(dim_utilization(0), Error);
}

TEST(GemmModel, MisalignmentCostsThroughput) {
  GemmModel gm(GcdSpec{});
  const GemmShape aligned{4096, 2048, 96, 1, 1.0};
  const GemmShape unaligned{4096, 2048, 90, 1, 1.0};
  EXPECT_GT(gm.efficiency(aligned), gm.efficiency(unaligned));
  // Per-FLOP cost must be strictly worse when misaligned.
  EXPECT_GT(gm.time(unaligned) / unaligned.flops(),
            gm.time(aligned) / aligned.flops());
}

TEST(GemmModel, SmallGemmsRampDown) {
  GemmModel gm(GcdSpec{});
  const GemmShape big{4096, 4096, 4096, 1, 1.0};
  const GemmShape small{64, 64, 64, 1, 1.0};
  EXPECT_GT(gm.efficiency(big), gm.efficiency(small));
  EXPECT_LE(gm.efficiency(big), GemmModel::kMaxEfficiency);
}

TEST(GemmModel, CausalFractionHalvesFlopsAndTime) {
  GemmModel gm(GcdSpec{});
  GemmShape full{512, 512, 64, 8, 1.0};
  GemmShape causal = full;
  causal.flop_fraction = 0.5;
  EXPECT_DOUBLE_EQ(causal.flops(), 0.5 * full.flops());
  EXPECT_NEAR(gm.time(causal), 0.5 * gm.time(full), 1e-12);
}

TEST(KernelModel, FlashEligibilityRules) {
  EXPECT_TRUE(flash_eligible(96, AttentionImpl::kFlashV1));
  EXPECT_TRUE(flash_eligible(128, AttentionImpl::kFlashV1));
  EXPECT_FALSE(flash_eligible(160, AttentionImpl::kFlashV1));  // v1 cap 128
  EXPECT_TRUE(flash_eligible(160, AttentionImpl::kFlashV2));
  EXPECT_TRUE(flash_eligible(256, AttentionImpl::kFlashV2));
  EXPECT_FALSE(flash_eligible(90, AttentionImpl::kFlashV2));   // % 8 != 0
  EXPECT_TRUE(flash_eligible(90, AttentionImpl::kMaterialized));
}

TEST(KernelModel, FlashBoostInPaperBand) {
  // The paper: flash v1 improves training throughput ~14% on average and v2
  // ~19%, with best overall ~82 (v1) and ~84 (v2) TFLOPS/GCD at seq 2048.
  KernelModel km(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const double base =
      km.achieved_tflops(m, 16, 2048, AttentionImpl::kMaterialized);
  const double v1 = km.achieved_tflops(m, 16, 2048, AttentionImpl::kFlashV1);
  const double v2 = km.achieved_tflops(m, 16, 2048, AttentionImpl::kFlashV2);
  EXPECT_GT(base, 55.0);
  EXPECT_LT(base, 80.0);
  EXPECT_GT(v1 / base, 1.08);
  EXPECT_LT(v1 / base, 1.25);
  EXPECT_GT(v2, v1);
  EXPECT_GT(v1, 78.0);
  EXPECT_LT(v2, 92.0);
}

TEST(KernelModel, ThroughputBeatsPaperObservationFloor) {
  // Observation 1: with flash attention, >43% of MI250X peak at seq 2048.
  KernelModel km(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const double v1 = km.achieved_tflops(m, 16, 2048, AttentionImpl::kFlashV1);
  EXPECT_GT(v1 / 191.5, 0.43);
}

TEST(KernelModel, GemmsDominateAndGrowWithScale) {
  // Fig. 10: GEMM share of a layer grows from ~66% (medium) to ~91% (large).
  KernelModel km(platform());
  auto share = [&](const ModelDesc& m) {
    const auto ks = km.layer_forward(m, 16, 2048, AttentionImpl::kFlashV2);
    double gemm = 0.0, total = 0.0;
    for (const auto& k : ks) {
      total += k.seconds;
      if (k.is_gemm) gemm += k.seconds;
    }
    return gemm / total;
  };
  const double medium = share(ModelDesc::matgpt_1_7b(ArchFamily::kNeoX));
  const double large = share(ModelDesc{ArchFamily::kNeoX, 8192, 48, 64,
                                       52000});
  EXPECT_GT(medium, 0.5);
  EXPECT_GT(large, medium);
  EXPECT_GT(large, 0.85);
}

TEST(KernelModel, BackwardCostsRoughlyTwiceForward) {
  KernelModel km(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kLLaMA);
  const double fwd =
      total_seconds(km.layer_forward(m, 8, 2048, AttentionImpl::kFlashV1));
  const double bwd =
      total_seconds(km.layer_backward(m, 8, 2048, AttentionImpl::kFlashV1));
  EXPECT_NEAR(bwd / fwd, 2.0, 0.3);
}

TEST(KernelModel, TensorParallelPartitionsWork) {
  KernelModel km(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const double full =
      total_seconds(km.layer_forward(m, 8, 2048, AttentionImpl::kFlashV2, 1));
  const double half =
      total_seconds(km.layer_forward(m, 8, 2048, AttentionImpl::kFlashV2, 2));
  EXPECT_LT(half, full);
  EXPECT_GT(half, 0.4 * full);  // norms/residuals are not partitioned
  EXPECT_THROW(km.layer_forward(m, 8, 2048, AttentionImpl::kFlashV2, 3),
               Error);  // heads 32 % 3 != 0 (Eq. 4)
}

TEST(KernelModel, MaterializedRequiredForIneligibleHeadDims) {
  KernelModel km(platform());
  const ModelDesc odd{ArchFamily::kNeoX, 2160, 24, 24, 52000};  // head 90
  EXPECT_THROW(km.layer_forward(odd, 8, 2048, AttentionImpl::kFlashV1),
               Error);
  EXPECT_NO_THROW(
      km.layer_forward(odd, 8, 2048, AttentionImpl::kMaterialized));
}

TEST(MemoryModel, TwelveBytesPerParamRule) {
  // Paper rule of thumb: training memory ~12x parameters (static state).
  MemoryModel mm(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto mem = mm.training_memory(m, 1, 2048, AttentionImpl::kFlashV2,
                                      ParallelConfig{});
  const double static_bytes =
      mem.param_bytes + mem.grad_bytes + mem.optimizer_bytes;
  EXPECT_NEAR(static_bytes / static_cast<double>(m.params()), 12.0, 1e-9);
}

TEST(MemoryModel, Fig5Structure) {
  // Without flash: OOM beyond seq 8192. With flash: ~4x longer context
  // (32768) fits on the 64 GB GCD.
  MemoryModel mm(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const ParallelConfig serial{};
  EXPECT_EQ(mm.max_sequence_length(m, AttentionImpl::kMaterialized, serial),
            8192);
  EXPECT_EQ(mm.max_sequence_length(m, AttentionImpl::kFlashV1, serial),
            32768);
}

TEST(MemoryModel, FlashRemovesTheQuadraticTerm) {
  MemoryModel mm(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const ParallelConfig serial{};
  const auto no_flash =
      mm.training_memory(m, 1, 8192, AttentionImpl::kMaterialized, serial);
  const auto flash =
      mm.training_memory(m, 1, 8192, AttentionImpl::kFlashV1, serial);
  EXPECT_GT(no_flash.activation_bytes, flash.activation_bytes * 1.5);
  // Doubling seq should ~double flash activations (linear), but ~4x the
  // materialized score workspace (quadratic).
  const auto flash2 =
      mm.training_memory(m, 1, 16384, AttentionImpl::kFlashV1, serial);
  EXPECT_NEAR(flash2.activation_bytes / flash.activation_bytes, 2.0, 0.1);
}

TEST(MemoryModel, ZeroShardsOptimizerAcrossDp) {
  MemoryModel mm(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const auto plain = mm.training_memory(m, 1, 2048, AttentionImpl::kFlashV2,
                                        ParallelConfig{8, 1, 1, false});
  const auto zero = mm.training_memory(m, 1, 2048, AttentionImpl::kFlashV2,
                                       ParallelConfig{8, 1, 1, true});
  EXPECT_NEAR(zero.optimizer_bytes, plain.optimizer_bytes / 8.0, 1.0);
  EXPECT_EQ(zero.param_bytes, plain.param_bytes);  // ZeRO-1 shards only opt
}

TEST(MemoryModel, TpShardsParamsAndActivations) {
  MemoryModel mm(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const auto tp1 = mm.training_memory(m, 1, 2048, AttentionImpl::kFlashV2,
                                      ParallelConfig{4, 1, 1, false});
  const auto tp2 = mm.training_memory(m, 1, 2048, AttentionImpl::kFlashV2,
                                      ParallelConfig{2, 2, 1, false});
  EXPECT_NEAR(tp2.param_bytes, tp1.param_bytes / 2.0, 1.0);
  EXPECT_LT(tp2.activation_bytes, tp1.activation_bytes);
}

TEST(MemoryModel, CheckpointingShrinksActivations) {
  MemoryModel mm(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const ParallelConfig cfg{8, 1, 1, true};
  const auto full =
      mm.training_memory(m, 8, 2048, AttentionImpl::kFlashV2, cfg, false);
  const auto ckpt =
      mm.training_memory(m, 8, 2048, AttentionImpl::kFlashV2, cfg, true);
  EXPECT_LT(ckpt.activation_bytes, full.activation_bytes / 3.0);
}

TEST(NetworkModel, RingAllreduceCostStructure) {
  NetworkModel nm(platform());
  // Twice the payload => ~twice the time (bandwidth-dominated regime).
  const double t1 = nm.collective_time(Collective::kAllReduce, 1e9, 8);
  const double t2 = nm.collective_time(Collective::kAllReduce, 2e9, 8);
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
  // Group of one is free.
  EXPECT_EQ(nm.collective_time(Collective::kAllReduce, 1e9, 1), 0.0);
  // Allreduce moves ~2x an allgather of the same payload.
  const double ag = nm.collective_time(Collective::kAllGather, 1e9, 8);
  EXPECT_NEAR(t1 / ag, 2.0, 0.1);
}

TEST(NetworkModel, GcdPairIsFastestGroup) {
  NetworkModel nm(platform());
  const double pair = nm.collective_time(Collective::kAllReduce, 1e9, 2);
  const double node = nm.collective_time(Collective::kAllReduce, 1e9, 8);
  const double multi = nm.collective_time(Collective::kAllReduce, 1e9, 64);
  EXPECT_LT(pair, node);
  EXPECT_LT(node, multi);
}

TEST(NetworkModel, MultiNodeCongestionGrows) {
  NetworkModel nm(platform());
  const double n2 = nm.collective_time(Collective::kAllReduce, 1e9, 16);
  const double n32 = nm.collective_time(Collective::kAllReduce, 1e9, 256);
  EXPECT_GT(n32, n2 * 1.5);
}

TEST(MessageLog, HistogramAndTotals) {
  MessageLog log;
  log.record(Collective::kAllReduce, 25e6, 8, 4);
  log.record(Collective::kAllGather, 1e6, 8, 100);
  EXPECT_EQ(log.total_calls(), 104);
  EXPECT_NEAR(log.total_bytes(), 4 * 25e6 + 100 * 1e6, 1.0);
  const auto hist = log.size_histogram();
  EXPECT_DOUBLE_EQ(hist.total(), 104.0);
  EXPECT_THROW(log.record(Collective::kAllReduce, 0.0, 8, 1), Error);
}

// ---- parallelism composition: the Fig. 7 / Fig. 8 orderings ----------------

TEST(Parallelism, Fig7SingleNodeOrdering) {
  // ZeRO-1 best, TP=2 close behind, PP=2 clearly worst (bubble).
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const auto zero = sim.simulate_step(m, {8, 1, 1, true}, 8192, 2048,
                                      AttentionImpl::kFlashV2);
  const auto tp2 = sim.simulate_step(m, {4, 2, 1, false}, 8192, 2048,
                                     AttentionImpl::kFlashV2);
  const auto pp2 = sim.simulate_step(m, {4, 1, 2, false}, 8192, 2048,
                                     AttentionImpl::kFlashV2);
  EXPECT_GT(zero.per_gcd_tflops, tp2.per_gcd_tflops);
  EXPECT_GT(tp2.per_gcd_tflops, pp2.per_gcd_tflops);
  EXPECT_GT(pp2.bubble_s, 0.0);
  EXPECT_NEAR(zero.per_gcd_tflops, 81.0, 8.0);  // paper: 81 TFLOPS/GPU
}

TEST(Parallelism, Fig8ScalingShapes) {
  TrainingSimulator sim(platform());
  const auto m17 = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto m67 = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  // 1.7B data parallel at 256 GPUs: >= 18 PFLOPS aggregate, >= 80% scaling.
  const auto base17 = sim.simulate_step(m17, {8, 1, 1, false}, 16384, 2048,
                                        AttentionImpl::kFlashV2);
  const auto big17 = sim.simulate_step(m17, {256, 1, 1, false}, 16384, 2048,
                                       AttentionImpl::kFlashV2);
  EXPECT_GE(big17.aggregate_pflops, 17.0);
  EXPECT_GE(sim.scaling_efficiency(base17, big17), 0.80);
  // 6.7B: ZeRO-1 leads at a node but drops below TP=2 by 256 GPUs.
  const auto zero8 = sim.simulate_step(m67, {8, 1, 1, true}, 8192, 2048,
                                       AttentionImpl::kFlashV2);
  const auto zero256 = sim.simulate_step(m67, {256, 1, 1, true}, 8192, 2048,
                                         AttentionImpl::kFlashV2);
  const auto tp256 = sim.simulate_step(m67, {128, 2, 1, false}, 8192, 2048,
                                       AttentionImpl::kFlashV2);
  EXPECT_GT(zero8.per_gcd_tflops, zero256.per_gcd_tflops);
  EXPECT_GT(tp256.per_gcd_tflops, zero256.per_gcd_tflops);
  // TP=2 sustains high efficiency thanks to the GCD-pair mapping.
  const auto tp8 = sim.simulate_step(m67, {4, 2, 1, false}, 8192, 2048,
                                     AttentionImpl::kFlashV2);
  EXPECT_GE(sim.scaling_efficiency(tp8, tp256), 0.71);
}

TEST(Parallelism, CommunicationFractionGrowsWithScale) {
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const auto small = sim.simulate_step(m, {8, 1, 1, true}, 8192, 2048,
                                       AttentionImpl::kFlashV2);
  const auto large = sim.simulate_step(m, {256, 1, 1, true}, 8192, 2048,
                                       AttentionImpl::kFlashV2);
  EXPECT_GT(large.comm_fraction(), small.comm_fraction());
  EXPECT_LT(large.io_fraction(), 0.10);  // paper: IO ~5%, not a bottleneck
}

TEST(Parallelism, Fig11MessageVolumes) {
  // Paper: DP and ZeRO move ~2x model size per step per GPU; TP ~3x; and
  // ZeRO/TP issue an order of magnitude more calls than plain DP.
  TrainingSimulator sim(platform());
  const auto m17 = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto m67 = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const auto dp = sim.simulate_step(m17, {256, 1, 1, false}, 16384, 2048,
                                    AttentionImpl::kFlashV2);
  const auto zero = sim.simulate_step(m67, {256, 1, 1, true}, 16384, 2048,
                                      AttentionImpl::kFlashV2);
  const auto tp = sim.simulate_step(m67, {128, 2, 1, false}, 16384, 2048,
                                    AttentionImpl::kFlashV2);
  const double m17_bytes = 2.0 * static_cast<double>(m17.params());
  const double m67_bytes = 2.0 * static_cast<double>(m67.params());
  // Wire traffic: DP and ZeRO ~2x model size; TP ~3x (activations on top).
  EXPECT_NEAR(dp.messages.total_transferred_bytes() / m17_bytes, 2.0, 0.2);
  EXPECT_NEAR(zero.messages.total_transferred_bytes() / m67_bytes, 2.0, 0.2);
  EXPECT_GT(tp.messages.total_transferred_bytes() / m67_bytes, 2.4);
  EXPECT_GT(zero.messages.total_calls(), dp.messages.total_calls() * 2);
  EXPECT_GT(tp.messages.total_calls(), dp.messages.total_calls());
}

TEST(Parallelism, AutoCheckpointOnOom) {
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  // 16K tokens/GCD without sharding would blow activations; the simulator
  // must fall back to checkpointing and still fit.
  const auto p = sim.simulate_step(m, {8, 1, 1, true}, 16384, 2048,
                                   AttentionImpl::kFlashV2);
  EXPECT_TRUE(p.checkpointed);
  EXPECT_TRUE(p.fits_memory);
}

TEST(Parallelism, ConstraintViolationsThrow)
{
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);  // 32 layers
  EXPECT_THROW(sim.simulate_step(m, {4, 1, 3, false}, 8192, 2048,
                                 AttentionImpl::kFlashV2),
               Error);  // 32 % 3 != 0 (Eq. 3)
  EXPECT_THROW(sim.simulate_step(m, {4, 3, 1, false}, 8192, 2048,
                                 AttentionImpl::kFlashV2),
               Error);  // heads % 3 != 0 (Eq. 4)
}

TEST(Parallelism, TableIvShape) {
  // Times and energies should preserve the paper's 1.7B : 6.7B ratios
  // (~4x time, ~4x energy) and the TFLOPS/W ordering (1.7B slightly better).
  TrainingSimulator sim(platform());
  const auto e17 = sim.estimate_run(ModelDesc::matgpt_1_7b(ArchFamily::kNeoX),
                                    {256, 1, 1, false}, 16384, 2048,
                                    AttentionImpl::kFlashV2, 15e9);
  const auto e67 = sim.estimate_run(ModelDesc::matgpt_6_7b(ArchFamily::kNeoX),
                                    {256, 1, 1, true}, 8192, 2048,
                                    AttentionImpl::kFlashV2, 15e9);
  EXPECT_NEAR(e67.hours / e17.hours, 4.0, 1.0);
  EXPECT_NEAR(e67.energy_joules / e17.energy_joules, 4.0, 1.2);
  EXPECT_GT(e17.tflops_per_watt, e67.tflops_per_watt);
  EXPECT_NEAR(e17.tflops_per_watt, 0.33, 0.07);  // paper: 0.33
  // Mean MI250X power near the paper's 434–476 W band (sensor = 2 GCDs).
  EXPECT_NEAR(2.0 * e17.mean_power_per_gcd_w, 460.0, 60.0);
}

TEST(Trace, TimelineIsContiguousAndMatchesBreakdown) {
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const auto trace = StepTrace::build(sim, m, {256, 1, 1, true}, 8192, 2048,
                                      AttentionImpl::kFlashV2);
  ASSERT_FALSE(trace.events().empty());
  double cursor = 0.0;
  for (const auto& e : trace.events()) {
    EXPECT_NEAR(e.start_s, cursor, 1e-9);
    EXPECT_GT(e.duration_s, 0.0);
    cursor = e.end_s();
  }
  EXPECT_NEAR(cursor, trace.duration_s(), 1e-9);
  const auto b = trace.breakdown();
  EXPECT_NEAR(b.total(), trace.duration_s(), 1e-9);
  EXPECT_GT(b.comm_fraction(), 0.02);
  EXPECT_GT(b.compute_fraction(), 0.5);
}

TEST(Trace, PowerOscillatesBetweenComputeAndComm) {
  // Fig. 9/12: power is high during compute, dips during communication.
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_6_7b(ArchFamily::kNeoX);
  const auto trace = StepTrace::build(sim, m, {256, 1, 1, true}, 8192, 2048,
                                      AttentionImpl::kFlashV2);
  const auto power = trace.power_trace(trace.duration_s() / 500.0, GcdSpec{});
  double lo = 1e9, hi = 0.0;
  for (const auto& s : power) {
    lo = std::min(lo, s.value);
    hi = std::max(hi, s.value);
  }
  EXPECT_GT(hi, 450.0);  // near-max during GEMMs (per MI250X)
  EXPECT_LT(lo, 350.0);  // dips during collectives
}

TEST(Trace, UtilizationStaysPinnedNearOne) {
  // The paper's caveat: RCCL kernels also occupy the GPU, so utilization is
  // a poor compute indicator — it reads ~100% even during communication.
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto trace = StepTrace::build(sim, m, {256, 1, 1, false}, 16384, 2048,
                                      AttentionImpl::kFlashV2);
  const auto util = trace.utilization_trace(trace.duration_s() / 200.0);
  double mean = 0.0;
  for (const auto& s : util) mean += s.value;
  mean /= static_cast<double>(util.size());
  EXPECT_GT(mean, 0.95);
}

TEST(Trace, MemoryRampsUpOverForwardAndDrains) {
  TrainingSimulator sim(platform());
  const auto m = ModelDesc::matgpt_1_7b(ArchFamily::kNeoX);
  const auto parallel = ParallelConfig{8, 1, 1, false};
  const auto profile = sim.simulate_step(m, parallel, 16384, 2048,
                                         AttentionImpl::kFlashV2);
  const auto trace = StepTrace::build(sim, m, parallel, 16384, 2048,
                                      AttentionImpl::kFlashV2);
  const auto mem = trace.memory_trace(trace.duration_s() / 100.0,
                                      profile.memory, GcdSpec{});
  EXPECT_LT(mem.front().value, mem[mem.size() / 3].value);
  EXPECT_GT(mem[mem.size() / 3].value, mem.back().value);
  for (const auto& s : mem) EXPECT_LE(s.value, 1.0);
}

TEST(ArchSearch, ConstraintsImplementEqs1To5) {
  SearchConstraints c;
  c.tp = 2;
  c.pp = 2;
  c.dp = 2;
  EXPECT_TRUE(c.feasible(2304, 24, 24));
  EXPECT_FALSE(c.feasible(2300, 24, 24));  // Eq. 1: 2300 % 24 != 0
  EXPECT_FALSE(c.feasible(2305, 24, 5));   // Eq. 4: 5 % 2 != 0
  EXPECT_FALSE(c.feasible(2304, 23, 24));  // Eq. 3: 23 % 2 != 0
  SearchConstraints odd;
  odd.dp = 3;
  odd.tp = 1;
  odd.pp = 1;
  EXPECT_FALSE(odd.feasible(2304, 24, 24));  // Eq. 5: 3 % 8 != 0
}

TEST(ArchSearch, AlignedHeadDimsLeadEachLayerCount) {
  // The paper's A–H observation: per layer count, 8-aligned head dims are
  // among the top performers.
  ArchitectureSearch search(platform());
  SearchConstraints c;
  const auto cands = search.search(
      ArchFamily::kNeoX, 52000, {24}, {2208, 2304, 2400, 2496},
      c, 16, 2048);
  const ArchCandidate* best = nullptr;
  for (const auto& cand : cands) {
    if (!best || cand.tflops_base > best->tflops_base) best = &cand;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(best->head_dim_aligned)
      << "best head dim " << best->head_dim();
}

TEST(ArchSearch, HeatmapRangeMatchesPaperBand) {
  // Paper Fig. 4: throughput varies ~58–76 TFLOPS over the ~1B grid.
  ArchitectureSearch search(platform());
  SearchConstraints c;
  c.min_params = 1'400'000'000;
  c.max_params = 2'300'000'000;
  const auto cands = search.search(
      ArchFamily::kNeoX, 52000, ArchitectureSearch::default_layer_grid(),
      ArchitectureSearch::default_hidden_grid(), c, 16, 2048);
  double lo = 1e12, hi = 0.0;
  for (const auto& cand : cands) {
    lo = std::min(lo, cand.tflops_base);
    hi = std::max(hi, cand.tflops_base);
  }
  EXPECT_GT(cands.size(), 8u);
  EXPECT_GT(lo, 50.0);
  EXPECT_LT(hi, 85.0);
  EXPECT_GT(hi - lo, 5.0);  // a real spread, as in the heatmap
  const auto& best = ArchitectureSearch::best(cands);
  EXPECT_GT(best.flash_v2_boost(), best.flash_v1_boost() - 0.01);
}

TEST(ArchSearch, FlashColumnsRespectEligibility) {
  ArchitectureSearch search(platform());
  SearchConstraints c;
  const auto cands =
      search.search(ArchFamily::kNeoX, 52000, {24}, {2304, 2400}, c, 16,
                    2048);
  for (const auto& cand : cands) {
    if (cand.model.head_dim() % 8 != 0) {
      EXPECT_EQ(cand.tflops_flash_v1, 0.0);
      EXPECT_EQ(cand.tflops_flash_v2, 0.0);
    }
  }
}

}  // namespace
}  // namespace matgpt::sim
