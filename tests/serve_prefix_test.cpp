// Unit tests for src/serve/prefix_cache over refcounted paged-KV blocks:
// radix insert/match/split/evict mechanics (now zero-copy block sharing),
// pin semantics, KvCache prefix copy, KvLease RAII, EngineConfig::validate,
// and the engine-level guarantee that a prefix-cache hit decodes
// byte-identically to a cold prefill (greedy and seeded-stochastic, plain
// and speculative).

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/kv_pool.h"
#include "serve/prefix_cache.h"
#include "serve/spec/proposer.h"
#include "serve/trace.h"

namespace matgpt {
namespace {

nn::GptConfig prefix_config(nn::ArchFamily arch = nn::ArchFamily::kLLaMA) {
  nn::GptConfig c;
  c.arch = arch;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = arch == nn::ArchFamily::kLLaMA ? 1 : 0;
  c.max_seq = 64;
  return c;
}

// A small-block paged pool for radix unit tests: 4-token blocks make block
// boundaries land inside the short test prompts, and extra headroom keeps
// the cache's own references from starving leases.
serve::KvPoolConfig radix_pool_config() {
  serve::KvPoolConfig pc;
  pc.slots = 4;
  pc.paged = true;
  pc.block_tokens = 4;
  pc.extra_blocks = 64;
  return pc;
}

// Deterministic synthetic KV rows: element j of token t in layer l is a
// unique value derived from token_salts[t], so any row mix-up shows as an
// exact mismatch — and two caches given equal salts for a shared span hold
// bit-identical rows for it (the invariant real prefills provide).
void fill_cache(nn::KvCache& cache, const nn::GptConfig& c,
                std::span<const float> token_salts) {
  const std::int64_t row = c.kv_heads() * c.head_dim();
  const auto n = static_cast<std::int64_t>(token_salts.size());
  for (std::size_t l = 0; l < cache.layers.size(); ++l) {
    std::vector<float> k(static_cast<std::size_t>(n * row));
    std::vector<float> v(k.size());
    for (std::int64_t t = 0; t < n; ++t) {
      for (std::int64_t j = 0; j < row; ++j) {
        const auto i = static_cast<std::size_t>(t * row + j);
        k[i] = token_salts[static_cast<std::size_t>(t)] +
               1000.0f * static_cast<float>(l) + static_cast<float>(i);
        v[i] = -k[i];
      }
    }
    cache.layers[l].append(k.data(), v.data(), n, c.kv_heads(), c.head_dim());
  }
  cache.length = n;
}

std::vector<float> uniform_salts(std::int64_t n, float salt) {
  return std::vector<float>(static_cast<std::size_t>(n), salt);
}

// First `tokens` rows of `got` must equal `src`'s bit for bit. Gathers
// through KvCacheLayer::copy_rows so slab, dynamic, and paged storage all
// compare the same way.
void expect_prefix_rows_equal(const nn::KvCache& got, const nn::KvCache& src,
                              std::int64_t tokens, const nn::GptConfig& c) {
  ASSERT_EQ(got.length, tokens);
  const std::int64_t row = c.kv_heads() * c.head_dim();
  ASSERT_EQ(got.layers.size(), src.layers.size());
  std::vector<float> gk(static_cast<std::size_t>(tokens * row));
  std::vector<float> gv(gk.size()), sk(gk.size()), sv(gk.size());
  for (std::size_t l = 0; l < got.layers.size(); ++l) {
    got.layers[l].copy_rows(0, tokens, gk.data(), gv.data());
    src.layers[l].copy_rows(0, tokens, sk.data(), sv.data());
    for (std::size_t i = 0; i < gk.size(); ++i) {
      ASSERT_EQ(gk[i], sk[i]) << "layer " << l << " key elem " << i;
      ASSERT_EQ(gv[i], sv[i]) << "layer " << l << " value elem " << i;
    }
  }
}

TEST(PrefixCacheRadix, InsertThenLongestPrefixMatchAliasesBlocks) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, radix_pool_config());
  serve::PrefixCache pc(c, 1 << 20, &pool);
  const std::vector<std::int32_t> prompt{4, 8, 15, 16, 23, 42};

  serve::KvLease kv = pool.lease();
  fill_cache(*kv, c, uniform_salts(6, 1.0f));
  pc.insert(prompt, 6, *kv);
  EXPECT_EQ(pc.cached_tokens(), 6);
  EXPECT_EQ(pc.node_count(), 1u);
  // 6 tokens at 4 tokens/block = 2 block references, counted whole.
  EXPECT_EQ(pc.block_refs(), 2);
  EXPECT_EQ(pc.bytes_used(), 2u * pc.block_bytes());
  // Insert took references, not copies: the lease's blocks are now shared.
  EXPECT_EQ(pool.shared_blocks(), 2);

  // Full match (capped at the prompt length) aliases, never copies.
  auto m = pc.match(prompt, 6);
  EXPECT_EQ(m.tokens, 6);
  serve::KvLease dst = pool.try_lease(-1, m.tokens);
  ASSERT_TRUE(dst);
  const std::uint64_t cow_before = pool.cow_rows();
  pc.restore(m, *dst);
  EXPECT_EQ(pool.cow_rows(), cow_before);  // zero-copy restore
  expect_prefix_rows_equal(*dst, *kv, 6, c);
  pc.unpin(m);
  EXPECT_EQ(pc.stats().tokens_aliased, 6u);
  dst.release();

  // The engine-style cap: never match the whole prompt.
  auto capped = pc.match(prompt, 5);
  EXPECT_EQ(capped.tokens, 5);
  pc.unpin(capped);

  // A prompt with a different first token misses entirely.
  const std::vector<std::int32_t> other{9, 8, 15};
  auto miss = pc.match(other, 2);
  EXPECT_EQ(miss.tokens, 0);
  pc.unpin(miss);

  EXPECT_EQ(pc.stats().hits, 2u);
  EXPECT_EQ(pc.stats().misses, 1u);
  EXPECT_EQ(pc.stats().tokens_reused, 11u);
}

TEST(PrefixCacheRadix, PartialEdgeMatchRestoresOnlySharedRows) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, radix_pool_config());
  serve::PrefixCache pc(c, 1 << 20, &pool);
  const std::vector<std::int32_t> cached{1, 2, 3, 4, 5};
  serve::KvLease kv = pool.lease();
  fill_cache(*kv, c, uniform_salts(5, 2.0f));
  pc.insert(cached, 5, *kv);

  // Shares only the first three tokens, then diverges mid-edge.
  const std::vector<std::int32_t> query{1, 2, 3, 9, 9, 9};
  auto m = pc.match(query, 5);
  EXPECT_EQ(m.tokens, 3);
  serve::KvLease dst = pool.try_lease(-1, m.tokens);
  ASSERT_TRUE(dst);
  pc.restore(m, *dst);
  expect_prefix_rows_equal(*dst, *kv, 3, c);
  pc.unpin(m);
}

TEST(PrefixCacheRadix, DivergingInsertSplitsTheSharedEdge) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, radix_pool_config());
  serve::PrefixCache pc(c, 1 << 20, &pool);
  const std::vector<std::int32_t> a{1, 2, 3, 4};
  const std::vector<std::int32_t> b{1, 2, 8, 9};
  serve::KvLease kva = pool.lease();
  serve::KvLease kvb = pool.lease();
  // Identical token prefixes have identical rows (the model is a pure
  // function of the prefix) — mirror that invariant in the synthetic data
  // so the shared "1 2" span's rows are valid for both prompts.
  fill_cache(*kva, c, {{3.0f, 3.0f, 3.0f, 3.0f}});
  fill_cache(*kvb, c, {{3.0f, 3.0f, 4.0f, 4.0f}});

  pc.insert(a, 4, *kva);
  pc.insert(b, 4, *kvb);
  // Shared "1 2" node plus the two 2-token tails. The 4-token block is cut
  // mid-block, so head and tail each hold a reference to their boundary
  // block: a's block (head + a-tail) and b's block (b-tail) = 3 refs.
  EXPECT_EQ(pc.node_count(), 3u);
  EXPECT_EQ(pc.cached_tokens(), 6);  // 2 shared + 2 + 2
  EXPECT_EQ(pc.stats().tokens_inserted, 6u);
  EXPECT_EQ(pc.block_refs(), 3);

  // Both prompts still fully matchable, rows bit-correct across the split
  // (deepest node wins the boundary block on restore).
  for (const auto* p : {&a, &b}) {
    auto m = pc.match(*p, 4);
    EXPECT_EQ(m.tokens, 4);
    serve::KvLease dst = pool.try_lease(-1, m.tokens);
    ASSERT_TRUE(dst);
    pc.restore(m, *dst);
    expect_prefix_rows_equal(*dst, p == &a ? *kva : *kvb, 4, c);
    pc.unpin(m);
  }
}

TEST(PrefixCacheRadix, EvictionIsLruAndSkipsPinnedNodes) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, radix_pool_config());
  // Room for exactly 2 block references (each prompt below takes 1).
  serve::PrefixCache pc(c, 2 * static_cast<std::size_t>(
                                   pool.arena()->layout().block_bytes_bf16()),
                        &pool);
  const std::vector<std::int32_t> a{10, 11, 12, 13};
  const std::vector<std::int32_t> b{20, 21, 22, 23};
  const std::vector<std::int32_t> d{30, 31, 32, 33};
  serve::KvLease kv = pool.lease();
  fill_cache(*kv, c, uniform_salts(4, 5.0f));

  pc.insert(a, 4, *kv);
  pc.insert(b, 4, *kv);
  EXPECT_EQ(pc.bytes_used(), pc.byte_budget());

  // Touch `a` so `b` becomes least recently used.
  {
    auto m = pc.match(a, 4);
    EXPECT_EQ(m.tokens, 4);
    pc.unpin(m);
  }
  pc.insert(d, 4, *kv);  // over budget: must evict exactly one leaf — b
  EXPECT_EQ(pc.stats().nodes_evicted, 1u);
  EXPECT_EQ(pc.stats().tokens_evicted, 4u);
  {
    auto m = pc.match(b, 4);
    EXPECT_EQ(m.tokens, 0) << "LRU prompt should have been evicted";
    pc.unpin(m);
  }
  for (const auto* p : {&a, &d}) {
    auto m = pc.match(*p, 4);
    EXPECT_EQ(m.tokens, 4) << "recently used prompt evicted";
    pc.unpin(m);
  }

  // A pinned leaf survives even a trim-to-zero; unpinning frees it.
  auto pin = pc.match(a, 4);
  ASSERT_EQ(pin.tokens, 4);
  pc.trim(0);
  {
    auto m = pc.match(a, 4);
    EXPECT_EQ(m.tokens, 4) << "eviction touched a pinned node";
    pc.unpin(m);
  }
  pc.unpin(pin);
  pc.trim(0);
  EXPECT_EQ(pc.bytes_used(), 0u);
  EXPECT_EQ(pc.cached_tokens(), 0);
  EXPECT_EQ(pc.node_count(), 0u);
  EXPECT_EQ(pc.block_refs(), 0);
  // Every cache reference is gone; only the lease still holds its blocks.
  kv.release();
  EXPECT_EQ(pool.used_blocks(), 0);
}

TEST(PrefixCacheRadix, EvictForBlocksFreesAdmissionHeadroom) {
  const nn::GptConfig c = prefix_config();
  serve::KvPoolConfig pcfg;
  pcfg.slots = 1;
  pcfg.paged = true;
  pcfg.block_tokens = 4;  // 64-token capacity = 16 blocks, no headroom
  serve::KvCachePool pool(c, pcfg);
  serve::PrefixCache pc(c, 1 << 20, &pool);

  const std::vector<std::int32_t> prompt{1, 2, 3, 4, 5, 6, 7, 8};
  {
    serve::KvLease kv = pool.lease();
    fill_cache(*kv, c, uniform_salts(8, 1.0f));
    pc.insert(prompt, 8, *kv);
  }
  // The cache's 2 block refs keep those blocks used after the lease died.
  EXPECT_EQ(pool.used_blocks(), 2);
  // A full-capacity lease needs all 16 blocks — only 14 are free.
  EXPECT_FALSE(pool.try_lease());
  EXPECT_TRUE(pc.evict_for_blocks(pool.blocks_needed(64, 0)));
  EXPECT_EQ(pc.node_count(), 0u);
  serve::KvLease full = pool.try_lease();
  EXPECT_TRUE(full);
}

TEST(PrefixCacheRadix, SplitOfPinnedEdgeIsRefused) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, radix_pool_config());
  serve::PrefixCache pc(c, 1 << 20, &pool);
  const std::vector<std::int32_t> a{1, 2, 3, 4};
  const std::vector<std::int32_t> b{1, 2, 8, 9};
  serve::KvLease kva = pool.lease();
  serve::KvLease kvb = pool.lease();
  fill_cache(*kva, c, {{6.0f, 6.0f, 6.0f, 6.0f}});
  fill_cache(*kvb, c, {{6.0f, 6.0f, 7.0f, 7.0f}});
  pc.insert(a, 4, *kva);

  auto pin = pc.match(a, 4);  // pins the single leaf
  ASSERT_EQ(pin.tokens, 4);
  pc.insert(b, 4, *kvb);  // would split the pinned edge at offset 2: refused
  EXPECT_EQ(pc.node_count(), 1u);
  EXPECT_EQ(pc.cached_tokens(), 4);
  EXPECT_EQ(pc.stats().tokens_inserted, 4u);
  pc.unpin(pin);

  pc.insert(b, 4, *kvb);  // now the split goes through
  EXPECT_EQ(pc.node_count(), 3u);
  auto m = pc.match(b, 4);
  EXPECT_EQ(m.tokens, 4);
  pc.unpin(m);
}

TEST(PrefixCacheRadix, BudgetSmallerThanOneBlockThrows) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, radix_pool_config());
  EXPECT_THROW(serve::PrefixCache(c, 1, &pool), Error);
}

TEST(PrefixCacheRadix, RequiresPagedPool) {
  const nn::GptConfig c = prefix_config();
  serve::KvPoolConfig pcfg;
  pcfg.slots = 2;
  pcfg.paged = false;
  serve::KvCachePool slotted(c, pcfg);
  EXPECT_THROW(serve::PrefixCache(c, 1 << 20, &slotted), Error);
}

// --- KvCache::copy_prefix_from: the nn-layer half of the slab restore ---

TEST(KvCachePrefixCopy, CopiedPrefixMatchesColdPrefillBitExact) {
  for (auto arch : {nn::ArchFamily::kNeoX, nn::ArchFamily::kLLaMA}) {
    const nn::GptConfig c = prefix_config(arch);
    nn::GptModel model(c);
    const std::vector<std::int32_t> prompt{3, 14, 15, 9, 2, 6, 5};
    const std::int64_t prefix_len = 4;

    nn::KvCache full;
    full.reserve(c);
    {
      Tape tape;
      model.forward_incremental(tape, prompt, full);
    }

    // Adopt the first 4 rows by memcpy, then prefill the suffix: the cache
    // AND the last-position logits must equal the cold full-prompt run.
    nn::KvCache copied;
    copied.reserve(c);
    copied.copy_prefix_from(full, prefix_len);
    expect_prefix_rows_equal(copied, full, prefix_len, c);

    nn::KvCache cold;
    cold.reserve(c);
    Tape t_hot, t_cold;
    Var hot_logits = model.forward_incremental(
        t_hot,
        std::span<const std::int32_t>(prompt).subspan(
            static_cast<std::size_t>(prefix_len)),
        copied);
    Var cold_logits = model.forward_incremental(t_cold, prompt, cold);
    for (std::int64_t v = 0; v < c.vocab_size; ++v) {
      ASSERT_EQ(hot_logits.value().at(0, v), cold_logits.value().at(0, v))
          << "arch " << static_cast<int>(arch) << " vocab " << v;
    }
    expect_prefix_rows_equal(copied, cold,
                             static_cast<std::int64_t>(prompt.size()), c);
  }
}

// --- KvLease RAII over the pool ---

TEST(KvLease, ReturnsSlotOnScopeExit) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, 1);
  const std::size_t idle = pool.available();
  {
    serve::KvLease lease = pool.try_lease();
    ASSERT_TRUE(lease);
    EXPECT_EQ(pool.available(), 0u);
    EXPECT_EQ(lease->length, 0);
    // Pool drained: the non-blocking path reports exhaustion.
    serve::KvLease second = pool.try_lease();
    EXPECT_FALSE(second);
  }
  EXPECT_EQ(pool.available(), idle);
  EXPECT_TRUE(pool.all_free());
}

TEST(KvLease, MoveTransfersOwnershipWithoutDoubleRelease) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, 2);
  const std::size_t idle = pool.available();
  serve::KvLease a = pool.lease();
  const std::size_t after_one = pool.available();
  EXPECT_LT(after_one, idle);
  serve::KvLease b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(pool.available(), after_one);

  // Move-assign over a live lease releases the overwritten slot.
  serve::KvLease d = pool.lease();
  EXPECT_LT(pool.available(), after_one);
  d = std::move(b);
  EXPECT_EQ(pool.available(), after_one);
  d.release();
  EXPECT_EQ(pool.available(), idle);
  EXPECT_TRUE(pool.all_free());
  EXPECT_FALSE(d);
  EXPECT_THROW((void)*d, Error);
}

TEST(KvLease, TruncateRollsBackThroughTheHandle) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  serve::KvCachePool pool(c, 1);
  serve::KvLease lease = pool.lease();
  Tape tape;
  const std::vector<std::int32_t> prompt{1, 2, 3, 4, 5};
  model.forward_incremental(tape, prompt, *lease);
  EXPECT_EQ(lease->length, 5);
  lease.truncate(2);
  EXPECT_EQ(lease->length, 2);
}

// --- EngineConfig::validate ---

TEST(EngineConfigValidate, EachBadKnobThrowsFromTheConstructor) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  {
    serve::EngineConfig ec;
    ec.max_batch = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.kv_slots = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.queue_capacity = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.prefix_cache_bytes = 1;  // smaller than one KV block
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.kv_block_tokens = 0;  // paged pool needs a block size
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.paged_kv = false;
    ec.prefix_cache_bytes = 1 << 20;  // cache needs block sharing
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
}

// --- Engine integration: hits must not change a single byte ---

std::vector<serve::Request> shared_prefix_requests(bool greedy) {
  const std::vector<std::int32_t> shared{5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<serve::Request> reqs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    serve::Request r;
    r.id = i;
    r.prompt = shared;
    r.prompt.push_back(static_cast<std::int32_t>(20 + i));
    r.prompt.push_back(static_cast<std::int32_t>(30 + (i * 3) % 7));
    r.max_new_tokens = 6;
    if (greedy) {
      r.sampling.temperature = 0.0f;
    } else {
      r.sampling.temperature = 0.8f;
      r.sampling.top_k = 10;
      r.sampling.top_p = 0.9f;
    }
    r.sampling.seed = 1000 + i;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(ServePrefixEngine, HitTokensByteIdenticalToColdPrefill) {
  for (bool greedy : {true, false}) {
    const nn::GptConfig c = prefix_config();
    nn::GptModel model(c);
    serve::EngineConfig cold_ec;
    cold_ec.max_batch = 3;
    cold_ec.kv_slots = 3;
    serve::EngineConfig hot_ec = cold_ec;
    hot_ec.prefix_cache_bytes = 1 << 20;

    serve::InferenceEngine cold(model, cold_ec), hot(model, hot_ec);
    const auto cold_results = cold.run_trace(shared_prefix_requests(greedy));
    const auto hot_results = hot.run_trace(shared_prefix_requests(greedy));
    ASSERT_EQ(cold_results.size(), hot_results.size());
    for (std::size_t i = 0; i < hot_results.size(); ++i) {
      EXPECT_EQ(hot_results[i].tokens, cold_results[i].tokens)
          << (greedy ? "greedy" : "stochastic") << " request " << i;
      // And both equal the standalone batch-1 reference.
      const auto reqs = shared_prefix_requests(greedy);
      Rng rng(reqs[i].sampling.seed);
      EXPECT_EQ(hot_results[i].tokens,
                model.generate_cached(reqs[i].prompt, reqs[i].max_new_tokens,
                                      reqs[i].sampling, rng))
          << (greedy ? "greedy" : "stochastic") << " request " << i;
    }

    // The cache actually participated: first request misses, the rest hit
    // the 8-token shared span — and every hit was aliased, never copied.
    EXPECT_EQ(hot.stats().prefix_misses(), 1u);
    EXPECT_EQ(hot.stats().prefix_hits(), 5u);
    EXPECT_GE(hot.stats().prefix_tokens_reused(), 5u * 8u);
    EXPECT_GT(hot.stats().prefix_hit_rate(), 0.8);
    EXPECT_EQ(cold.stats().prefix_hits() + cold.stats().prefix_misses(), 0u);
    ASSERT_NE(hot.prefix_cache(), nullptr);
    EXPECT_EQ(hot.prefix_cache()->stats().hits, 5u);
    EXPECT_EQ(hot.prefix_cache()->stats().tokens_aliased,
              hot.prefix_cache()->stats().tokens_reused);
  }
}

TEST(ServePrefixEngine, TinyBudgetEvictsButStaysByteIdentical) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  serve::EngineConfig ec;
  ec.max_batch = 2;
  ec.kv_slots = 2;
  ec.kv_block_tokens = 4;
  // Room for ~6 tokens (1.5 blocks): every insert fights the budget,
  // forcing eviction churn while requests are in flight.
  ec.prefix_cache_bytes = 6 * (2 * 2 * static_cast<std::size_t>(
                                           c.n_layers * c.kv_heads() *
                                           c.head_dim()));
  serve::TraceSpec spec;
  spec.n_requests = 12;
  spec.vocab_size = c.vocab_size;
  spec.prompt_len_min = 4;
  spec.prompt_len_max = 10;
  spec.max_new_min = 1;
  spec.max_new_max = 4;
  spec.shared_prefix_fraction = 0.7;
  spec.shared_prefix_len = 5;

  serve::InferenceEngine engine(model, ec);
  auto trace = serve::synth_trace(spec);
  const auto reference = trace;
  const auto results = engine.run_trace(std::move(trace));
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    Rng rng(reference[i].sampling.seed);
    EXPECT_EQ(results[i].tokens,
              model.generate_cached(reference[i].prompt,
                                    reference[i].max_new_tokens,
                                    reference[i].sampling, rng))
        << "request " << i;
  }
  ASSERT_NE(engine.prefix_cache(), nullptr);
  EXPECT_GT(engine.prefix_cache()->stats().nodes_evicted, 0u);
  EXPECT_LE(engine.prefix_cache()->bytes_used(), ec.prefix_cache_bytes);
}

TEST(ServePrefixEngine, SpeculativeRequestsDecodeIdenticallyThroughTheCache) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  serve::EngineConfig ec;
  ec.max_batch = 3;
  ec.kv_slots = 3;
  ec.prefix_cache_bytes = 1 << 20;
  ec.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 1);

  auto reqs = shared_prefix_requests(/*greedy=*/true);
  for (auto& r : reqs) r.spec_k = 2;
  const auto reference = reqs;

  serve::InferenceEngine engine(model, ec);
  const auto results = engine.run_trace(std::move(reqs));
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    Rng rng(reference[i].sampling.seed);
    EXPECT_EQ(results[i].tokens,
              model.generate_cached(reference[i].prompt,
                                    reference[i].max_new_tokens,
                                    reference[i].sampling, rng))
        << "speculative request " << i;
  }
  EXPECT_EQ(engine.stats().prefix_hits(), 5u);
  // Draft slots never touch the prefix cache — every draft prefill is cold.
  ASSERT_NE(engine.draft_pool(), nullptr);
  EXPECT_TRUE(engine.draft_pool()->all_free());
}

}  // namespace
}  // namespace matgpt
