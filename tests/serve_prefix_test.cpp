// Unit tests for src/serve/prefix_cache and the API redesign riding along
// with it: radix insert/match/split/evict mechanics, pin semantics, KvCache
// prefix copy, KvLease RAII, EngineConfig::validate, and the engine-level
// guarantee that a prefix-cache hit decodes byte-identically to a cold
// prefill (greedy and seeded-stochastic, plain and speculative).

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "nn/gpt.h"
#include "serve/engine.h"
#include "serve/kv_pool.h"
#include "serve/prefix_cache.h"
#include "serve/spec/proposer.h"
#include "serve/trace.h"

namespace matgpt {
namespace {

nn::GptConfig prefix_config(nn::ArchFamily arch = nn::ArchFamily::kLLaMA) {
  nn::GptConfig c;
  c.arch = arch;
  c.vocab_size = 50;
  c.hidden = 16;
  c.n_layers = 2;
  c.n_heads = 2;
  c.n_kv_heads = arch == nn::ArchFamily::kLLaMA ? 1 : 0;
  c.max_seq = 64;
  return c;
}

// Deterministic synthetic KV rows: element j of token t in layer l is a
// unique value, so any row mix-up shows as an exact mismatch.
void fill_cache(nn::KvCache& cache, const nn::GptConfig& c, std::int64_t n,
                float salt) {
  const std::int64_t row = c.kv_heads() * c.head_dim();
  for (std::size_t l = 0; l < cache.layers.size(); ++l) {
    std::vector<float> k(static_cast<std::size_t>(n * row));
    std::vector<float> v(k.size());
    for (std::size_t i = 0; i < k.size(); ++i) {
      k[i] = salt + 1000.0f * static_cast<float>(l) + static_cast<float>(i);
      v[i] = -k[i];
    }
    cache.layers[l].append(k.data(), v.data(), n, c.kv_heads(), c.head_dim());
  }
  cache.length = n;
}

// First `tokens` rows of `got` must equal `src`'s bit for bit.
void expect_prefix_rows_equal(const nn::KvCache& got, const nn::KvCache& src,
                              std::int64_t tokens, const nn::GptConfig& c) {
  ASSERT_EQ(got.length, tokens);
  const std::int64_t row = c.kv_heads() * c.head_dim();
  ASSERT_EQ(got.layers.size(), src.layers.size());
  for (std::size_t l = 0; l < got.layers.size(); ++l) {
    for (std::int64_t i = 0; i < tokens * row; ++i) {
      ASSERT_EQ(got.layers[l].keys.data()[i], src.layers[l].keys.data()[i])
          << "layer " << l << " key elem " << i;
      ASSERT_EQ(got.layers[l].values.data()[i], src.layers[l].values.data()[i])
          << "layer " << l << " value elem " << i;
    }
  }
}

TEST(PrefixCacheRadix, InsertThenLongestPrefixMatch) {
  const nn::GptConfig c = prefix_config();
  serve::PrefixCache pc(c, 1 << 20);
  const std::vector<std::int32_t> prompt{4, 8, 15, 16, 23, 42};

  nn::KvCache kv;
  kv.reserve(c);
  fill_cache(kv, c, static_cast<std::int64_t>(prompt.size()), 1.0f);
  pc.insert(prompt, static_cast<std::int64_t>(prompt.size()), kv);
  EXPECT_EQ(pc.cached_tokens(), 6);
  EXPECT_EQ(pc.node_count(), 1u);
  EXPECT_EQ(pc.bytes_used(), 6u * pc.token_bytes());

  // Full match (capped at the prompt length).
  auto m = pc.match(prompt, 6);
  EXPECT_EQ(m.tokens, 6);
  nn::KvCache dst;
  dst.reserve(c);
  pc.restore(m, dst);
  expect_prefix_rows_equal(dst, kv, 6, c);
  pc.unpin(m);

  // The engine-style cap: never match the whole prompt.
  auto capped = pc.match(prompt, 5);
  EXPECT_EQ(capped.tokens, 5);
  pc.unpin(capped);

  // A prompt with a different first token misses entirely.
  const std::vector<std::int32_t> other{9, 8, 15};
  auto miss = pc.match(other, 2);
  EXPECT_EQ(miss.tokens, 0);
  pc.unpin(miss);

  EXPECT_EQ(pc.stats().hits, 2u);
  EXPECT_EQ(pc.stats().misses, 1u);
  EXPECT_EQ(pc.stats().tokens_reused, 11u);
}

TEST(PrefixCacheRadix, PartialEdgeMatchRestoresOnlySharedRows) {
  const nn::GptConfig c = prefix_config();
  serve::PrefixCache pc(c, 1 << 20);
  const std::vector<std::int32_t> cached{1, 2, 3, 4, 5};
  nn::KvCache kv;
  kv.reserve(c);
  fill_cache(kv, c, 5, 2.0f);
  pc.insert(cached, 5, kv);

  // Shares only the first three tokens, then diverges mid-edge.
  const std::vector<std::int32_t> query{1, 2, 3, 9, 9, 9};
  auto m = pc.match(query, 5);
  EXPECT_EQ(m.tokens, 3);
  nn::KvCache dst;
  dst.reserve(c);
  pc.restore(m, dst);
  expect_prefix_rows_equal(dst, kv, 3, c);
  pc.unpin(m);
}

TEST(PrefixCacheRadix, DivergingInsertSplitsTheSharedEdge) {
  const nn::GptConfig c = prefix_config();
  serve::PrefixCache pc(c, 1 << 20);
  const std::vector<std::int32_t> a{1, 2, 3, 4};
  const std::vector<std::int32_t> b{1, 2, 8, 9};
  nn::KvCache kva, kvb;
  kva.reserve(c);
  kvb.reserve(c);
  fill_cache(kva, c, 4, 3.0f);
  fill_cache(kvb, c, 4, 4.0f);
  // Identical token prefixes have identical rows (the model is a pure
  // function of the prefix) — mirror that invariant in the synthetic data
  // so the shared "1 2" node's rows are valid for both prompts.
  const std::int64_t row = c.kv_heads() * c.head_dim();
  for (std::size_t l = 0; l < kvb.layers.size(); ++l) {
    for (std::int64_t i = 0; i < 2 * row; ++i) {
      kvb.layers[l].keys.data()[i] = kva.layers[l].keys.data()[i];
      kvb.layers[l].values.data()[i] = kva.layers[l].values.data()[i];
    }
  }

  pc.insert(a, 4, kva);
  pc.insert(b, 4, kvb);
  // Shared "1 2" node plus the two 2-token tails.
  EXPECT_EQ(pc.node_count(), 3u);
  EXPECT_EQ(pc.cached_tokens(), 6);  // 2 shared + 2 + 2
  EXPECT_EQ(pc.stats().tokens_inserted, 6u);

  // Both prompts still fully matchable, rows bit-correct across the split.
  for (const auto* p : {&a, &b}) {
    auto m = pc.match(*p, 4);
    EXPECT_EQ(m.tokens, 4);
    nn::KvCache dst;
    dst.reserve(c);
    pc.restore(m, dst);
    expect_prefix_rows_equal(dst, p == &a ? kva : kvb, 4, c);
    pc.unpin(m);
  }
}

TEST(PrefixCacheRadix, EvictionIsLruAndSkipsPinnedNodes) {
  const nn::GptConfig c = prefix_config();
  // Room for exactly 8 tokens.
  serve::PrefixCache pc(c, 8 * (2 * 2 * static_cast<std::size_t>(
                                            c.n_layers * c.kv_heads() *
                                            c.head_dim())));
  const std::vector<std::int32_t> a{10, 11, 12, 13};
  const std::vector<std::int32_t> b{20, 21, 22, 23};
  const std::vector<std::int32_t> d{30, 31, 32, 33};
  nn::KvCache kv;
  kv.reserve(c);
  fill_cache(kv, c, 4, 5.0f);

  pc.insert(a, 4, kv);
  pc.insert(b, 4, kv);
  EXPECT_EQ(pc.bytes_used(), pc.byte_budget());

  // Touch `a` so `b` becomes least recently used.
  {
    auto m = pc.match(a, 4);
    EXPECT_EQ(m.tokens, 4);
    pc.unpin(m);
  }
  pc.insert(d, 4, kv);  // over budget: must evict exactly one leaf — b
  EXPECT_EQ(pc.stats().nodes_evicted, 1u);
  EXPECT_EQ(pc.stats().tokens_evicted, 4u);
  {
    auto m = pc.match(b, 4);
    EXPECT_EQ(m.tokens, 0) << "LRU prompt should have been evicted";
    pc.unpin(m);
  }
  for (const auto* p : {&a, &d}) {
    auto m = pc.match(*p, 4);
    EXPECT_EQ(m.tokens, 4) << "recently used prompt evicted";
    pc.unpin(m);
  }

  // A pinned leaf survives even a trim-to-zero; unpinning frees it.
  auto pin = pc.match(a, 4);
  ASSERT_EQ(pin.tokens, 4);
  pc.trim(0);
  {
    auto m = pc.match(a, 4);
    EXPECT_EQ(m.tokens, 4) << "eviction touched a pinned node";
    pc.unpin(m);
  }
  pc.unpin(pin);
  pc.trim(0);
  EXPECT_EQ(pc.bytes_used(), 0u);
  EXPECT_EQ(pc.cached_tokens(), 0);
  EXPECT_EQ(pc.node_count(), 0u);
}

TEST(PrefixCacheRadix, SplitOfPinnedEdgeIsRefused) {
  const nn::GptConfig c = prefix_config();
  serve::PrefixCache pc(c, 1 << 20);
  const std::vector<std::int32_t> a{1, 2, 3, 4};
  const std::vector<std::int32_t> b{1, 2, 8, 9};
  nn::KvCache kva, kvb;
  kva.reserve(c);
  kvb.reserve(c);
  fill_cache(kva, c, 4, 6.0f);
  fill_cache(kvb, c, 4, 7.0f);
  pc.insert(a, 4, kva);

  auto pin = pc.match(a, 4);  // pins the single leaf
  ASSERT_EQ(pin.tokens, 4);
  pc.insert(b, 4, kvb);  // would split the pinned edge at offset 2: refused
  EXPECT_EQ(pc.node_count(), 1u);
  EXPECT_EQ(pc.cached_tokens(), 4);
  EXPECT_EQ(pc.stats().tokens_inserted, 4u);
  pc.unpin(pin);

  pc.insert(b, 4, kvb);  // now the split goes through
  EXPECT_EQ(pc.node_count(), 3u);
  auto m = pc.match(b, 4);
  EXPECT_EQ(m.tokens, 4);
  pc.unpin(m);
}

TEST(PrefixCacheRadix, BudgetSmallerThanOneTokenBlockThrows) {
  const nn::GptConfig c = prefix_config();
  EXPECT_THROW(serve::PrefixCache(c, 1), Error);
}

// --- KvCache::copy_prefix_from: the nn-layer half of the restore path ---

TEST(KvCachePrefixCopy, CopiedPrefixMatchesColdPrefillBitExact) {
  for (auto arch : {nn::ArchFamily::kNeoX, nn::ArchFamily::kLLaMA}) {
    const nn::GptConfig c = prefix_config(arch);
    nn::GptModel model(c);
    const std::vector<std::int32_t> prompt{3, 14, 15, 9, 2, 6, 5};
    const std::int64_t prefix_len = 4;

    nn::KvCache full;
    full.reserve(c);
    {
      Tape tape;
      model.forward_incremental(tape, prompt, full);
    }

    // Adopt the first 4 rows by memcpy, then prefill the suffix: the cache
    // AND the last-position logits must equal the cold full-prompt run.
    nn::KvCache copied;
    copied.reserve(c);
    copied.copy_prefix_from(full, prefix_len);
    expect_prefix_rows_equal(copied, full, prefix_len, c);

    nn::KvCache cold;
    cold.reserve(c);
    Tape t_hot, t_cold;
    Var hot_logits = model.forward_incremental(
        t_hot,
        std::span<const std::int32_t>(prompt).subspan(
            static_cast<std::size_t>(prefix_len)),
        copied);
    Var cold_logits = model.forward_incremental(t_cold, prompt, cold);
    for (std::int64_t v = 0; v < c.vocab_size; ++v) {
      ASSERT_EQ(hot_logits.value().at(0, v), cold_logits.value().at(0, v))
          << "arch " << static_cast<int>(arch) << " vocab " << v;
    }
    expect_prefix_rows_equal(copied, cold,
                             static_cast<std::int64_t>(prompt.size()), c);
  }
}

// --- KvLease RAII over the pool ---

TEST(KvLease, ReturnsSlotOnScopeExit) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, 1);
  {
    serve::KvLease lease = pool.try_lease();
    ASSERT_TRUE(lease);
    EXPECT_EQ(pool.available(), 0u);
    EXPECT_EQ(lease->length, 0);
    // Pool drained: the non-blocking path reports exhaustion.
    serve::KvLease second = pool.try_lease();
    EXPECT_FALSE(second);
  }
  EXPECT_EQ(pool.available(), 1u);
}

TEST(KvLease, MoveTransfersOwnershipWithoutDoubleRelease) {
  const nn::GptConfig c = prefix_config();
  serve::KvCachePool pool(c, 2);
  serve::KvLease a = pool.lease();
  serve::KvLease b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(pool.available(), 1u);

  // Move-assign over a live lease releases the overwritten slot.
  serve::KvLease d = pool.lease();
  EXPECT_EQ(pool.available(), 0u);
  d = std::move(b);
  EXPECT_EQ(pool.available(), 1u);
  d.release();
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_FALSE(d);
  EXPECT_THROW(*d, Error);
}

TEST(KvLease, TruncateRollsBackThroughTheHandle) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  serve::KvCachePool pool(c, 1);
  serve::KvLease lease = pool.lease();
  Tape tape;
  const std::vector<std::int32_t> prompt{1, 2, 3, 4, 5};
  model.forward_incremental(tape, prompt, *lease);
  EXPECT_EQ(lease->length, 5);
  lease.truncate(2);
  EXPECT_EQ(lease->length, 2);
}

// --- EngineConfig::validate ---

TEST(EngineConfigValidate, EachBadKnobThrowsFromTheConstructor) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  {
    serve::EngineConfig ec;
    ec.max_batch = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.kv_slots = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.queue_capacity = 0;
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
  {
    serve::EngineConfig ec;
    ec.prefix_cache_bytes = 1;  // smaller than one token block
    EXPECT_THROW(serve::InferenceEngine(model, ec), Error);
  }
}

// --- Engine integration: hits must not change a single byte ---

std::vector<serve::Request> shared_prefix_requests(bool greedy) {
  const std::vector<std::int32_t> shared{5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<serve::Request> reqs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    serve::Request r;
    r.id = i;
    r.prompt = shared;
    r.prompt.push_back(static_cast<std::int32_t>(20 + i));
    r.prompt.push_back(static_cast<std::int32_t>(30 + (i * 3) % 7));
    r.max_new_tokens = 6;
    if (greedy) {
      r.sampling.temperature = 0.0f;
    } else {
      r.sampling.temperature = 0.8f;
      r.sampling.top_k = 10;
      r.sampling.top_p = 0.9f;
    }
    r.sampling.seed = 1000 + i;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(ServePrefixEngine, HitTokensByteIdenticalToColdPrefill) {
  for (bool greedy : {true, false}) {
    const nn::GptConfig c = prefix_config();
    nn::GptModel model(c);
    serve::EngineConfig cold_ec;
    cold_ec.max_batch = 3;
    cold_ec.kv_slots = 3;
    serve::EngineConfig hot_ec = cold_ec;
    hot_ec.prefix_cache_bytes = 1 << 20;

    serve::InferenceEngine cold(model, cold_ec), hot(model, hot_ec);
    const auto cold_results = cold.run_trace(shared_prefix_requests(greedy));
    const auto hot_results = hot.run_trace(shared_prefix_requests(greedy));
    ASSERT_EQ(cold_results.size(), hot_results.size());
    for (std::size_t i = 0; i < hot_results.size(); ++i) {
      EXPECT_EQ(hot_results[i].tokens, cold_results[i].tokens)
          << (greedy ? "greedy" : "stochastic") << " request " << i;
      // And both equal the standalone batch-1 reference.
      const auto reqs = shared_prefix_requests(greedy);
      Rng rng(reqs[i].sampling.seed);
      EXPECT_EQ(hot_results[i].tokens,
                model.generate_cached(reqs[i].prompt, reqs[i].max_new_tokens,
                                      reqs[i].sampling, rng))
          << (greedy ? "greedy" : "stochastic") << " request " << i;
    }

    // The cache actually participated: first request misses, the rest hit
    // the 8-token shared span.
    EXPECT_EQ(hot.stats().prefix_misses(), 1u);
    EXPECT_EQ(hot.stats().prefix_hits(), 5u);
    EXPECT_GE(hot.stats().prefix_tokens_reused(), 5u * 8u);
    EXPECT_GT(hot.stats().prefix_hit_rate(), 0.8);
    EXPECT_EQ(cold.stats().prefix_hits() + cold.stats().prefix_misses(), 0u);
    ASSERT_NE(hot.prefix_cache(), nullptr);
    EXPECT_EQ(hot.prefix_cache()->stats().hits, 5u);
  }
}

TEST(ServePrefixEngine, TinyBudgetEvictsButStaysByteIdentical) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  serve::EngineConfig ec;
  ec.max_batch = 2;
  ec.kv_slots = 2;
  // Room for ~6 tokens: every insert fights the budget, forcing eviction
  // churn while requests are in flight.
  ec.prefix_cache_bytes = 6 * (2 * 2 * static_cast<std::size_t>(
                                           c.n_layers * c.kv_heads() *
                                           c.head_dim()));
  serve::TraceSpec spec;
  spec.n_requests = 12;
  spec.vocab_size = c.vocab_size;
  spec.prompt_len_min = 4;
  spec.prompt_len_max = 10;
  spec.max_new_min = 1;
  spec.max_new_max = 4;
  spec.shared_prefix_fraction = 0.7;
  spec.shared_prefix_len = 5;

  serve::InferenceEngine engine(model, ec);
  auto trace = serve::synth_trace(spec);
  const auto reference = trace;
  const auto results = engine.run_trace(std::move(trace));
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    Rng rng(reference[i].sampling.seed);
    EXPECT_EQ(results[i].tokens,
              model.generate_cached(reference[i].prompt,
                                    reference[i].max_new_tokens,
                                    reference[i].sampling, rng))
        << "request " << i;
  }
  ASSERT_NE(engine.prefix_cache(), nullptr);
  EXPECT_GT(engine.prefix_cache()->stats().nodes_evicted, 0u);
  EXPECT_LE(engine.prefix_cache()->bytes_used(), ec.prefix_cache_bytes);
}

TEST(ServePrefixEngine, SpeculativeRequestsDecodeIdenticallyThroughTheCache) {
  const nn::GptConfig c = prefix_config();
  nn::GptModel model(c);
  serve::EngineConfig ec;
  ec.max_batch = 3;
  ec.kv_slots = 3;
  ec.prefix_cache_bytes = 1 << 20;
  ec.proposer = std::make_shared<serve::spec::LayerSkipDraft>(model, 1);

  auto reqs = shared_prefix_requests(/*greedy=*/true);
  for (auto& r : reqs) r.spec_k = 2;
  const auto reference = reqs;

  serve::InferenceEngine engine(model, ec);
  const auto results = engine.run_trace(std::move(reqs));
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    Rng rng(reference[i].sampling.seed);
    EXPECT_EQ(results[i].tokens,
              model.generate_cached(reference[i].prompt,
                                    reference[i].max_new_tokens,
                                    reference[i].sampling, rng))
        << "speculative request " << i;
  }
  EXPECT_EQ(engine.stats().prefix_hits(), 5u);
  // Draft slots never touch the prefix cache — every draft prefill is cold.
  ASSERT_NE(engine.draft_pool(), nullptr);
  EXPECT_EQ(engine.draft_pool()->available(), ec.kv_slots);
}

}  // namespace
}  // namespace matgpt
