// Unit tests for src/common: RNG determinism and distributions, streaming
// statistics, histograms, table rendering, and unit formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace matgpt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(std::uint64_t{10})];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma for a binomial(1e5, 0.1)
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), Error);
}

TEST(Rng, SignedUniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  std::vector<double> neg{1.0, -0.5};
  EXPECT_THROW(rng.categorical(neg), Error);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  Rng rng(29);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile({1.0}, 101), Error);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> yneg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, yneg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{5, 5, 5};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, MeanAbsoluteError) {
  EXPECT_DOUBLE_EQ(mean_absolute_error({1.0, 2.0}, {2.0, 0.0}), 1.5);
  EXPECT_THROW(mean_absolute_error({1.0}, {}), Error);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(-100.0);  // clamps into first bin
  h.add(999.0);   // clamps into last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double integral = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    integral += h.density()[i] * (h.bin_hi(i) - h.bin_lo(i));
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Log2Histogram, PowerOfTwoClasses) {
  Log2Histogram h;
  h.add(1.0);
  h.add(1.5);
  h.add(2.0);
  h.add(1024.0);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_DOUBLE_EQ(items[0].first, 1.0);
  EXPECT_DOUBLE_EQ(items[0].second, 2.0);
  EXPECT_DOUBLE_EQ(items[1].first, 2.0);
  EXPECT_DOUBLE_EQ(items[2].first, 1024.0);
}

TEST(Log2Histogram, RejectsNonPositive) {
  Log2Histogram h;
  EXPECT_THROW(h.add(0.0), Error);
  EXPECT_THROW(h.add(-1.0), Error);
}

TEST(Histogram, QuantilesInterpolateWithinBins) {
  Histogram h(0.0, 100.0, 100);
  for (int k = 1; k <= 100; ++k) h.add(k - 0.5);  // one sample per bin
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1e-9);
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_THROW(h.quantile(1.5), Error);
  Histogram empty(0.0, 1.0, 4);
  EXPECT_THROW(empty.quantile(0.5), Error);
}

TEST(Log2Histogram, QuantileInterpolatesGeometrically) {
  Log2Histogram h;
  for (int i = 0; i < 4; ++i) h.add(1.0);  // all land in [1, 2)
  EXPECT_NEAR(h.quantile(0.5), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(h.quantile(1.0), 2.0, 1e-12);
  h.add(64.0);  // tail sample: p99 must land in [64, 128)
  EXPECT_GE(h.quantile(0.99), 64.0);
  EXPECT_LT(h.quantile(0.99), 128.0);
  Log2Histogram empty;
  EXPECT_THROW(empty.quantile(0.5), Error);
}

TEST(Table, RendersAlignedRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_int(-42), "-42");
  EXPECT_EQ(TablePrinter::fmt_percent(0.1234), "12.3%");
}

TEST(Table, CsvEscaping) {
  const std::string csv =
      to_csv({"a", "b"}, {{"x,y", "has \"quote\""}, {"plain", "2"}});
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"has \"\"quote\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("plain,2"), std::string::npos);
}

TEST(Units, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(64.0 * kGiB), "64.00 GiB");
}

TEST(Units, Flops) {
  EXPECT_EQ(format_flops(82.0 * kTera), "82.00 TFLOPS");
  EXPECT_EQ(format_flops(18.5 * kPeta), "18.50 PFLOPS");
}

TEST(Units, Duration) {
  EXPECT_EQ(format_duration(4.1 * 3600), "4.10 h");
  EXPECT_EQ(format_duration(90), "1.50 min");
  EXPECT_EQ(format_duration(0.002), "2.00 ms");
}

TEST(Units, Energy) {
  EXPECT_EQ(format_energy(0.23 * 3.6e9), "0.23 MWh");
  EXPECT_EQ(format_energy(2.0 * 3.6e6), "2.00 kWh");
}

}  // namespace
}  // namespace matgpt
