// Tests for task generation and LM scoring: question well-formedness,
// ground-truth consistency with the materials KB, scoring mechanics, and the
// trained-beats-untrained property on in-domain tasks.

#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "eval/perplexity.h"
#include "eval/scorer.h"
#include "optim/optimizer.h"

namespace matgpt::eval {
namespace {

std::vector<data::Material> material_pool() {
  data::MaterialGenerator gen(31);
  return gen.sample_unique(60);
}

class TaskGeneration : public ::testing::TestWithParam<TaskId> {};

TEST_P(TaskGeneration, QuestionsAreWellFormed) {
  TaskGenerator gen(5, material_pool());
  const auto questions = gen.generate(GetParam(), 30);
  ASSERT_EQ(questions.size(), 30u);
  for (const auto& q : questions) {
    EXPECT_FALSE(q.prompt.empty());
    EXPECT_GE(q.choices.size(), 2u);
    EXPECT_LT(q.correct, q.choices.size());
    std::set<std::string> unique(q.choices.begin(), q.choices.end());
    EXPECT_EQ(unique.size(), q.choices.size()) << "duplicate choices";
    for (const auto& c : q.choices) {
      ASSERT_FALSE(c.empty());
      EXPECT_EQ(c.front(), ' ') << "choices must be continuations";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskGeneration,
                         ::testing::ValuesIn(all_tasks()),
                         [](const auto& info) {
                           std::string n = task_name(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(Tasks, NamesAndOrder) {
  const auto tasks = all_tasks();
  ASSERT_EQ(tasks.size(), 9u);
  EXPECT_STREQ(task_name(tasks.front()), "SciQ");
  EXPECT_STREQ(task_name(tasks.back()), "HT-CCS");
}

TEST(Tasks, ArcEasyAnswersMatchGroundTruth) {
  const auto pool = material_pool();
  TaskGenerator gen(5, pool);
  for (const auto& q : gen.generate(TaskId::kArcEasy, 20)) {
    // Prompt is "<formula> is a"; correct choice must be the true class.
    const std::string formula = q.prompt.substr(0, q.prompt.find(' '));
    const data::Material* m = nullptr;
    for (const auto& cand : pool) {
      if (cand.formula == formula) m = &cand;
    }
    ASSERT_NE(m, nullptr) << formula;
    EXPECT_EQ(q.choices[q.correct],
              std::string(" ") + data::gap_class_name(m->gap_class));
  }
}

TEST(Tasks, ArcChallengeComparisonIsCorrect) {
  const auto pool = material_pool();
  TaskGenerator gen(6, pool);
  auto gap_of = [&](const std::string& formula) {
    for (const auto& m : pool) {
      if (m.formula == formula) return m.band_gap_ev;
    }
    ADD_FAILURE() << "unknown formula " << formula;
    return 0.0;
  };
  for (const auto& q : gen.generate(TaskId::kArcChallenge, 15)) {
    const std::string winner = q.choices[q.correct].substr(1);
    const std::string loser = q.choices[1 - q.correct].substr(1);
    EXPECT_GE(gap_of(winner), gap_of(loser));
  }
}

struct TrainedFixture {
  std::shared_ptr<tok::BpeTokenizer> tokenizer;
  std::shared_ptr<nn::GptModel> model;
  std::vector<data::Material> pool;

  TrainedFixture() {
    data::MaterialGenerator mgen(41);
    pool = mgen.sample_unique(40);
    data::AbstractGenerator agen(42);
    std::vector<data::Document> docs;
    for (int rep = 0; rep < 6; ++rep) {
      for (const auto& m : pool) {
        docs.push_back({"X", agen.materials_abstract(m), false,
                        data::DocDomain::kMaterials});
      }
    }
    std::vector<std::string> texts;
    for (const auto& d : docs) texts.push_back(d.text);
    tokenizer = std::make_shared<tok::BpeTokenizer>(
        tok::BpeTokenizer::train(texts, tok::TokenizerKind::kHuggingFace,
                                 400));
    data::TokenDataset ds(docs, *tokenizer, 0.1, 7);
    nn::GptConfig c;
    c.vocab_size = tokenizer->vocab_size();
    c.hidden = 48;
    c.n_layers = 2;
    c.n_heads = 2;
    c.max_seq = 64;
    model = std::make_shared<nn::GptModel>(c);
    optim::Adam opt(model->parameters());
    for (int step = 0; step < 100; ++step) {
      auto batch = ds.sample_batch(8, 48);
      Tape tape;
      Var loss = model->loss(tape, batch.tokens, batch.targets, 8, 48);
      model->zero_grad();
      tape.backward(loss);
      opt.clip_grad_norm(1.0);
      opt.step(2e-3);
    }
  }
};

TrainedFixture& trained() {
  static TrainedFixture fixture;
  return fixture;
}

TEST(Scorer, ContinuationScoreIsALogProb) {
  auto& f = trained();
  LmEvaluator ev(*f.model, *f.tokenizer);
  const double s = ev.continuation_score("The band gap of", " X");
  EXPECT_LT(s, 0.0);  // log-probability
  EXPECT_TRUE(std::isfinite(s));
}

TEST(Scorer, PrefersLikelyContinuations) {
  auto& f = trained();
  LmEvaluator ev(*f.model, *f.tokenizer);
  // After training, "band gap" phrasing should beat random characters.
  const double likely = ev.continuation_score("The band", " gap");
  const double unlikely = ev.continuation_score("The band", " qqq");
  EXPECT_GT(likely, unlikely);
}

TEST(Scorer, TrainedModelBeatsChanceOnInDomainTasks) {
  auto& f = trained();
  LmEvaluator ev(*f.model, *f.tokenizer);
  TaskGenerator gen(5, f.pool);
  Rng rng(3);
  const auto questions = gen.generate(TaskId::kArcEasy, 30);
  const auto r = ev.evaluate(questions, 0, rng);
  EXPECT_EQ(r.n, 30u);
  EXPECT_GT(r.accuracy, 0.45) << "3 choices => chance 0.33";
  EXPECT_GT(r.stderr_, 0.0);
}

TEST(Scorer, TrainingImprovesOverUntrainedModel) {
  // An untrained model may still beat raw chance through choice-string
  // biases (and class imbalance in the pool), so the meaningful property is
  // relative: pre-training must not hurt, and SciQ numeric recall — which
  // no prior can fake — must stay near chance untrained.
  auto& f = trained();
  nn::GptConfig c = f.model->config();
  c.seed = 999;
  nn::GptModel fresh(c);
  LmEvaluator ev_fresh(fresh, *f.tokenizer);
  LmEvaluator ev_trained(*f.model, *f.tokenizer);
  TaskGenerator gen(5, f.pool);
  Rng r1(3), r2(3);
  const auto sciq = gen.generate(TaskId::kSciQ, 30);
  const auto fresh_sciq = ev_fresh.evaluate(sciq, 0, r1);
  const auto trained_sciq = ev_trained.evaluate(sciq, 0, r2);
  EXPECT_LT(fresh_sciq.accuracy, 0.55);  // 4 choices, chance 0.25
  EXPECT_GE(trained_sciq.accuracy, fresh_sciq.accuracy);
}

TEST(Scorer, FewShotUsesHeldOutExamples) {
  auto& f = trained();
  LmEvaluator ev(*f.model, *f.tokenizer);
  TaskGenerator gen(5, f.pool);
  Rng rng(3);
  const auto questions = gen.generate(TaskId::kArcEasy, 20);
  const auto r3 = ev.evaluate(questions, 3, rng);
  EXPECT_EQ(r3.n, 17u);  // 3 examples held out of scoring
  const auto r0 = ev.evaluate(questions, 0, rng);
  EXPECT_EQ(r0.n, 20u);
}

TEST(Perplexity, TrainedModelBeatsUniformAndUntrained) {
  auto& f = trained();
  // Rebuild the dataset the fixture trained on.
  data::MaterialGenerator mgen(41);
  data::AbstractGenerator agen(42);
  std::vector<data::Document> docs;
  for (int rep = 0; rep < 6; ++rep) {
    for (const auto& m : mgen.sample_unique(40)) {
      docs.push_back({"X", agen.materials_abstract(m), false,
                      data::DocDomain::kMaterials});
    }
  }
  data::TokenDataset ds(docs, *f.tokenizer, 0.1, 7);
  const auto trained_ppl = validation_perplexity(*f.model, ds, 32, 4);
  EXPECT_GT(trained_ppl.tokens, 0);
  // Uniform model perplexity == vocab size; trained must be far below.
  EXPECT_LT(trained_ppl.perplexity,
            static_cast<double>(f.tokenizer->vocab_size()) / 4.0);
  nn::GptConfig c = f.model->config();
  c.seed = 31337;
  nn::GptModel fresh(c);
  const auto fresh_ppl = validation_perplexity(fresh, ds, 32, 4);
  EXPECT_LT(trained_ppl.perplexity, fresh_ppl.perplexity);
  EXPECT_NEAR(std::log(trained_ppl.perplexity), trained_ppl.mean_nll, 1e-9);
}

TEST(Scorer, ValidatesInputs) {
  auto& f = trained();
  LmEvaluator ev(*f.model, *f.tokenizer);
  Rng rng(1);
  std::vector<McQuestion> none;
  EXPECT_THROW(ev.evaluate(none, 0, rng), Error);
  TaskGenerator gen(5, f.pool);
  auto qs = gen.generate(TaskId::kArcEasy, 3);
  EXPECT_THROW(ev.evaluate(qs, 3, rng), Error);  // no questions left
}

}  // namespace
}  // namespace matgpt::eval
