#pragma once
// Finite-difference gradient checking harness for autograd ops.
//
// Usage: build the op under test inside `fn`, returning a scalar Var; the
// checker compares analytic grads of every listed leaf against central
// differences.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/autograd.h"

namespace matgpt::testing {

/// Compare analytic vs. numeric gradients of `fn` w.r.t. each leaf.
/// `fn` must be a pure function of the leaf values (re-invocable).
inline void check_gradients(
    std::vector<Var>& leaves,
    const std::function<Var(Tape&)>& fn, float eps = 1e-3f,
    float rtol = 2e-2f, float atol = 2e-3f) {
  // Analytic pass.
  Tape tape;
  Var loss = fn(tape);
  tape.backward(loss);

  for (std::size_t li = 0; li < leaves.size(); ++li) {
    Var& leaf = leaves[li];
    ASSERT_TRUE(leaf.requires_grad()) << "leaf " << li;
    const Tensor analytic = leaf.grad().defined()
                                ? leaf.grad().clone()
                                : Tensor::zeros(leaf.value().shape());
    for (std::int64_t i = 0; i < leaf.value().numel(); ++i) {
      const float original = leaf.value()[i];
      leaf.value()[i] = original + eps;
      Tape tp;
      const float up = fn(tp).item();
      leaf.value()[i] = original - eps;
      Tape tm;
      const float down = fn(tm).item();
      leaf.value()[i] = original;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic[i];
      const float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "leaf " << li << " element " << i;
    }
  }
}

}  // namespace matgpt::testing
