// matgpt_cli: a command-line front end to the library, the shape of tool an
// open-source release of the paper's system would ship.
//
//   matgpt_cli corpus  [scale]                 synthesize + screen a corpus
//   matgpt_cli train   <neox|llama> [steps] [dir]   pre-train + checkpoint
//   matgpt_cli generate <dir> [--temp T] [--top-k K] [--top-p P] [--seed S]
//       <prompt...>                            sample from a checkpoint
//   matgpt_cli simulate <1.7b|6.7b> <gcds> <dp|zero1|tp2|pp2>
//   matgpt_cli search  <min_B> <max_B>         architecture search
//   matgpt_cli serve-bench [requests] [clients] [--spec-k N] [--draft-layers M]
//       [--prefix-cache-mb B] [--scheduler fcfs|priority] [--prefill-chunk C]
//       [--priority-mix H:L] [--deadline-ms D]
//       continuous-batching demo; --spec-k enables speculative decoding with
//       a self-speculative layer-skip draft of M layers; --prefix-cache-mb
//       gives the prompt prefix cache a budget of B MB and switches the trace
//       to a shared-system-prompt workload; --scheduler picks the admission
//       policy, --prefill-chunk caps prefill slices at C tokens,
//       --priority-mix tags fractions H/L of requests high/low priority, and
//       --deadline-ms gives high-priority requests a D-ms SLO deadline;
//       --tp N shards the model across N rank threads (byte-identical
//       output; the serving model's 2 kv heads cap it at 2);
//       --host-tier-mb/--disk-tier-mb/--spill-dir budget the tiered KV
//       store (parked sessions + preemption survival; 0 = unbounded host,
//       disk disabled);
//       --gemm-tune turns on the per-shape GEMM autotuner (byte-neutral),
//       --decode-quant int8|bf16|off runs decode/verify forwards on
//       weight-quantized kernels (prefill stays fp32), and
//       --tune-cache FILE persists the tuner's shape cache as JSON;
//       --embed-fraction/--constrained-fraction mix embedding and
//       JSON-grammar-constrained requests into the trace (--embed-batch
//       caps sequences per embedding forward; --map-classes maps
//       constrained -> high / embed -> low priority, needs --scheduler
//       priority);
//       --json prints the run's ServerStats as one JSON document instead of
//       the human-readable report
//   matgpt_cli serve-http [--port P] [--tp N] [--host-tier-mb B]
//       [--disk-tier-mb B] [--spill-dir DIR] [--embed] [--grammar]
//       [--gemm-tune] [--decode-quant F] [--tune-cache FILE]
//       start the epoll HTTP front end (POST /v1/generate streams tokens as
//       chunked transfer encoding, DELETE /v1/requests/{id} cancels,
//       POST /v1/sessions + /v1/sessions/{id}/generate run multi-turn
//       conversations over the tiered KV store, GET /v1/stats reports)
//       over a random-init serving-shaped model; --embed serves batched
//       vectors on POST /v1/embeddings through a random-init BERT encoder,
//       --grammar registers a compiled JSON-subset grammar named "json"
//       for constrained /v1/generate requests; runs until SIGINT/SIGTERM,
//       then drains gracefully
//   matgpt_cli load-gen --port P [--requests N] [--rate R] [--concurrency C]
//       [--seed S] [--slo-ms M]
//       socket-level load harness against a running serve-http: open-loop
//       Poisson arrivals at R req/s (deterministic per seed), or closed-loop
//       at fixed concurrency when --rate is omitted; prints a JSON report
//       with goodput-under-SLO, p99 TTFT, and shed rate
//
// Checkpoints written by `train` (model.ckpt + tokenizer.txt) are reloaded
// by `generate`.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "core/study.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "nn/bert.h"
#include "nn/serialize.h"
#include "parallel/thread_pool.h"
#include "serve/engine.h"
#include "serve/trace.h"
#include "serve/workloads/grammar.h"
#include "simfrontier/archsearch.h"

using namespace matgpt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  matgpt_cli corpus [scale]\n"
               "  matgpt_cli train <neox|llama> [steps] [dir]\n"
               "  matgpt_cli generate <dir> [--temp T] [--top-k K]"
               " [--top-p P] [--seed S] <prompt...>\n"
               "  matgpt_cli simulate <1.7b|6.7b> <gcds> <dp|zero1|tp2|pp2>\n"
               "  matgpt_cli search <min_params_B> <max_params_B>\n"
               "  matgpt_cli serve-bench [requests] [clients]"
               " [--spec-k N] [--draft-layers M] [--prefix-cache-mb B]\n"
               "      [--scheduler fcfs|priority] [--prefill-chunk C]"
               " [--priority-mix H:L] [--deadline-ms D] [--tp N]\n"
               "      [--host-tier-mb B] [--disk-tier-mb B]"
               " [--spill-dir DIR]\n"
               "      [--embed-fraction F] [--constrained-fraction F]"
               " [--embed-batch N] [--map-classes]\n"
               "      [--gemm-tune] [--decode-quant int8|bf16|off]"
               " [--tune-cache FILE] [--json]\n"
               "  matgpt_cli serve-http [--port P] [--tp N]"
               " [--host-tier-mb B] [--disk-tier-mb B] [--spill-dir DIR]\n"
               "      [--embed] [--grammar] [--gemm-tune]"
               " [--decode-quant int8|bf16|off] [--tune-cache FILE]\n"
               "  matgpt_cli load-gen --port P [--requests N] [--rate R]"
               " [--concurrency C] [--seed S] [--slo-ms M]\n");
  return 2;
}

core::StudyConfig cli_study_config() {
  core::StudyConfig sc;
  sc.corpus_scale = 8e-6;
  sc.n_materials = 150;
  sc.seq = 48;
  sc.steps = 200;
  return sc;
}

int cmd_corpus(double scale) {
  core::StudyConfig sc = cli_study_config();
  if (scale > 0) sc.corpus_scale = scale;
  core::ComparativeStudy study(sc);
  study.prepare_corpus();
  std::printf("screened documents: %zu\n", study.screened_corpus().size());
  std::printf("materials in pool:  %zu\n", study.materials().size());
  std::printf("screen precision %.3f recall %.3f\n",
              study.screen_quality().precision,
              study.screen_quality().recall);
  std::printf("sample document:\n  %s\n",
              study.screened_corpus().front().text.c_str());
  return 0;
}

int cmd_train(const std::string& arch, std::int64_t steps,
              const std::string& dir) {
  core::StudyConfig sc = cli_study_config();
  if (steps > 0) sc.steps = steps;
  core::ComparativeStudy study(sc);
  core::ExperimentSpec spec;
  spec.label = "cli-" + arch;
  spec.arch = arch == "neox" ? nn::ArchFamily::kNeoX : nn::ArchFamily::kLLaMA;
  const auto result = study.run_experiment(spec);
  std::printf("trained %s: %lld params, final val loss %.3f\n",
              spec.label.c_str(),
              static_cast<long long>(result.model->param_count()),
              result.curve.final_val_loss());
  std::filesystem::create_directories(dir);
  nn::save_parameters_file(*result.model, dir + "/model.ckpt");
  std::ofstream tk(dir + "/tokenizer.txt");
  tk << result.tokenizer->save();
  // Record the architecture so `generate` can rebuild the config.
  std::ofstream meta(dir + "/config.txt");
  meta << (spec.arch == nn::ArchFamily::kNeoX ? "neox" : "llama") << " "
       << result.model->config().vocab_size << " " << sc.seq << "\n";
  std::printf("checkpoint written to %s/\n", dir.c_str());
  return 0;
}

int cmd_generate(const std::string& dir, const std::string& prompt,
                 const nn::SamplingParams& sampling) {
  std::ifstream meta(dir + "/config.txt");
  MGPT_CHECK(meta.is_open(), "missing " << dir << "/config.txt — run train");
  std::string arch;
  std::int64_t vocab = 0, seq = 0;
  meta >> arch >> vocab >> seq;
  std::ifstream tks(dir + "/tokenizer.txt");
  std::stringstream tk_text;
  tk_text << tks.rdbuf();
  const auto tokenizer = tok::BpeTokenizer::load(tk_text.str());

  core::ExperimentSpec spec;
  spec.arch = arch == "neox" ? nn::ArchFamily::kNeoX : nn::ArchFamily::kLLaMA;
  nn::GptConfig mc = core::scaled_model_config(spec, seq);
  mc.vocab_size = vocab;
  nn::GptModel model(mc);
  nn::load_parameters_file(model, dir + "/model.ckpt");

  sampling.validate();
  Rng rng = sampling.make_rng();
  const auto ids = tokenizer.encode(prompt);
  MGPT_CHECK(!ids.empty(), "prompt tokenized to nothing");
  const auto out = model.generate_cached(ids, 24, sampling, rng);
  std::printf("%s\n", tokenizer.decode(out).c_str());
  return 0;
}

int cmd_simulate(const std::string& size, int gcds,
                 const std::string& strategy) {
  sim::TrainingSimulator simulator((sim::Platform()));
  const auto model = size == "6.7b"
                         ? sim::ModelDesc::matgpt_6_7b(sim::ArchFamily::kNeoX)
                         : sim::ModelDesc::matgpt_1_7b(sim::ArchFamily::kNeoX);
  sim::ParallelConfig cfg{gcds, 1, 1, 0};
  if (strategy == "zero1") {
    cfg.zero_stage = 1;
  } else if (strategy == "tp2") {
    cfg = {gcds / 2, 2, 1, 0};
  } else if (strategy == "pp2") {
    cfg = {gcds / 2, 1, 2, 0};
  } else if (strategy != "dp") {
    return usage();
  }
  const auto p = simulator.simulate_step(
      model, cfg, size == "6.7b" ? 8192 : 16384, 2048,
      sim::AttentionImpl::kFlashV2);
  std::printf("%s, %d GCDs, %s\n", model.name().c_str(), gcds,
              cfg.describe().c_str());
  std::printf("  step time:     %s\n", format_duration(p.total_s()).c_str());
  std::printf("  throughput:    %.1f TFLOPS/GCD (%.2f PFLOPS aggregate)\n",
              p.per_gcd_tflops, p.aggregate_pflops);
  std::printf("  compute/comm/io: %.0f%% / %.0f%% / %.0f%%\n",
              100 * p.compute_fraction(), 100 * p.comm_fraction(),
              100 * p.io_fraction());
  std::printf("  memory:        %s of 64 GB (%s)\n",
              format_bytes(p.memory.total()).c_str(),
              p.fits_memory ? "fits" : "OOM");
  return 0;
}

int cmd_search(double min_b, double max_b) {
  sim::ArchitectureSearch search((sim::Platform()));
  sim::SearchConstraints constraints;
  constraints.min_params = static_cast<std::int64_t>(min_b * 1e9);
  constraints.max_params = static_cast<std::int64_t>(max_b * 1e9);
  std::vector<std::int64_t> hiddens;
  for (std::int64_t h = 1536; h <= 6144; h += 128) hiddens.push_back(h);
  const auto cands = search.search(
      sim::ArchFamily::kLLaMA, 52000, {16, 20, 24, 28, 32, 40}, hiddens,
      constraints, 16, 2048);
  const auto& best = sim::ArchitectureSearch::best(cands);
  std::printf("%zu feasible candidates in [%.1fB, %.1fB]\n", cands.size(),
              min_b, max_b);
  std::printf("best: %lld layers x hidden %lld (head dim %lld), "
              "%.1f TFLOPS/GCD base, flash v2 %.1f\n",
              static_cast<long long>(best.model.n_layers),
              static_cast<long long>(best.model.hidden),
              static_cast<long long>(best.head_dim()), best.tflops_base,
              best.tflops_flash_v2);
  return 0;
}

/// The CLI's GEMM knobs, shared by serve-bench and serve-http.
struct GemmOpts {
  bool autotune = false;
  kernels::WeightFormat decode_quant = kernels::WeightFormat::kF32;
  std::string tune_cache;
};

/// --decode-quant spellings; returns false on an unknown format name.
bool parse_decode_quant(const std::string& name,
                        kernels::WeightFormat* format) {
  if (name == "int8") {
    *format = kernels::WeightFormat::kInt8;
  } else if (name == "bf16") {
    *format = kernels::WeightFormat::kBf16;
  } else if (name == "off" || name == "f32") {
    *format = kernels::WeightFormat::kF32;
  } else {
    return false;
  }
  return true;
}

void apply_gemm_opts(serve::EngineConfig& ec, const GemmOpts& opts) {
  ec.gemm_autotune = opts.autotune;
  ec.decode_quant = opts.decode_quant;
  ec.tune_cache_path = opts.tune_cache;
}

void print_gemm_banner(const GemmOpts& opts) {
  if (!opts.autotune && opts.decode_quant == kernels::WeightFormat::kF32) {
    return;
  }
  std::printf("gemm: autotune %s, decode quant %s%s%s\n",
              opts.autotune ? "on" : "off",
              kernels::format_name(opts.decode_quant),
              opts.tune_cache.empty() ? "" : ", tune cache ",
              opts.tune_cache.c_str());
}

// Continuous-batching serving demo: client threads (a dedicated ThreadPool)
// replay a synthetic trace through the engine's bounded admission queue while
// this thread drives the scheduler loop — the deployment shape, minus the
// network. The model is random-init (the point is the engine, not the prose);
// GQA and a serving-sized vocab keep it honest about where decode time goes.
struct ServeBenchOpts {
  std::size_t n_requests = 32;
  std::size_t n_clients = 4;
  std::int64_t spec_k = 0;
  std::int64_t draft_layers = 2;
  std::int64_t prefix_cache_mb = 0;
  serve::sched::Policy scheduler = serve::sched::Policy::kFcfs;
  std::int64_t prefill_chunk = 0;
  double high_fraction = 0.0;
  double low_fraction = 0.0;
  double deadline_ms = 0.0;
  std::int64_t tp = 1;
  std::int64_t host_tier_mb = 0;  // 0 = unbounded host tier
  std::int64_t disk_tier_mb = 0;  // 0 = disk tier disabled
  std::string spill_dir = "matgpt_spill";
  double embed_fraction = 0.0;        // fraction of trace -> embed requests
  double constrained_fraction = 0.0;  // fraction -> JSON-constrained decode
  std::int64_t embed_batch = 8;       // max sequences per embed forward
  bool map_classes = false;           // workload class -> sched priority
  GemmOpts gemm;
  bool json = false;
};

/// Map the CLI's --host-tier-mb/--disk-tier-mb/--spill-dir knobs onto the
/// engine's tiered-KV sub-config (spill_dir only matters once the disk
/// tier is enabled).
void apply_tier_opts(serve::EngineConfig& ec, std::int64_t host_tier_mb,
                     std::int64_t disk_tier_mb, const std::string& spill_dir) {
  ec.kv_tier.host_tier_bytes =
      static_cast<std::size_t>(host_tier_mb) * 1000 * 1000;
  ec.kv_tier.disk_tier_bytes =
      static_cast<std::size_t>(disk_tier_mb) * 1000 * 1000;
  if (disk_tier_mb > 0) ec.kv_tier.spill_dir = spill_dir;
}

/// Serving-shaped BERT encoder backing the embedding request class
/// (serve-bench --embed-fraction, serve-http --embed). Random-init, like
/// the decoder: the point is the engine's prefill-only path, not the
/// vectors themselves.
nn::BertConfig serving_bert_config() {
  nn::BertConfig bc;
  bc.vocab_size = 8192;
  bc.hidden = 256;
  bc.n_layers = 2;
  bc.n_heads = 8;
  bc.max_seq = 64;
  return bc;
}

/// JSON-subset grammar compiled over a synthetic fragment vocab that
/// mirrors the serving model's 8192 tokens (ids 0-4 stay empty like the
/// tokenizer specials; 3 = EOS). The multi-character fragments ("{\"",
/// "\":", "true", ...) make tokens span grammar states, which is the case
/// the token-level DFA exists for.
std::shared_ptr<const serve::workloads::TokenDfa> serving_json_grammar() {
  static const char* kPool[] = {
      "{",  "}",  "[",  "]",  ":",  ",",  "\"", " ",  "0",  "1",  "2",
      "3",  "4",  "5",  "6",  "7",  "8",  "9",  "a",  "b",  "c",  "d",
      "e",  "f",  "x",  "y",  "z",  "{\"", "\":", ",\"", "\"}", "\",",
      "true", "false", "null", "-",  ".",  "e+", "{}", "[]", "1}", "0]",
      "\"a\":", "\"b\":", ": [", ", ", "]}", "}}",
  };
  constexpr std::size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);
  std::vector<std::string> bytes(8192);
  for (std::size_t id = 5; id < bytes.size(); ++id) {
    bytes[id] = kPool[(id - 5) % kPoolSize];
  }
  serve::workloads::GrammarSpec gspec;
  return std::make_shared<const serve::workloads::TokenDfa>(
      serve::workloads::TokenDfa::compile(gspec, bytes, /*eos_id=*/3));
}

/// The serving-shaped model every serving subcommand uses: random-init
/// (the point is the engine, not the prose), GQA, serving-sized vocab.
nn::GptConfig serving_model_config() {
  nn::GptConfig mc;
  mc.arch = nn::ArchFamily::kLLaMA;
  mc.vocab_size = 8192;
  mc.hidden = 256;
  mc.n_layers = 4;
  mc.n_heads = 8;
  mc.n_kv_heads = 2;
  mc.max_seq = 128;
  return mc;
}

int cmd_serve_bench(const ServeBenchOpts& opts) {
  const std::size_t n_requests = opts.n_requests;
  const std::size_t n_clients = opts.n_clients;
  const std::int64_t spec_k = opts.spec_k;
  const std::int64_t draft_layers = opts.draft_layers;
  const std::int64_t prefix_cache_mb = opts.prefix_cache_mb;
  const nn::GptConfig mc = serving_model_config();
  nn::GptModel model(mc);

  serve::TraceSpec spec;
  spec.n_requests = n_requests;
  spec.vocab_size = mc.vocab_size;
  if (prefix_cache_mb > 0) {
    // Shared-system-prompt workload: most requests open with the same span,
    // the shape prefix caching exists for.
    spec.shared_prefix_fraction = 0.8;
    spec.shared_prefix_len = 12;
  }
  spec.high_fraction = opts.high_fraction;
  spec.low_fraction = opts.low_fraction;
  spec.high_deadline_ms = opts.deadline_ms;
  const nn::BertConfig bert_config = serving_bert_config();
  spec.embed_fraction = opts.embed_fraction;
  spec.constrained_fraction = opts.constrained_fraction;
  if (opts.constrained_fraction > 0.0) {
    spec.constrained_grammar = serving_json_grammar();
  }
  if (opts.embed_fraction > 0.0) {
    spec.embed_vocab_size = bert_config.vocab_size;
    spec.embed_len_max = bert_config.max_seq;
  }
  auto trace = serve::synth_trace(spec);
  if (spec_k > 0) {
    for (auto& req : trace) req.spec_k = spec_k;
  }

  serve::EngineConfig ec;
  ec.max_batch = 8;
  ec.kv_slots = 8;
  ec.queue_capacity = 16;  // small enough that clients feel backpressure
  ec.prefix_cache_bytes =
      static_cast<std::size_t>(prefix_cache_mb) * 1000 * 1000;
  ec.scheduler = opts.scheduler;
  ec.prefill_chunk_tokens = opts.prefill_chunk;
  // The serving model has 2 kv heads, so --tp beyond 2 fails the shard
  // divisibility check in TpModel's constructor with a precise message.
  ec.tensor_parallel = opts.tp;
  apply_tier_opts(ec, opts.host_tier_mb, opts.disk_tier_mb, opts.spill_dir);
  apply_gemm_opts(ec, opts.gemm);
  ec.workloads.grammar = opts.constrained_fraction > 0.0;
  if (opts.embed_fraction > 0.0) {
    ec.workloads.embedder = std::make_shared<const nn::BertEncoder>(
        bert_config);
  }
  ec.workloads.max_embed_batch = opts.embed_batch;
  ec.workloads.map_classes = opts.map_classes;
  if (spec_k > 0) {
    MGPT_CHECK(draft_layers >= 1 && draft_layers <= mc.n_layers,
               "--draft-layers must be in [1, " << mc.n_layers << "]");
    ec.proposer =
        std::make_shared<serve::spec::LayerSkipDraft>(model, draft_layers);
  }
  serve::InferenceEngine engine(model, ec);

  if (!opts.json) {
    std::printf("serve-bench: %zu requests, %zu client threads, batch %lld, "
                "queue %zu\n",
                trace.size(), n_clients,
                static_cast<long long>(ec.max_batch), ec.queue_capacity);
    std::printf("scheduler: %s, prefill chunk %lld tokens%s\n",
                serve::sched::policy_name(ec.scheduler),
                static_cast<long long>(ec.prefill_chunk_tokens),
                ec.prefill_chunk_tokens == 0 ? " (whole-prompt)" : "");
    if (opts.tp > 1) {
      std::printf("tensor parallel: %lld ranks (%s layout)\n",
                  static_cast<long long>(opts.tp),
                  serve::tp::layout_name(ec.tp_layout));
    }
    if (opts.high_fraction + opts.low_fraction > 0.0) {
      std::printf("priority mix: %.0f%% high / %.0f%% normal / %.0f%% low, "
                  "high-class deadline %.0f ms\n",
                  100.0 * opts.high_fraction,
                  100.0 * (1.0 - opts.high_fraction - opts.low_fraction),
                  100.0 * opts.low_fraction, opts.deadline_ms);
    }
    if (spec_k > 0) {
      std::printf("speculative decoding: k=%lld, layer-skip draft %lld/%lld "
                  "layers\n",
                  static_cast<long long>(spec_k),
                  static_cast<long long>(draft_layers),
                  static_cast<long long>(mc.n_layers));
    }
    if (prefix_cache_mb > 0) {
      std::printf("prefix cache: %lld MB budget, %.0f%% of prompts share a "
                  "%lld-token prefix\n",
                  static_cast<long long>(prefix_cache_mb),
                  100.0 * spec.shared_prefix_fraction,
                  static_cast<long long>(spec.shared_prefix_len));
    }
    if (opts.embed_fraction + opts.constrained_fraction > 0.0) {
      std::printf("workload mix: %.0f%% embed (batch %lld) / %.0f%% "
                  "JSON-constrained / rest plain, class mapping %s\n",
                  100.0 * opts.embed_fraction,
                  static_cast<long long>(opts.embed_batch),
                  100.0 * opts.constrained_fraction,
                  opts.map_classes ? "on" : "off");
    }
    print_gemm_banner(opts.gemm);
  }

  std::vector<std::future<serve::RequestResult>> futures(trace.size());
  std::atomic<std::size_t> clients_done{0};
  ThreadPool clients(n_clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<void>> client_futures;
  for (std::size_t cidx = 0; cidx < n_clients; ++cidx) {
    client_futures.push_back(clients.submit([&, cidx] {
      // Client cidx owns every n_clients-th request; submit() blocks while
      // the admission queue is full, so a slow scheduler throttles clients
      // instead of dropping work.
      for (std::size_t i = cidx; i < trace.size(); i += n_clients) {
        futures[i] = engine.submit(trace[i]);
      }
      clients_done.fetch_add(1);
    }));
  }
  while (clients_done.load() < n_clients || engine.queue_depth() > 0 ||
         engine.active_count() > 0) {
    if (engine.step() == 0) std::this_thread::yield();
  }
  for (auto& f : client_futures) f.get();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t tokens = 0;
  for (auto& f : futures) tokens += f.get().tokens.size();
  if (opts.json) {
    // One JSON document on stdout, nothing else: pipe-friendly
    // (`matgpt_cli serve-bench --json | python3 -m json.tool`).
    std::printf("%s\n", engine.stats().to_json(wall).c_str());
    return 0;
  }
  std::printf("\n%s", engine.stats().report(wall).c_str());
  if (engine.kv_pool().paged()) {
    std::printf("\nwall time %.3f s, paged kv pool: %lld blocks x %lld "
                "tokens (%.1f MB reserved)\n",
                wall, static_cast<long long>(engine.kv_pool().total_blocks()),
                static_cast<long long>(engine.kv_pool().block_tokens()),
                static_cast<double>(engine.kv_pool().reserved_bytes()) / 1e6);
  } else {
    std::printf("\nwall time %.3f s, kv pool high-water <= %zu slots "
                "(%.1f MB reserved)\n",
                wall, engine.kv_pool().slot_count(),
                static_cast<double>(engine.kv_pool().reserved_bytes()) / 1e6);
  }
  if (const serve::PrefixCache* pc = engine.prefix_cache()) {
    std::printf("prefix cache residency: %.2f/%.2f MB, %lld tokens in %zu "
                "nodes (%llu evicted)\n",
                static_cast<double>(pc->bytes_used()) / 1e6,
                static_cast<double>(pc->byte_budget()) / 1e6,
                static_cast<long long>(pc->cached_tokens()), pc->node_count(),
                static_cast<unsigned long long>(pc->stats().nodes_evicted));
  }
  return 0;
}

// SIGINT/SIGTERM latch for serve-http: handlers may only touch
// sig_atomic_t, so the run loop polls this and does the real teardown.
volatile std::sig_atomic_t g_stop_requested = 0;

int cmd_serve_http(std::uint16_t port, std::int64_t tp,
                   std::int64_t host_tier_mb, std::int64_t disk_tier_mb,
                   const std::string& spill_dir, bool embed, bool grammar,
                   const GemmOpts& gemm) {
  const nn::GptConfig mc = serving_model_config();
  nn::GptModel model(mc);

  serve::EngineConfig ec;
  ec.max_batch = 8;
  ec.kv_slots = 8;
  ec.queue_capacity = 16;
  ec.tensor_parallel = tp;
  apply_tier_opts(ec, host_tier_mb, disk_tier_mb, spill_dir);
  apply_gemm_opts(ec, gemm);
  ec.workloads.grammar = grammar;
  if (embed) {
    ec.workloads.embedder =
        std::make_shared<const nn::BertEncoder>(serving_bert_config());
  }
  serve::InferenceEngine engine(model, ec);
  engine.start();

  net::HttpServerConfig sc;
  sc.port = port;
  if (grammar) sc.grammars["json"] = serving_json_grammar();
  net::HttpServer server(engine, sc);
  server.start();

  std::printf("serving on http://127.0.0.1:%u (random-init %s model, "
              "vocab %lld, max_seq %lld)\n",
              server.port(), "llama",
              static_cast<long long>(mc.vocab_size),
              static_cast<long long>(mc.max_seq));
  if (tp > 1) {
    std::printf("tensor parallel: %lld ranks (%s layout); /v1/stats reports "
                "tp_degree and per-step collective time\n",
                static_cast<long long>(tp),
                serve::tp::layout_name(ec.tp_layout));
  }
  std::printf("  curl -N -d '{\"id\":1,\"prompt\":[1,2,3],"
              "\"max_new_tokens\":16}' http://127.0.0.1:%u/v1/generate\n",
              server.port());
  std::printf("  curl -X DELETE http://127.0.0.1:%u/v1/requests/1\n",
              server.port());
  std::printf("  curl -X POST http://127.0.0.1:%u/v1/sessions\n",
              server.port());
  std::printf("  curl -d '{\"id\":2,\"prompt\":[1,2,3],"
              "\"max_new_tokens\":16,\"stream\":false}' "
              "http://127.0.0.1:%u/v1/sessions/1/generate\n",
              server.port());
  if (embed) {
    std::printf("  curl -d '{\"inputs\":[[1,2,3],[4,5]],\"reduce\":\"mean\"}'"
                " http://127.0.0.1:%u/v1/embeddings\n",
                server.port());
  }
  if (grammar) {
    std::printf("  curl -N -d '{\"id\":3,\"prompt\":[1],"
                "\"max_new_tokens\":24,\"grammar\":\"json\"}' "
                "http://127.0.0.1:%u/v1/generate\n",
                server.port());
  }
  std::printf("  curl http://127.0.0.1:%u/v1/stats\n", server.port());
  if (disk_tier_mb > 0) {
    std::printf("tiered KV: host %lld MB, disk %lld MB (spill dir %s)\n",
                static_cast<long long>(host_tier_mb),
                static_cast<long long>(disk_tier_mb), spill_dir.c_str());
  }
  print_gemm_banner(gemm);
  std::printf("Ctrl-C to drain and exit.\n");

  struct sigaction sa = {};
  sa.sa_handler = [](int) { g_stop_requested = 1; };
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("\ndraining...\n");
  server.stop();    // stop accepting, cancel live streams, flush, join
  engine.drain();   // finish queued work, join the scheduler thread
  const auto& c = server.counters();
  std::printf("served %llu requests (%llu streams completed, %llu shed, "
              "%llu client aborts)\n",
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.streams_completed),
              static_cast<unsigned long long>(c.shed_429),
              static_cast<unsigned long long>(c.client_aborts));
  return 0;
}

struct LoadGenOpts {
  std::uint16_t port = 0;
  std::size_t n_requests = 64;
  double rate_rps = 0.0;  // 0 = closed-loop
  std::size_t concurrency = 4;
  std::uint64_t seed = 42;
  double slo_ms = 500.0;
};

int cmd_load_gen(const LoadGenOpts& opts) {
  // The synthetic workload mirrors the serving-shaped model the server
  // runs: prompts and generation lengths that fit max_seq 128.
  serve::TraceSpec spec;
  spec.n_requests = opts.n_requests;
  spec.vocab_size = serving_model_config().vocab_size;
  spec.prompt_len_min = 16;
  spec.prompt_len_max = 48;
  spec.max_new_min = 8;
  spec.max_new_max = 24;
  spec.seed = opts.seed;
  const auto trace = serve::synth_trace(spec);

  net::LoadGenConfig cfg;
  cfg.port = opts.port;
  cfg.concurrency = opts.concurrency;
  net::LoadGen gen(cfg);

  net::LoadReport report;
  if (opts.rate_rps > 0.0) {
    std::fprintf(stderr,
                 "open-loop: %zu requests, Poisson %.1f req/s, seed %llu\n",
                 trace.size(), opts.rate_rps,
                 static_cast<unsigned long long>(opts.seed));
    report = gen.run_open(
        trace, net::poisson_schedule(trace.size(), opts.rate_rps, opts.seed));
  } else {
    std::fprintf(stderr, "closed-loop: %zu requests, concurrency %zu\n",
                 trace.size(), cfg.concurrency);
    report = gen.run_closed(trace);
  }
  // Report JSON on stdout, run banner on stderr: `load-gen ... | jq` works.
  std::printf("%s\n", report.to_json(opts.slo_ms).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "corpus") {
      return cmd_corpus(argc > 2 ? std::atof(argv[2]) : 0.0);
    }
    if (cmd == "train" && argc >= 3) {
      return cmd_train(argv[2], argc > 3 ? std::atoll(argv[3]) : 0,
                       argc > 4 ? argv[4] : "matgpt_checkpoint");
    }
    if (cmd == "generate" && argc >= 4) {
      nn::SamplingParams sampling;
      sampling.temperature = 0.7f;
      sampling.seed = 0xC11;
      std::string prompt;
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--temp" && i + 1 < argc) {
          sampling.temperature = static_cast<float>(std::atof(argv[++i]));
        } else if (arg == "--top-k" && i + 1 < argc) {
          sampling.top_k = std::atoi(argv[++i]);
        } else if (arg == "--top-p" && i + 1 < argc) {
          sampling.top_p = static_cast<float>(std::atof(argv[++i]));
        } else if (arg == "--seed" && i + 1 < argc) {
          sampling.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else {
          if (!prompt.empty()) prompt += " ";
          prompt += arg;
        }
      }
      if (prompt.empty()) return usage();
      return cmd_generate(argv[2], prompt, sampling);
    }
    if (cmd == "simulate" && argc == 5) {
      return cmd_simulate(argv[2], std::atoi(argv[3]), argv[4]);
    }
    if (cmd == "search" && argc == 4) {
      return cmd_search(std::atof(argv[2]), std::atof(argv[3]));
    }
    if (cmd == "serve-bench") {
      ServeBenchOpts opts;
      std::vector<std::size_t*> positional{&opts.n_requests, &opts.n_clients};
      std::size_t pos = 0;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--spec-k" && i + 1 < argc) {
          opts.spec_k = std::atoll(argv[++i]);
        } else if (arg == "--draft-layers" && i + 1 < argc) {
          opts.draft_layers = std::atoll(argv[++i]);
        } else if (arg == "--prefix-cache-mb" && i + 1 < argc) {
          opts.prefix_cache_mb = std::atoll(argv[++i]);
        } else if (arg == "--scheduler" && i + 1 < argc) {
          const std::string policy = argv[++i];
          if (policy == "fcfs") {
            opts.scheduler = serve::sched::Policy::kFcfs;
          } else if (policy == "priority") {
            opts.scheduler = serve::sched::Policy::kPriority;
          } else {
            return usage();
          }
        } else if (arg == "--prefill-chunk" && i + 1 < argc) {
          opts.prefill_chunk = std::atoll(argv[++i]);
        } else if (arg == "--priority-mix" && i + 1 < argc) {
          // H:L fractions of high-/low-priority requests, e.g. 0.2:0.3.
          if (std::sscanf(argv[++i], "%lf:%lf", &opts.high_fraction,
                          &opts.low_fraction) != 2) {
            return usage();
          }
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
          opts.deadline_ms = std::atof(argv[++i]);
        } else if (arg == "--tp" && i + 1 < argc) {
          opts.tp = std::atoll(argv[++i]);
        } else if (arg == "--host-tier-mb" && i + 1 < argc) {
          opts.host_tier_mb = std::atoll(argv[++i]);
        } else if (arg == "--disk-tier-mb" && i + 1 < argc) {
          opts.disk_tier_mb = std::atoll(argv[++i]);
        } else if (arg == "--spill-dir" && i + 1 < argc) {
          opts.spill_dir = argv[++i];
        } else if (arg == "--embed-fraction" && i + 1 < argc) {
          opts.embed_fraction = std::atof(argv[++i]);
        } else if (arg == "--constrained-fraction" && i + 1 < argc) {
          opts.constrained_fraction = std::atof(argv[++i]);
        } else if (arg == "--embed-batch" && i + 1 < argc) {
          opts.embed_batch = std::atoll(argv[++i]);
        } else if (arg == "--map-classes") {
          opts.map_classes = true;
        } else if (arg == "--gemm-tune") {
          opts.gemm.autotune = true;
        } else if (arg == "--decode-quant" && i + 1 < argc) {
          if (!parse_decode_quant(argv[++i], &opts.gemm.decode_quant)) {
            return usage();
          }
        } else if (arg == "--tune-cache" && i + 1 < argc) {
          opts.gemm.tune_cache = argv[++i];
        } else if (arg == "--json") {
          opts.json = true;
        } else if (pos < positional.size()) {
          *positional[pos++] = static_cast<std::size_t>(std::atoll(argv[i]));
        } else {
          return usage();
        }
      }
      if (opts.n_requests == 0 || opts.n_clients == 0 || opts.spec_k < 0 ||
          opts.prefix_cache_mb < 0 || opts.prefill_chunk < 0 ||
          opts.high_fraction < 0.0 || opts.low_fraction < 0.0 ||
          opts.high_fraction + opts.low_fraction > 1.0 ||
          opts.deadline_ms < 0.0 || opts.tp < 1 || opts.host_tier_mb < 0 ||
          opts.disk_tier_mb < 0 || opts.spill_dir.empty() ||
          opts.embed_fraction < 0.0 || opts.constrained_fraction < 0.0 ||
          opts.embed_fraction + opts.constrained_fraction > 1.0 ||
          opts.embed_batch < 1 ||
          (opts.map_classes &&
           opts.scheduler != serve::sched::Policy::kPriority)) {
        return usage();
      }
      return cmd_serve_bench(opts);
    }
    if (cmd == "serve-http") {
      std::uint16_t port = 0;
      std::int64_t tp = 1;
      std::int64_t host_tier_mb = 0, disk_tier_mb = 0;
      std::string spill_dir = "matgpt_spill";
      bool embed = false, grammar = false;
      GemmOpts gemm;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
          port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
        } else if (arg == "--tp" && i + 1 < argc) {
          tp = std::atoll(argv[++i]);
        } else if (arg == "--host-tier-mb" && i + 1 < argc) {
          host_tier_mb = std::atoll(argv[++i]);
        } else if (arg == "--disk-tier-mb" && i + 1 < argc) {
          disk_tier_mb = std::atoll(argv[++i]);
        } else if (arg == "--spill-dir" && i + 1 < argc) {
          spill_dir = argv[++i];
        } else if (arg == "--embed") {
          embed = true;
        } else if (arg == "--grammar") {
          grammar = true;
        } else if (arg == "--gemm-tune") {
          gemm.autotune = true;
        } else if (arg == "--decode-quant" && i + 1 < argc) {
          if (!parse_decode_quant(argv[++i], &gemm.decode_quant)) {
            return usage();
          }
        } else if (arg == "--tune-cache" && i + 1 < argc) {
          gemm.tune_cache = argv[++i];
        } else {
          return usage();
        }
      }
      if (tp < 1 || host_tier_mb < 0 || disk_tier_mb < 0 ||
          spill_dir.empty()) {
        return usage();
      }
      return cmd_serve_http(port, tp, host_tier_mb, disk_tier_mb, spill_dir,
                            embed, grammar, gemm);
    }
    if (cmd == "load-gen") {
      LoadGenOpts opts;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
          opts.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
        } else if (arg == "--requests" && i + 1 < argc) {
          opts.n_requests = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--rate" && i + 1 < argc) {
          opts.rate_rps = std::atof(argv[++i]);
        } else if (arg == "--concurrency" && i + 1 < argc) {
          opts.concurrency = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--seed" && i + 1 < argc) {
          opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--slo-ms" && i + 1 < argc) {
          opts.slo_ms = std::atof(argv[++i]);
        } else {
          return usage();
        }
      }
      if (opts.port == 0 || opts.n_requests == 0 || opts.rate_rps < 0.0 ||
          opts.slo_ms <= 0.0) {
        return usage();
      }
      return cmd_load_gen(opts);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
