// Example: the scientific downstream task (Fig. 3 / Table V workflow).
//
// Pre-train a small MatGPT on the synthetic literature, extract formula
// embeddings, and fine-tune a structure GNN for band-gap prediction with
// and without the literature embeddings — showing the boost the paper
// reports from injecting LLM knowledge into a property predictor.

#include <cstdio>

#include "core/study.h"
#include "embed/embedding.h"
#include "gnn/bandgap.h"

using namespace matgpt;

int main() {
  std::printf("Band-gap prediction with LLM-augmented GNNs\n\n");

  // 1. Pre-train the literature model.
  core::StudyConfig sc;
  sc.corpus_scale = 3e-5;
  sc.n_materials = 320;
  sc.steps = 200;
  sc.seq = 48;
  core::ComparativeStudy study(sc);
  core::ExperimentSpec spec;
  spec.label = "matgpt-neox";
  spec.arch = nn::ArchFamily::kNeoX;
  spec.vocab = 512;
  spec.optimizer = core::OptimizerKind::kAdam;
  spec.batch_seqs = 8;
  const auto gpt = study.run_experiment(spec);
  std::printf("literature model trained (val loss %.3f)\n",
              gpt.curve.final_val_loss());

  // 2. Build crystal structures for the same materials.
  const auto dataset = gnn::build_dataset_from(study.materials(), 31);
  std::printf("crystal dataset: %zu structures\n", dataset.graphs.size());

  // 3. Structure-only baseline (MF-CGNN).
  gnn::RegressionConfig rc;
  rc.epochs = 20;
  gnn::GnnModel baseline({gnn::GnnVariant::kMfCgnn, 16, 0, 17});
  const auto base = gnn::train_bandgap(baseline, dataset, rc);
  std::printf("MF-CGNN (structure only): test MAE %.3f eV\n",
              base.test_mae_ev);

  // 4. Literature-augmented variant: concat the formula embedding (Fig. 3).
  const std::int64_t dim = gpt.model->config().hidden;
  std::vector<std::vector<float>> embeddings(dataset.pool.size());
  for (std::size_t i = 0; i < dataset.pool.size(); ++i) {
    embeddings[i] = embed::gpt_formula_embedding(*gpt.model, *gpt.tokenizer,
                                                 dataset.pool[i].formula);
  }
  gnn::GnnModel augmented({gnn::GnnVariant::kMfCgnn, 16, dim, 17});
  const auto boosted = gnn::train_bandgap(
      augmented, dataset, rc,
      [&](std::size_t i) { return embeddings[i]; });
  std::printf("MF-CGNN + MatGPT embeddings: test MAE %.3f eV\n",
              boosted.test_mae_ev);

  const double improvement =
      100.0 * (1.0 - boosted.test_mae_ev / base.test_mae_ev);
  std::printf(
      "\nliterature embeddings change MAE by %+.1f%% (paper: +GPT improves "
      "MF-CGNN by ~8%%)\n",
      improvement);
  std::printf("done.\n");
  return 0;
}
