// Example: computationally-efficient architecture design (the paper's
// Sec. III method, Observation 1).
//
// Given a parameter budget and a cluster allocation, search the
// (layers, hidden) space under the divisibility constraints (Eqs. 1–5),
// score candidates by simulated Frontier throughput, check memory
// feasibility, and report the recommended configuration — the workflow a
// practitioner would run before launching a pre-training job.

#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "simfrontier/archsearch.h"
#include "simfrontier/memory_model.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  std::printf("Architecture design for a ~3B-parameter MatGPT on Frontier\n");
  std::printf("allocation: 64 GCDs (8 nodes), TP=1, PP=1, seq 2048\n\n");

  Platform platform;
  ArchitectureSearch search(platform);
  SearchConstraints constraints;
  constraints.dp = 64;
  constraints.min_params = 2'500'000'000;
  constraints.max_params = 3'800'000'000;

  const std::vector<std::int64_t> layer_grid{24, 28, 32, 36, 40};
  const std::vector<std::int64_t> hidden_grid{2688, 2816, 2880, 3072, 3200,
                                              3328, 3456, 3584};
  const auto candidates =
      search.search(ArchFamily::kLLaMA, 52000, layer_grid, hidden_grid,
                    constraints, /*batch_seqs=*/16, /*seq=*/2048);

  // Rank by flash-v2 throughput where eligible, base otherwise.
  auto score = [](const ArchCandidate& c) {
    return c.tflops_flash_v2 > 0.0 ? c.tflops_flash_v2 : c.tflops_base;
  };
  std::vector<const ArchCandidate*> ranked;
  for (const auto& c : candidates) ranked.push_back(&c);
  std::sort(ranked.begin(), ranked.end(),
            [&](const auto* a, const auto* b) { return score(*a) > score(*b); });

  MemoryModel memory(platform);
  TablePrinter table({"rank", "layers", "hidden", "head dim", "params",
                      "TFLOPS/GCD", "flash", "fits 64GB"});
  int rank = 1;
  for (const auto* c : ranked) {
    if (rank > 10) break;
    const auto mem = memory.training_memory(
        c->model, 4, 2048,
        c->tflops_flash_v2 > 0.0 ? AttentionImpl::kFlashV2
                                 : AttentionImpl::kMaterialized,
        ParallelConfig{64, 1, 1, true});
    char params[32];
    std::snprintf(params, sizeof(params), "%.2fB", c->model.params() / 1e9);
    table.add_row({TablePrinter::fmt_int(rank++),
                   TablePrinter::fmt_int(c->model.n_layers),
                   TablePrinter::fmt_int(c->model.hidden),
                   TablePrinter::fmt_int(c->head_dim()), params,
                   TablePrinter::fmt(score(*c), 1),
                   c->tflops_flash_v2 > 0.0 ? "v2" : "none",
                   memory.fits(mem) ? "yes" : "NO"});
  }
  std::printf("%s", table.render().c_str());

  const auto* best = ranked.front();
  std::printf(
      "\nrecommendation: %lld layers x hidden %lld (head dim %lld, %s)\n",
      static_cast<long long>(best->model.n_layers),
      static_cast<long long>(best->model.hidden),
      static_cast<long long>(best->head_dim()),
      best->head_dim() % 8 == 0 ? "8-aligned, flash-eligible"
                                : "NOT 8-aligned — avoid");
  std::printf(
      "rule of thumb reproduced: pick head dims that are multiples of 8 "
      "(Observation 1); misaligned candidates rank at the bottom.\n");
  return 0;
}
