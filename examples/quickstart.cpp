// Quickstart: the end-to-end MatGPT pipeline in ~80 lines.
//
//  1. Synthesize a materials-science corpus (Table I shape) and screen it.
//  2. Train a BPE tokenizer and pre-train a small MatGPT-LLaMA.
//  3. Generate text from a prompt.
//  4. Ask the model a zero-shot science question.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/study.h"
#include "eval/scorer.h"

using namespace matgpt;

int main() {
  // 1. Corpus + screening (the ComparativeStudy drives the full pipeline).
  core::StudyConfig sc;
  sc.corpus_scale = 8e-6;   // a few hundred documents
  sc.n_materials = 150;     // distinct synthetic materials
  sc.steps = 200;           // pre-training steps
  sc.seq = 48;              // context length
  core::ComparativeStudy study(sc);
  study.prepare_corpus();
  std::printf("corpus ready: %zu screened documents over %zu materials\n",
              study.screened_corpus().size(), study.materials().size());

  // 2. Pre-train a LLaMA-family MatGPT with the HF-style tokenizer.
  core::ExperimentSpec spec;
  spec.label = "quickstart-llama";
  spec.arch = nn::ArchFamily::kLLaMA;
  spec.tokenizer = tok::TokenizerKind::kHuggingFace;
  spec.vocab = 512;
  spec.optimizer = core::OptimizerKind::kAdam;
  spec.batch_seqs = 8;
  const auto pretrained = study.run_experiment(spec);
  std::printf("pre-trained %s: %lld params, val loss %.3f -> %.3f\n",
              spec.label.c_str(),
              static_cast<long long>(pretrained.model->param_count()),
              pretrained.curve.points.front().val_loss,
              pretrained.curve.final_val_loss());

  // 3. Generate a continuation of a materials-science prompt.
  const std::string prompt = "The band gap of";
  Rng rng(7);
  const auto prompt_ids = pretrained.tokenizer->encode(prompt);
  const auto generated =
      pretrained.model->generate(prompt_ids, 16, /*temperature=*/0.7f, rng);
  std::printf("prompt:     \"%s\"\n", prompt.c_str());
  std::printf("generation: \"%s\"\n",
              pretrained.tokenizer->decode(generated).c_str());

  // 4. Zero-shot question answering over the shared knowledge base.
  eval::TaskGenerator tasks(5, study.materials());
  eval::LmEvaluator evaluator(*pretrained.model, *pretrained.tokenizer);
  const auto questions = tasks.generate(eval::TaskId::kArcEasy, 20);
  Rng eval_rng(3);
  const auto result = evaluator.evaluate(questions, /*shots=*/0, eval_rng);
  std::printf("zero-shot ARC-E analog: %.0f%% accuracy (chance 33%%)\n",
              100.0 * result.accuracy);
  std::printf("\nquickstart complete.\n");
  return 0;
}
