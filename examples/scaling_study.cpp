// Example: planning a distributed pre-training job (Observation 2).
//
// For a 6.7B model, compare parallelism strategies across job sizes using
// the Frontier simulator, then estimate wall-clock and energy for the
// chosen configuration over a 15B-token corpus — the capacity-planning
// exercise the paper's Figs. 7–8 and Table IV support.

#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "simfrontier/parallelism.h"

using namespace matgpt;
using namespace matgpt::sim;

int main() {
  std::printf("Scaling study: MatGPT 6.7B on Frontier (seq 2048)\n\n");
  TrainingSimulator sim((Platform()));
  const auto model = ModelDesc::matgpt_6_7b(ArchFamily::kLLaMA);

  TablePrinter table({"GCDs", "strategy", "TFLOPS/GCD", "comm", "step time",
                      "fits"});
  for (int gcds : {8, 64, 256, 1024}) {
    struct Option {
      const char* name;
      ParallelConfig config;
    };
    const std::vector<Option> options{
        {"ZeRO-1", {gcds, 1, 1, true}},
        {"TP=2 + DP", {gcds / 2, 2, 1, false}},
        {"PP=2 + DP", {gcds / 2, 1, 2, false}},
    };
    const Option* best = nullptr;
    double best_tf = 0.0;
    for (const auto& opt : options) {
      const auto p = sim.simulate_step(model, opt.config, 8192, 2048,
                                       AttentionImpl::kFlashV2);
      if (p.per_gcd_tflops > best_tf && p.fits_memory) {
        best_tf = p.per_gcd_tflops;
        best = &opt;
      }
      table.add_row({TablePrinter::fmt_int(gcds), opt.name,
                     TablePrinter::fmt(p.per_gcd_tflops, 1),
                     TablePrinter::fmt_percent(p.comm_fraction()),
                     format_duration(p.total_s()),
                     p.fits_memory ? "yes" : "NO"});
    }
    std::printf("best at %d GCDs: %s\n", gcds, best ? best->name : "none");
  }
  std::printf("\n%s\n", table.render().c_str());

  std::printf("Observation 2 reproduced: keep model parallelism minimal; "
              "when sharding is needed, map TP onto the MI250X GCD pair.\n\n");

  // Capacity plan for the winning 256-GCD configuration.
  const ParallelConfig chosen{256, 1, 1, true};
  const auto est = sim.estimate_run(model, chosen, 8192, 2048,
                                    AttentionImpl::kFlashV2, 15e9);
  std::printf("capacity plan (256 GCDs, ZeRO-1, 15B tokens):\n");
  std::printf("  steps:       %.0f\n", est.steps);
  std::printf("  wall clock:  %s\n", format_duration(est.hours * 3600).c_str());
  std::printf("  energy:      %s\n", format_energy(est.energy_joules).c_str());
  std::printf("  efficiency:  %.2f TFLOPS/W\n", est.tflops_per_watt);
  return 0;
}
